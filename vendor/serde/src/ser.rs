//! Serialization helpers shared by impls and the derive macro.

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends one `"name": value` object member, used by the derive macro.
pub fn write_field<T: crate::Serialize + ?Sized>(
    out: &mut String,
    name: &str,
    value: &T,
    first: bool,
) {
    if !first {
        out.push(',');
    }
    write_json_string(out, name);
    out.push(':');
    value.serialize(out);
}
