//! Workspace-local stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the serde surface that `simtune` uses:
//! [`Serialize`] / [`Deserialize`] traits (JSON-only, no generic data
//! model), a `#[derive(Serialize, Deserialize)]` for plain structs with
//! named fields, and enough primitive/container impls for the persisted
//! dataset format in `simtune-bench`.
//!
//! Derived structs serialize as JSON objects with fields in declaration
//! order; deserialization accepts fields in any order and rejects
//! unknown or duplicate keys.

// Vendored API-compatible stub: exempt from style lints.
#![allow(clippy::all)]

pub mod de;
pub mod ser;

pub use serde_derive::{Deserialize, Serialize};

use de::{Error, Parser};

/// Serializes `self` as a JSON fragment appended to `out`.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize(&self, out: &mut String);
}

/// Parses `Self` from the JSON token stream in `p`.
pub trait Deserialize: Sized {
    /// Reads one JSON value of type `Self` from the parser.
    ///
    /// # Errors
    ///
    /// Returns a parse [`Error`] when the input is not a valid encoding
    /// of `Self`.
    fn deserialize(p: &mut Parser<'_>) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut String) {
        (**self).serialize(out);
    }
}

macro_rules! serialize_display_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut String) {
                out.push_str(itoa_buffer(*self as i128).as_str());
            }
        }

        impl Deserialize for $t {
            fn deserialize(p: &mut Parser<'_>) -> Result<Self, Error> {
                let v = p.parse_integer()?;
                <$t>::try_from(v).map_err(|_| p.error(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

serialize_display_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn itoa_buffer(v: i128) -> String {
    v.to_string()
}

impl Serialize for f64 {
    fn serialize(&self, out: &mut String) {
        if self.is_finite() {
            // Rust's Debug for f64 is the shortest round-trip decimal.
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.parse_f64()
    }
}

impl Serialize for f32 {
    fn serialize(&self, out: &mut String) {
        f64::from(*self).serialize(out);
    }
}

impl Deserialize for f32 {
    fn deserialize(p: &mut Parser<'_>) -> Result<Self, Error> {
        Ok(p.parse_f64()? as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.parse_bool()
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut String) {
        ser::write_json_string(out, self);
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut String) {
        self.as_str().serialize(out);
    }
}

impl Deserialize for String {
    fn deserialize(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.parse_string()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut String) {
        self.as_slice().serialize(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, out: &mut String) {
        self.as_slice().serialize(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.expect_byte(b'[')?;
        let mut items = Vec::new();
        if p.peek() == Some(b']') {
            p.expect_byte(b']')?;
            return Ok(items);
        }
        loop {
            items.push(T::deserialize(p)?);
            if p.peek() == Some(b',') {
                p.expect_byte(b',')?;
            } else {
                p.expect_byte(b']')?;
                return Ok(items);
            }
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(p: &mut Parser<'_>) -> Result<Self, Error> {
        let v: Vec<T> = Vec::deserialize(p)?;
        let n = v.len();
        v.try_into()
            .map_err(|_| p.error(format!("expected array of length {N}, found {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(p: &mut Parser<'_>) -> Result<Self, Error> {
        if p.peek() == Some(b'n') {
            p.parse_null()?;
            Ok(None)
        } else {
            Ok(Some(T::deserialize(p)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let mut s = String::new();
        v.serialize(&mut s);
        let mut p = Parser::new(&s);
        let back = T::deserialize(&mut p).expect("parses");
        p.finish().expect("no trailing data");
        assert_eq!(v, back, "json was {s}");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(3.5f64);
        roundtrip(1.0e-300f64);
        roundtrip(0.1f64 + 0.2f64);
        roundtrip(true);
        roundtrip(String::from("hi \"there\" \\ \n \t ☃"));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip([7u64; 6]);
        roundtrip(Some(5u64));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![Some(1u64), None]);
        roundtrip(vec![String::from("a"), String::from("b,]}")]);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let mut p = Parser::new(" [ 1 , 2 ,\n3 ] ");
        let v: Vec<u64> = Vec::deserialize(&mut p).unwrap();
        p.finish().unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn malformed_input_errors() {
        for bad in ["[1,", "{", "\"unterminated", "[1 2]", "tru", "1e", ""] {
            let mut p = Parser::new(bad);
            let failed = Vec::<u64>::deserialize(&mut p).is_err() || p.finish().is_err();
            assert!(failed, "expected failure on {bad:?}");
        }
    }
}
