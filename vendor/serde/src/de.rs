//! Minimal JSON pull-parser backing [`crate::Deserialize`].

use std::fmt;

/// JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            msg: msg.into(),
            offset,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Cursor over a JSON document.
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Starts parsing at the beginning of `input`.
    pub fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    /// Builds an [`Error`] at the current position.
    pub fn error(&self, msg: impl Into<String>) -> Error {
        Error::new(msg, self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// Returns the next non-whitespace byte without consuming it.
    pub fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    /// Consumes the next non-whitespace byte, requiring it to be `byte`.
    ///
    /// # Errors
    ///
    /// Returns an error when the input is exhausted or the byte differs.
    pub fn expect_byte(&mut self, byte: u8) -> Result<(), Error> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            Some(b) => Err(self.error(format!(
                "expected {:?}, found {:?}",
                byte as char, b as char
            ))),
            None => Err(self.error(format!("expected {:?}, found end of input", byte as char))),
        }
    }

    /// Requires that only whitespace remains.
    ///
    /// # Errors
    ///
    /// Returns an error when trailing non-whitespace data remains.
    pub fn finish(&mut self) -> Result<(), Error> {
        match self.peek() {
            None => Ok(()),
            Some(b) => Err(self.error(format!("trailing data starting with {:?}", b as char))),
        }
    }

    /// Parses a JSON string literal.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed literals or escapes.
    pub fn parse_string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: require a low surrogate pair.
                                self.expect_byte(b'\\')?;
                                self.expect_byte(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.error("invalid UTF-8"))?;
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let s = self
            .bytes
            .get(self.pos..end)
            .and_then(|s| std::str::from_utf8(s).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number_slice(&mut self) -> Result<&'a str, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.error("invalid UTF-8"))
    }

    /// Parses a JSON integer into `i128`.
    ///
    /// # Errors
    ///
    /// Returns an error when the token is not an integer.
    pub fn parse_integer(&mut self) -> Result<i128, Error> {
        let offset = self.pos;
        let s = self.number_slice()?;
        s.parse::<i128>()
            .map_err(|_| Error::new(format!("invalid integer {s:?}"), offset))
    }

    /// Parses a JSON number into `f64`.
    ///
    /// # Errors
    ///
    /// Returns an error when the token is not a number.
    pub fn parse_f64(&mut self) -> Result<f64, Error> {
        let offset = self.pos;
        let s = self.number_slice()?;
        s.parse::<f64>()
            .map_err(|_| Error::new(format!("invalid number {s:?}"), offset))
    }

    /// Parses `true` or `false`.
    ///
    /// # Errors
    ///
    /// Returns an error when neither keyword is present.
    pub fn parse_bool(&mut self) -> Result<bool, Error> {
        if self.try_keyword("true") {
            Ok(true)
        } else if self.try_keyword("false") {
            Ok(false)
        } else {
            Err(self.error("expected true or false"))
        }
    }

    /// Parses the `null` keyword.
    ///
    /// # Errors
    ///
    /// Returns an error when `null` is not present.
    pub fn parse_null(&mut self) -> Result<(), Error> {
        if self.try_keyword("null") {
            Ok(())
        } else {
            Err(self.error("expected null"))
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    /// Skips one complete JSON value of any type.
    ///
    /// # Errors
    ///
    /// Returns an error when the value is malformed.
    pub fn skip_value(&mut self) -> Result<(), Error> {
        match self.peek() {
            Some(b'"') => {
                self.parse_string()?;
                Ok(())
            }
            Some(b'{') => {
                self.expect_byte(b'{')?;
                if self.peek() == Some(b'}') {
                    return self.expect_byte(b'}');
                }
                loop {
                    self.parse_string()?;
                    self.expect_byte(b':')?;
                    self.skip_value()?;
                    if self.peek() == Some(b',') {
                        self.expect_byte(b',')?;
                    } else {
                        return self.expect_byte(b'}');
                    }
                }
            }
            Some(b'[') => {
                self.expect_byte(b'[')?;
                if self.peek() == Some(b']') {
                    return self.expect_byte(b']');
                }
                loop {
                    self.skip_value()?;
                    if self.peek() == Some(b',') {
                        self.expect_byte(b',')?;
                    } else {
                        return self.expect_byte(b']');
                    }
                }
            }
            Some(b't') | Some(b'f') => {
                self.parse_bool()?;
                Ok(())
            }
            Some(b'n') => self.parse_null(),
            Some(_) => {
                self.parse_f64()?;
                Ok(())
            }
            None => Err(self.error("expected a value, found end of input")),
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

/// Streaming reader for one JSON object, used by the derive macro.
///
/// Collects `key → value-span` pairs up front so that derived structs can
/// read their fields in declaration order regardless of file order.
pub struct ObjectReader {
    fields: Vec<(String, String)>,
}

impl ObjectReader {
    /// Parses an entire JSON object, capturing each member's raw text.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed objects or duplicate keys.
    pub fn parse(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.expect_byte(b'{')?;
        let mut fields: Vec<(String, String)> = Vec::new();
        if p.peek() == Some(b'}') {
            p.expect_byte(b'}')?;
            return Ok(ObjectReader { fields });
        }
        loop {
            let key = p.parse_string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(p.error(format!("duplicate key {key:?}")));
            }
            p.expect_byte(b':')?;
            let start = {
                p.skip_ws();
                p.pos
            };
            p.skip_value()?;
            let raw = std::str::from_utf8(&p.bytes[start..p.pos])
                .map_err(|_| p.error("invalid UTF-8"))?
                .to_owned();
            fields.push((key, raw));
            if p.peek() == Some(b',') {
                p.expect_byte(b',')?;
            } else {
                p.expect_byte(b'}')?;
                return Ok(ObjectReader { fields });
            }
        }
    }

    /// Extracts and deserializes the member named `name`.
    ///
    /// # Errors
    ///
    /// Returns an error when the member is missing or malformed.
    pub fn field<T: crate::Deserialize>(&mut self, name: &str) -> Result<T, Error> {
        let idx = self
            .fields
            .iter()
            .position(|(k, _)| k == name)
            .ok_or_else(|| Error::new(format!("missing field {name:?}"), 0))?;
        let (_, raw) = self.fields.swap_remove(idx);
        let mut p = Parser::new(&raw);
        let v = T::deserialize(&mut p)?;
        p.finish()?;
        Ok(v)
    }

    /// Extracts and deserializes the member named `name`, or returns
    /// `T::default()` when the object has no such member — for fields
    /// added to a wire format after old writers shipped. A present but
    /// malformed member is still an error.
    ///
    /// # Errors
    ///
    /// Returns an error when the member is present but malformed.
    pub fn field_or_default<T: crate::Deserialize + Default>(
        &mut self,
        name: &str,
    ) -> Result<T, Error> {
        if self.fields.iter().any(|(k, _)| k == name) {
            self.field(name)
        } else {
            Ok(T::default())
        }
    }

    /// Requires that every member has been consumed.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first unknown field.
    pub fn end(self) -> Result<(), Error> {
        match self.fields.first() {
            None => Ok(()),
            Some((k, _)) => Err(Error::new(format!("unknown field {k:?}"), 0)),
        }
    }
}
