//! Workspace-local stand-in for `serde_json`: `to_string` / `from_str`
//! over the JSON-only traits of the vendored `serde` crate.

// Vendored API-compatible stub: exempt from style lints.
#![allow(clippy::all)]

pub use serde::de::Error;

use serde::de::Parser;
use serde::{Deserialize, Serialize};

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors the
/// upstream `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(&mut out);
    Ok(out)
}

/// Deserializes a `T` from a JSON string, rejecting trailing data.
///
/// # Errors
///
/// Returns an [`Error`] when `input` is not a valid encoding of `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut p = Parser::new(input);
    let v = T::deserialize(&mut p)?;
    p.finish()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    struct Inner {
        counters: [u64; 3],
    }

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    struct Outer {
        id: usize,
        xs: Vec<f64>,
        inner: Inner,
        maybe: Option<Inner>,
        names: Vec<String>,
    }

    fn sample() -> Outer {
        Outer {
            id: 7,
            xs: vec![0.5, 1e-9, -3.25],
            inner: Inner {
                counters: [1, 2, 3],
            },
            maybe: None,
            names: vec!["a".into(), "b\"c".into()],
        }
    }

    #[test]
    fn derived_struct_roundtrip() {
        let v = sample();
        let s = to_string(&v).unwrap();
        let back: Outer = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn option_some_roundtrip() {
        let v = Outer {
            maybe: Some(Inner {
                counters: [9, 8, 7],
            }),
            ..sample()
        };
        let s = to_string(&v).unwrap();
        let back: Outer = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn field_order_is_flexible() {
        let s = r#"{"counters":[1,2,3]}"#;
        let a: Inner = from_str(s).unwrap();
        assert_eq!(a.counters, [1, 2, 3]);
        // Whitespace + same fields parse identically.
        let b: Inner = from_str(" { \"counters\" : [ 1 , 2 , 3 ] } ").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_field_is_rejected() {
        let s = r#"{"counters":[1,2,3],"extra":1}"#;
        assert!(from_str::<Inner>(s).is_err());
    }

    #[test]
    fn missing_field_is_rejected() {
        assert!(from_str::<Inner>("{}").is_err());
    }

    #[test]
    fn error_converts_to_io_error() {
        let e = from_str::<Inner>("{").unwrap_err();
        let io: std::io::Error = e.into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    }
}
