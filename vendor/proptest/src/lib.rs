//! Workspace-local stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of proptest that the `simtune` property suites
//! use: the [`proptest!`] macro, range and `any::<T>()` strategies,
//! `prop::collection::vec`, `prop_assert*` / `prop_assume!`, and
//! [`test_runner::Config::with_cases`].
//!
//! Cases are generated from a seed derived deterministically from the
//! test's module path and name, so every run (local and CI) exercises
//! the same inputs. There is **no shrinking**: a failing case reports
//! its case number and message and panics immediately.

// Vendored API-compatible stub: exempt from style lints.
#![allow(clippy::all)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` that runs `Config::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($pname:pat in $pstrat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(16);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    let mut rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        u64::from(attempts),
                    );
                    $(let $pname =
                        $crate::strategy::Strategy::generate(&($pstrat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            panic!(
                                "property {} failed at case {attempts}: {message}",
                                stringify!($name),
                            );
                        }
                    }
                }
                assert!(
                    accepted >= config.cases,
                    "property {}: too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name),
                    accepted,
                    config.cases,
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::Config::default()) $($rest)*
        );
    };
}

/// Fails the surrounding property case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the surrounding property case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Fails the surrounding property case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {l:?}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Discards the current case (without failing) when the condition is
/// false; the runner draws a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(concat!("assumption failed: ", stringify!($cond))),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(
            x in 3usize..17,
            f in 0.25f64..0.75,
            any_u in any::<u64>(),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(flag || !flag);
            prop_assert_eq!(any_u, any_u);
        }

        #[test]
        fn vec_strategy_respects_sizes(
            fixed in prop::collection::vec(any::<bool>(), 12),
            ranged in prop::collection::vec(0u64..100, 2..9),
        ) {
            prop_assert_eq!(fixed.len(), 12);
            prop_assert!((2..9).contains(&ranged.len()));
            prop_assert!(ranged.iter().all(|&v| v < 100));
        }

        #[test]
        fn assume_discards_cases(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (1..20)
            .map(|i| s.generate(&mut crate::test_runner::case_rng("t", i)))
            .collect();
        let b: Vec<u64> = (1..20)
            .map(|i| s.generate(&mut crate::test_runner::case_rng("t", i)))
            .collect();
        assert_eq!(a, b);
    }
}
