//! `any::<T>()` strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning a wide magnitude range.
        let mantissa = rng.gen_range(-1.0f64..1.0);
        let exponent = rng.gen_range(-100i32..100);
        mantissa * 2f64.powi(exponent)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}
