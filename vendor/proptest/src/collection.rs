//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Element-count specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Inclusive upper bound.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy with the given element strategy and size range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
