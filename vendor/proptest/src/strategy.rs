//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Generates values of `Self::Value` from a seeded RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy producing a constant value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
