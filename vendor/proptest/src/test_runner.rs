//! Case configuration, error type and deterministic per-case RNG.

use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Per-suite configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; it does not count.
    Reject(String),
    /// An assertion failed; the whole property fails.
    Fail(String),
}

/// Deterministic RNG for one case: seeded from the property's fully
/// qualified name and the 1-based attempt counter, so runs are
/// reproducible everywhere without a persisted seed file.
pub fn case_rng(test_name: &str, attempt: u64) -> TestRng {
    // FNV-1a over the name, mixed with the attempt index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}
