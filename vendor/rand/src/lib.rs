//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the (small) subset of the `rand` 0.8 API that the
//! `simtune` workspace uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`],
//! and the [`rngs::StdRng`] generator.
//!
//! The generator is xoshiro256++ seeded via SplitMix64. It does **not**
//! reproduce upstream `rand`'s output streams; `simtune` only relies on
//! determinism (same seed → same stream), never on specific values.

// Vendored API-compatible stub: exempt from style lints.
#![allow(clippy::all)]

pub mod rngs;

mod uniform;

pub use uniform::SampleRange;

/// Source of random 64-bit words. Object-safe core trait, mirroring
/// `rand_core::RngCore` (subset).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing extension trait, blanket-implemented for every
/// [`RngCore`], mirroring `rand::Rng` (subset).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`Range` or `RangeInclusive` over
    /// the primitive integer and float types).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generator constructors, mirroring `rand::SeedableRng`
/// (subset).
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it through
    /// SplitMix64 exactly once per seed byte-chunk.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(-10i64..=10);
            assert!((-10..=10).contains(&i));
        }
    }

    #[test]
    fn gen_bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
