//! Uniform sampling from primitive ranges, mirroring the shape of
//! `rand::distributions::uniform` far enough for `Rng::gen_range`.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A range that `Rng::gen_range` can sample a `T` from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * unit;
                // Guard against rounding up to the exclusive bound; the
                // narrowing cast can round up again, so re-check after it.
                let r = v as $t;
                if r >= self.end { self.start } else { r }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start() as f64, *self.end() as f64);
                assert!(start <= end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (start + (end - start) * unit) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);
