//! Generator implementations. Only [`StdRng`] is provided.

use crate::{splitmix64, RngCore, SeedableRng};

/// Deterministic pseudo-random generator (xoshiro256++).
///
/// Drop-in for `rand::rngs::StdRng` as used in this workspace: seedable,
/// portable, and fast. Not cryptographically secure, and not
/// stream-compatible with upstream `rand`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro must not start from the all-zero state.
        if s.iter().all(|&w| w == 0) {
            let mut st = 0x9E37_79B9_7F4A_7C15u64;
            for word in &mut s {
                *word = splitmix64(&mut st);
            }
        }
        StdRng { s }
    }
}
