//! Workspace-local stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the API subset the `simtune-bench` benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! throughput/sample-size knobs, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It is a *quick* harness, not a statistics engine: each benchmark is
//! warmed up once and then timed for a bounded number of iterations (or
//! wall-clock budget), reporting mean ns/iter and the derived throughput.
//! `cargo bench --no-run` compiles the exact same bench sources that the
//! real criterion would.

// Vendored API-compatible stub: exempt from style lints.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const MAX_ITERS: u64 = 30;
const TIME_BUDGET: Duration = Duration::from_millis(300);

/// Top-level benchmark driver.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Mirrors criterion's CLI handling; accepted and ignored here.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the quick harness sizes itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the quick harness sizes itself.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the quick harness sizes itself.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Per-iteration work units, used to derive a throughput figure.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f`, bounded by iteration and wall-clock
    /// caps.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call outside the measurement.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0;
        while iters < MAX_ITERS && start.elapsed() < TIME_BUDGET {
            black_box(f());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<50} (no measurement)");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / (ns_per_iter * 1e-9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / (ns_per_iter * 1e-9))
        }
        None => String::new(),
    };
    println!("{label:<50} {ns_per_iter:>14.1} ns/iter{rate}");
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
