//! `#[derive(Serialize, Deserialize)]` for the workspace-local serde
//! stand-in.
//!
//! Supports non-generic structs with named fields — exactly the shape
//! used by the persisted dataset types in `simtune-bench`. The derive is
//! written against the raw `proc_macro` token API (no `syn`/`quote`),
//! because the build environment is fully offline.

// Vendored API-compatible stub: exempt from style lints.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (JSON object, fields in declaration order).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let StructShape { name, fields } = parse_struct(input);
    let mut body = String::new();
    body.push_str("out.push('{');\n");
    for (i, f) in fields.iter().enumerate() {
        body.push_str(&format!(
            "::serde::ser::write_field(out, \"{f}\", &self.{f}, {});\n",
            i == 0
        ));
    }
    body.push_str("out.push('}');");
    let src = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n\
         }}"
    );
    src.parse()
        .expect("derive(Serialize) generated invalid Rust")
}

/// Derives `serde::Deserialize` (accepts any member order, rejects
/// unknown, duplicate and missing members).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let StructShape { name, fields } = parse_struct(input);
    let mut init = String::new();
    for f in &fields {
        init.push_str(&format!("{f}: obj.field(\"{f}\")?,\n"));
    }
    let src = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(p: &mut ::serde::de::Parser<'_>)\n\
                 -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 let mut obj = ::serde::de::ObjectReader::parse(p)?;\n\
                 let value = {name} {{\n{init}}};\n\
                 obj.end()?;\n\
                 ::std::result::Result::Ok(value)\n\
             }}\n\
         }}"
    );
    src.parse()
        .expect("derive(Deserialize) generated invalid Rust")
}

struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Extracts the struct name and named-field list from a derive input.
fn parse_struct(input: TokenStream) -> StructShape {
    let mut iter = input.into_iter();
    let mut name: Option<String> = None;
    let mut saw_struct = false;
    for tt in iter.by_ref() {
        match tt {
            TokenTree::Ident(id) if !saw_struct && id.to_string() == "struct" => {
                saw_struct = true;
            }
            TokenTree::Ident(id) if saw_struct => {
                name = Some(id.to_string());
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("derive target must be a struct");
    let mut fields = None;
    for tt in iter {
        if let TokenTree::Group(g) = &tt {
            if g.delimiter() == Delimiter::Brace {
                fields = Some(parse_fields(g.stream()));
                break;
            }
        }
        if let TokenTree::Punct(p) = &tt {
            // `struct Name<...>` or `struct Name(...)` are unsupported.
            assert!(
                p.as_char() != '<' && p.as_char() != ';',
                "derive supports only non-generic structs with named fields"
            );
        }
    }
    StructShape {
        name,
        fields: fields.expect("derive supports only structs with named fields"),
    }
}

/// Collects field names: each top-level `ident :` before the next
/// top-level comma, skipping attributes, visibility and angle brackets.
fn parse_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut angle_depth: i32 = 0;
    let mut at_field_start = true;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                at_field_start = true;
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '#' && at_field_start => {
                // Attribute: `#` followed by a bracketed group.
                i += 2;
            }
            TokenTree::Ident(id) if at_field_start => {
                let s = id.to_string();
                if s == "pub" {
                    i += 1;
                    // Optional `pub(...)` restriction.
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                } else {
                    let followed_by_colon = matches!(
                        tokens.get(i + 1),
                        Some(TokenTree::Punct(p)) if p.as_char() == ':'
                    );
                    assert!(followed_by_colon, "expected `name:` in struct field list");
                    fields.push(s);
                    at_field_start = false;
                    i += 2;
                }
            }
            _ => {
                i += 1;
            }
        }
    }
    fields
}
