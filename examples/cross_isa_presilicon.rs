//! Pre-silicon / cross-ISA scenario (paper Section III-C: "the target
//! CPU is not required anymore at this stage, which enables the
//! simulation of architectures such as RISC-V on x86 platforms").
//!
//! A predictor for the RISC-V target is trained once (when hardware —
//! here: the timing model — was available). Later, new kernel shapes
//! are tuned for RISC-V without any RISC-V execution: candidates run on
//! the instruction-accurate simulator (hosted anywhere) and the
//! predictor ranks them. The paper's Equation 4 quantifies when this
//! beats owning boards; we report the measured K alongside.
//!
//! ```text
//! cargo run --release --example cross_isa_presilicon
//! ```

use simtune::core::{
    collect_group_data, parallel_speedup_k, prediction_metrics, CollectOptions, ScorePredictor,
    SimCache,
};
use simtune::hw::{MeasureConfig, TargetSpec};
use simtune::predict::PredictorKind;
use simtune::tensor::{conv2d_bias_relu, Conv2dShape};
use simtune::SimSession;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = TargetSpec::riscv_u74();
    // One memo cache spans every simulation phase of this workflow: any
    // schedule revisited later in the session is answered from memory.
    let memo = Arc::new(SimCache::new());

    // ---- Phase 1 (with target access): train on two known shapes ----
    let train_shapes = [
        Conv2dShape {
            n: 1,
            h: 14,
            w: 14,
            co: 8,
            ci: 8,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            pad: (1, 1),
        },
        Conv2dShape {
            n: 1,
            h: 14,
            w: 14,
            co: 16,
            ci: 8,
            kh: 3,
            kw: 3,
            stride: (2, 2),
            pad: (1, 1),
        },
    ];
    println!(
        "phase 1: training the riscv conv2d predictor on {} groups",
        train_shapes.len()
    );
    let mut groups = Vec::new();
    for (gid, shape) in train_shapes.iter().enumerate() {
        let def = conv2d_bias_relu(shape);
        groups.push(collect_group_data(
            &def,
            &spec,
            gid,
            &CollectOptions {
                n_impls: 50,
                n_parallel: 8,
                seed: 21,
                max_attempts_factor: 40,
                memo_cache: Some(memo.clone()),
            },
        )?);
    }
    let mut predictor = ScorePredictor::new(PredictorKind::Xgboost, "riscv", "conv2d_bias_relu", 5);
    predictor.train(&groups)?;

    // ---- Phase 2 (no target): a NEW shape, simulator only -----------
    let new_shape = Conv2dShape {
        n: 1,
        h: 12,
        w: 20,
        co: 12,
        ci: 6,
        kh: 3,
        kw: 3,
        stride: (1, 1),
        pad: (1, 1),
    };
    let def = conv2d_bias_relu(&new_shape);
    println!(
        "phase 2: scoring a new group ({}x{} co={} ci={}) with simulators only",
        new_shape.h, new_shape.w, new_shape.co, new_shape.ci
    );
    // Gather candidates + stats via the simulator interface. We reuse
    // collect_group_data's generation but only consume its sim side;
    // t_ref exists here purely to *verify* the prediction quality below.
    let eval = collect_group_data(
        &def,
        &spec,
        99,
        &CollectOptions {
            n_impls: 50,
            n_parallel: 8,
            seed: 77,
            max_attempts_factor: 40,
            memo_cache: Some(memo.clone()),
        },
    )?;
    let scores = predictor.score_group(&eval.stats)?;
    let metrics = prediction_metrics(&eval.t_ref, &scores);
    println!(
        "  E_top1 = {:.2} %, R_top1 = {:.1} %, Q_low = {:.2} %, Q_high = {:.2} %",
        metrics.e_top1, metrics.r_top1, metrics.q_low, metrics.q_high
    );
    println!(
        "  -> the truly fastest implementation sits in the top {:.1} % of predictions;",
        metrics.r_top1
    );
    println!("     re-measuring that top slice on first silicon recovers the optimum.");

    // ---- Equation 4: how many parallel simulators replace a board? ---
    let cfg = MeasureConfig::default();
    let mut k_values: Vec<u64> = eval
        .sim_seconds
        .iter()
        .zip(&eval.t_ref)
        .map(|(&t_sim, &t_ref)| parallel_speedup_k(t_sim, t_ref, cfg.cooldown_s, cfg.n_exe))
        .collect();
    k_values.sort_unstable();
    println!(
        "\nEquation 4 on this host: K ∈ [{}, {}] parallel simulators match one\n\
         RISC-V board's benchmarking throughput (N_exe = {}, cooldown = {} s).",
        k_values.first().expect("non-empty"),
        k_values.last().expect("non-empty"),
        cfg.n_exe,
        cfg.cooldown_s
    );

    // Show the interface configuration while we're here: the typed
    // session is the entry point everything above ran through.
    let session = SimSession::builder()
        .accurate(&spec.hierarchy)
        .memo_cache(memo.clone())
        .build()?;
    let memo_stats = memo.stats();
    println!(
        "simulator interface: {session:?} (n_parallel = {})\n\
         memo cache: {} entries, {} hits / {} lookups ({:.0} % of \
         simulations answered from memory)",
        session.n_parallel(),
        memo.len(),
        memo_stats.hits,
        memo_stats.lookups(),
        memo_stats.hit_ratio() * 100.0,
    );
    Ok(())
}
