//! The paper's headline workload: tuning a ResNet Conv2D+Bias+ReLU
//! layer, comparing the two flows of its Fig. 2:
//!
//! * **hardware flow** — every candidate is benchmarked on the (emulated)
//!   target board with N_exe repetitions and cooldowns;
//! * **simulator flow** — candidates run on parallel instruction-accurate
//!   simulators and are ranked by a trained score predictor; only the
//!   final top candidates are re-measured (the paper's conclusion:
//!   "re-execute the top 2–3 % of the predictions").
//!
//! ```text
//! cargo run --release --example conv2d_resnet_tuning
//! ```

use simtune::core::{
    collect_group_data, tune_on_hardware, tune_with_predictor, CollectOptions, HardwareRunner,
    KernelBuilder, ScorePredictor, StrategySpec, TuneOptions,
};
use simtune::hw::TargetSpec;
use simtune::predict::PredictorKind;
use simtune::tensor::{conv2d_bias_relu, Conv2dShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = TargetSpec::arm_cortex_a72();
    // ResNet group 1 (Table II) at quarter scale: 14x14x16, 3x3 kernel.
    let shape = Conv2dShape::paper_groups()[1].scaled(4, 4);
    let def = conv2d_bias_relu(&shape);
    println!(
        "conv2d {}x{}x{} co={} ci={} ({:.2} MMACs) on {}",
        shape.h,
        shape.w,
        shape.co,
        shape.co,
        shape.ci,
        shape.macs() as f64 / 1e6,
        spec.name()
    );

    // Train the predictor on this group (in production it would come
    // pre-trained for the kernel type; see predictor_comparison.rs).
    println!("\ntraining score predictor...");
    let data = collect_group_data(
        &def,
        &spec,
        1,
        &CollectOptions {
            n_impls: 60,
            n_parallel: 8,
            seed: 3,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        },
    )?;
    let mut predictor = ScorePredictor::new(PredictorKind::Xgboost, "arm", "conv2d_bias_relu", 1);
    predictor.train(std::slice::from_ref(&data))?;

    let opts = TuneOptions {
        n_trials: 40,
        batch_size: 10,
        n_parallel: 8,
        seed: 11,
        strategy: StrategySpec::Evolutionary,
        ..TuneOptions::default()
    };

    // Flow A: classic hardware-in-the-loop tuning.
    println!("flow A: tuning on the emulated board (sequential, noisy)...");
    let hw_result = tune_on_hardware(&def, &spec, &opts)?;

    // Flow B: simulator + predictor; re-measure the predicted top 3.
    println!("flow B: tuning on parallel simulators with the predictor...");
    let sim_result = tune_with_predictor(&def, &spec, &predictor, &opts)?;

    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let hw_runner = HardwareRunner::new(spec.clone());
    let mut ranked: Vec<_> = sim_result.history.iter().collect();
    ranked.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("finite or inf"));
    let mut best_sim_time = f64::INFINITY;
    for (i, record) in ranked.iter().take(3).enumerate() {
        let exe = builder.build(&record.schedule, &format!("top{i}"))?;
        let t = hw_runner.run_one(&exe, 100 + i)?.t_ref;
        println!("  predicted top-{} -> measured {:.3} ms", i + 1, t * 1e3);
        best_sim_time = best_sim_time.min(t);
    }

    let hw_best_time = hw_result.best().score;
    println!("\nhardware flow best:  {:.3} ms", hw_best_time * 1e3);
    println!(
        "simulator flow best: {:.3} ms (top-3 re-measured)",
        best_sim_time * 1e3
    );
    let ratio = best_sim_time / hw_best_time;
    println!(
        "simulator flow reaches {:.1} % of the hardware flow's result\n\
         without touching the board during search.",
        100.0 / ratio.max(1e-9)
    );
    Ok(())
}
