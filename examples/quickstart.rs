//! Quickstart: autotune a MatMul kernel **entirely on simulators**.
//!
//! Mirrors the paper's pipeline end to end in under a minute:
//!
//! 1. define a kernel (TE-style compute definition),
//! 2. collect a small training set: every implementation runs on the
//!    instruction-accurate simulator *and* the emulated target board,
//! 3. train a score predictor on the simulator statistics,
//! 4. autotune new candidates using only simulator runs + the predictor,
//! 5. verify the chosen schedule on the (emulated) target hardware.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use simtune::core::{
    collect_group_data, tune_with_predictor, CollectOptions, HardwareRunner, KernelBuilder,
    ScorePredictor, StrategySpec, TuneOptions,
};
use simtune::hw::TargetSpec;
use simtune::predict::PredictorKind;
use simtune::tensor::matmul;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Tune for the RISC-V target: the scenario where real boards are
    // scarce and simulation parallelism wins (paper Section IV).
    let spec = TargetSpec::riscv_u74();
    let def = matmul(32, 32, 32);
    println!("kernel: {} ({} MACs)", def.name, def.macs());

    // -- Training phase (paper Fig. 4-I) -------------------------------
    println!("\n[1/3] collecting training data (simulator + emulated board)...");
    let data = collect_group_data(
        &def,
        &spec,
        0,
        &CollectOptions {
            n_impls: 48,
            n_parallel: 8,
            seed: 42,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        },
    )?;
    println!(
        "      {} implementations, t_ref {:.3} ms .. {:.3} ms",
        data.len(),
        data.t_ref.iter().cloned().fold(f64::INFINITY, f64::min) * 1e3,
        data.t_ref.iter().cloned().fold(0.0, f64::max) * 1e3,
    );

    let mut predictor = ScorePredictor::new(PredictorKind::Xgboost, "riscv", "matmul", 1);
    predictor.train(std::slice::from_ref(&data))?;
    println!("[2/3] trained {} score predictor", predictor.kind());

    // -- Execution phase (paper Fig. 4-II): no target hardware ---------
    println!("[3/3] tuning with simulators only...");
    let result = tune_with_predictor(
        &def,
        &spec,
        &predictor,
        &TuneOptions {
            n_trials: 48,
            batch_size: 12,
            n_parallel: 8,
            seed: 7,
            strategy: StrategySpec::Evolutionary,
            ..TuneOptions::default()
        },
    )?;
    println!(
        "      evaluated {} candidates with {} search, best predicted score {:+.3}",
        result.history.len(),
        result.strategy,
        result.best().score
    );

    // -- Verify the winner on the emulated target ----------------------
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let hw = HardwareRunner::new(spec.clone());
    let best_exe = builder.build(&result.best().schedule, "winner")?;
    let best_time = hw.run_one(&best_exe, 0)?.t_ref;

    // Compare against the median implementation from the training set.
    let mut times = data.t_ref.clone();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = times[times.len() / 2];
    println!(
        "\nwinner measured on target: {:.3} ms (median random schedule: {:.3} ms, \
         speedup {:.2}x)",
        best_time * 1e3,
        median * 1e3,
        median / best_time
    );
    println!("winner schedule: {}", result.best().description);
    Ok(())
}
