//! Compares the paper's four predictor families (Section IV-C) on one
//! Conv2D group: LinReg vs DNN vs Bayesian-optimized GP vs XGBoost,
//! using the Tables III–V protocol at example scale.
//!
//! ```text
//! cargo run --release --example predictor_comparison
//! ```

use simtune::core::{collect_group_data, evaluate_predictor, CollectOptions, FeatureConfig};
use simtune::hw::TargetSpec;
use simtune::predict::PredictorKind;
use simtune::tensor::{conv2d_bias_relu, Conv2dShape};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = TargetSpec::arm_cortex_a72();
    let shape = Conv2dShape {
        n: 1,
        h: 14,
        w: 14,
        co: 16,
        ci: 8,
        kh: 3,
        kw: 3,
        stride: (1, 1),
        pad: (1, 1),
    };
    let def = conv2d_bias_relu(&shape);
    println!("collecting one conv2d group on {} ...", spec.name());
    let data = collect_group_data(
        &def,
        &spec,
        0,
        &CollectOptions {
            n_impls: 80,
            n_parallel: 8,
            seed: 9,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        },
    )?;
    println!("{} implementations collected\n", data.len());

    println!(
        "{:>8} | {:>7} {:>7} {:>7} {:>7} | {:>8}",
        "model", "Etop1%", "Qlow%", "Qhigh%", "Rtop1%", "fit time"
    );
    println!("{}", "-".repeat(60));
    for kind in PredictorKind::all() {
        let t0 = Instant::now();
        let report = evaluate_predictor(
            kind,
            std::slice::from_ref(&data),
            "arm",
            "conv2d_bias_relu",
            20,
            5,
            1,
            FeatureConfig::default(),
        )?;
        let m = &report.per_group[0];
        println!(
            "{:>8} | {:>7.2} {:>7.2} {:>7.2} {:>7.1} | {:>7.1}s",
            kind.label(),
            m.e_top1,
            m.q_low,
            m.q_high,
            m.r_top1,
            t0.elapsed().as_secs_f64()
        );
    }
    println!(
        "\nExpected shape (paper Tables III–V): the nonlinear models (DNN, Bayes,\n\
         XGBoost) beat plain linear regression, and the best implementation lands\n\
         within the top few percent of predictions."
    );
    Ok(())
}
