//! Demonstrates Contribution I in isolation: the simulator interface.
//!
//! * `n_parallel` simulator instances process a candidate batch
//!   concurrently (paper Fig. 1-I / Listing 3);
//! * the `simulator_run` hook is overridable through the function
//!   registry, mirroring the paper's TVM registry override (Listing 4).
//!
//! ```text
//! cargo run --release --example parallel_simulation
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use simtune::core::{FunctionRegistry, KernelBuilder, SimulatorRunner, LOCAL_RUNNER_RUN};
use simtune::hw::TargetSpec;
use simtune::isa::{simulate, RunLimits};
use simtune::tensor::{conv2d_bias_relu, Conv2dShape, SketchGenerator};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = TargetSpec::x86_ryzen_5800x();
    let shape = Conv2dShape {
        n: 1,
        h: 28,
        w: 28,
        co: 16,
        ci: 8,
        kh: 3,
        kw: 3,
        stride: (1, 1),
        pad: (1, 1),
    };
    let def = conv2d_bias_relu(&shape);

    // Build a batch of candidates.
    let generator = SketchGenerator::new(&def, spec.isa.clone());
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let mut rng = StdRng::seed_from_u64(4);
    let schedules: Vec<_> =
        std::iter::repeat_with(|| generator.schedule(&generator.random(&mut rng)))
            .filter(|s| s.apply(&def, &spec.isa).is_ok())
            .take(24)
            .collect();
    let exes: Vec<_> = builder
        .build_batch(&schedules)
        .into_iter()
        .flatten()
        .collect();
    println!(
        "built {} candidates ({:.2} MMACs each)",
        exes.len(),
        shape.macs() as f64 / 1e6
    );

    // Scaling over n_parallel.
    println!(
        "\n{:>10} | {:>9} | {:>8}",
        "n_parallel", "wall time", "speedup"
    );
    println!("{}", "-".repeat(34));
    let mut t1 = None;
    for n in [1usize, 2, 4, 8] {
        let runner = SimulatorRunner::new(spec.hierarchy.clone()).with_n_parallel(n);
        let t0 = Instant::now();
        let results = runner.run(&exes);
        let dt = t0.elapsed().as_secs_f64();
        assert!(results.iter().all(|r| r.is_ok()));
        let base = *t1.get_or_insert(dt);
        println!("{n:>10} | {:>8.2}s | {:>7.2}x", dt, base / dt);
    }

    // Registry override: plug a custom simulator into the same runner.
    println!("\noverriding {LOCAL_RUNNER_RUN} with a custom simulator...");
    let mut registry = FunctionRegistry::new();
    let hierarchy = spec.hierarchy.clone();
    registry.register_func(
        LOCAL_RUNNER_RUN,
        Arc::new(move |exe| {
            // A custom hook could shell out to gem5/QEMU here; we wrap
            // the built-in simulator and tag the result.
            let mut stats = simulate(exe, &hierarchy, RunLimits::default())?.stats;
            stats.host_nanos |= 1; // visible marker of the custom path
            Ok(stats)
        }),
        true,
    )?;
    let runner = registry.runner(spec.hierarchy.clone());
    let results = runner.run(&exes[..4]);
    for (i, r) in results.iter().enumerate() {
        let stats = r.as_ref().expect("runs");
        println!(
            "  candidate {i}: {:>9} insts, L1D miss {:>5.2} %, custom-path marker {}",
            stats.inst_mix.total(),
            stats.cache.l1d.read_miss_ratio() * 100.0,
            stats.host_nanos & 1
        );
    }
    Ok(())
}
