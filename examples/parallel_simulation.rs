//! Demonstrates Contribution I in isolation: the simulator interface.
//!
//! * `n_parallel` simulator instances process a candidate batch
//!   concurrently (paper Fig. 1-I / Listing 3);
//! * any simulator can be plugged in behind the runner through the
//!   typed `SimBackend` registry, mirroring the paper's TVM registry
//!   override (Listing 4) — including the bundled reduced-fidelity
//!   tiers (fast-count, sampled).
//!
//! ```text
//! cargo run --release --example parallel_simulation
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use simtune::core::KernelBuilder;
use simtune::hw::TargetSpec;
use simtune::isa::{simulate, Executable, RunLimits, SimStats};
use simtune::tensor::{conv2d_bias_relu, Conv2dShape, SketchGenerator};
use simtune::{BackendRegistry, FnBackend, SimSession};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = TargetSpec::x86_ryzen_5800x();
    let shape = Conv2dShape {
        n: 1,
        h: 28,
        w: 28,
        co: 16,
        ci: 8,
        kh: 3,
        kw: 3,
        stride: (1, 1),
        pad: (1, 1),
    };
    let def = conv2d_bias_relu(&shape);

    // Build a batch of candidates.
    let generator = SketchGenerator::new(&def, spec.isa.clone());
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let mut rng = StdRng::seed_from_u64(4);
    let schedules: Vec<_> =
        std::iter::repeat_with(|| generator.schedule(&generator.random(&mut rng)))
            .filter(|s| s.apply(&def, &spec.isa).is_ok())
            .take(24)
            .collect();
    let exes: Vec<_> = builder
        .build_batch(&schedules)
        .into_iter()
        .flatten()
        .collect();
    println!(
        "built {} candidates ({:.2} MMACs each)",
        exes.len(),
        shape.macs() as f64 / 1e6
    );

    // Scaling over n_parallel.
    println!(
        "\n{:>10} | {:>9} | {:>8}",
        "n_parallel", "wall time", "speedup"
    );
    println!("{}", "-".repeat(34));
    let mut t1 = None;
    for n in [1usize, 2, 4, 8] {
        let session = SimSession::builder()
            .accurate(&spec.hierarchy)
            .n_parallel(n)
            .build()?;
        let t0 = Instant::now();
        let results = session.run(&exes);
        let dt = t0.elapsed().as_secs_f64();
        assert!(results.iter().all(|r| r.is_ok()));
        let base = *t1.get_or_insert(dt);
        println!("{n:>10} | {:>8.2}s | {:>7.2}x", dt, base / dt);
    }

    // Fidelity tiers: the same batch on every bundled backend.
    println!("\nsame batch across the bundled fidelity tiers...");
    let registry = BackendRegistry::with_defaults(&spec.hierarchy, 0.25)?;
    for name in registry.names() {
        let session = SimSession::builder()
            .from_registry(&registry, name)
            .n_parallel(8)
            .build()?;
        let t0 = Instant::now();
        let reports = session.run(&exes);
        let dt = t0.elapsed().as_secs_f64();
        let first = reports[0].as_ref().expect("runs");
        println!(
            "  {name:>10}: {:>9} insts, L1D miss {:>5.2} %, batch in {dt:.2}s",
            first.stats.inst_mix.total(),
            first.stats.cache.l1d.read_miss_ratio() * 100.0,
        );
    }

    // Custom backend: plug any simulator into the same session (the
    // paper's registry-override integration, typed).
    println!("\nplugging a custom simulator backend into the session...");
    let hierarchy = spec.hierarchy.clone();
    let custom = FnBackend::new(
        "gem5-wrapper",
        Arc::new(move |exe: &Executable| -> Result<SimStats, _> {
            // A custom backend could shell out to gem5/QEMU here; we
            // wrap the built-in simulator and tag the result.
            let mut stats = simulate(exe, &hierarchy, RunLimits::default())?.stats;
            stats.host_nanos |= 1; // visible marker of the custom path
            Ok(stats)
        }),
    );
    let session = SimSession::builder().backend(Arc::new(custom)).build()?;
    let results = session.run(&exes[..4]);
    for (i, r) in results.iter().enumerate() {
        let report = r.as_ref().expect("runs");
        println!(
            "  candidate {i} via {:>12}: {:>9} insts, custom-path marker {}",
            report.backend,
            report.stats.inst_mix.total(),
            report.stats.host_nanos & 1
        );
    }
    Ok(())
}
