//! Strategy comparison on the paper's Conv2D workload: the same tuning
//! budget, the same trained predictor and the same parallel simulators
//! under every built-in search strategy.
//!
//! The paper's Contribution I makes simulations cheap and parallel;
//! this example shows the knob that remains once runs are cheap —
//! *which* candidate to simulate next. A ResNet Conv2D+Bias+ReLU layer
//! (Table II group 1, quarter scale) is tuned under random, grid,
//! hill-climbing, evolutionary and annealing search, and each winner is
//! re-measured on the emulated target board so the comparison uses real
//! (emulated) seconds, not predictor scores.
//!
//! ```text
//! cargo run --release --example strategy_comparison
//! ```

use simtune::core::{
    collect_group_data, tune_with_predictor, CollectOptions, HardwareRunner, KernelBuilder,
    ScorePredictor, StrategySpec, TuneOptions,
};
use simtune::hw::TargetSpec;
use simtune::predict::PredictorKind;
use simtune::tensor::{conv2d_bias_relu, Conv2dShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = TargetSpec::arm_cortex_a72();
    let shape = Conv2dShape::paper_groups()[1].scaled(4, 4);
    let def = conv2d_bias_relu(&shape);
    println!(
        "conv2d {}x{} co={} ci={} ({:.2} MMACs) on {}",
        shape.h,
        shape.w,
        shape.co,
        shape.ci,
        shape.macs() as f64 / 1e6,
        spec.name()
    );

    println!("\ntraining score predictor...");
    let data = collect_group_data(
        &def,
        &spec,
        1,
        &CollectOptions {
            n_impls: 60,
            n_parallel: 8,
            seed: 3,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        },
    )?;
    let mut predictor = ScorePredictor::new(PredictorKind::Xgboost, "arm", "conv2d_bias_relu", 1);
    predictor.train(std::slice::from_ref(&data))?;

    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let hw = HardwareRunner::new(spec.clone());

    println!("\nsweeping strategies at 40 trials each...\n");
    println!(
        "{:>13} | {:>12} | {:>11} | {:>13} | {:>12}",
        "strategy", "measured best", "simulations", "trials-to-best", "improvements"
    );
    println!("{}", "-".repeat(72));
    for strategy in StrategySpec::all() {
        let opts = TuneOptions {
            n_trials: 40,
            batch_size: 10,
            n_parallel: 8,
            seed: 11,
            strategy,
            ..TuneOptions::default()
        };
        let result = tune_with_predictor(&def, &spec, &predictor, &opts)?;
        // Re-measure the predicted winner on the emulated board: the
        // paper's protocol for turning predictor ranks into seconds.
        let exe = builder.build(&result.best().schedule, &result.strategy)?;
        let measured = hw.run_one(&exe, 0)?.t_ref;
        let c = result.convergence;
        println!(
            "{:>13} | {:>9.3} ms | {:>11} | {:>13} | {:>12}",
            result.strategy,
            measured * 1e3,
            result.simulations,
            c.trials_to_best,
            c.improvements
        );
    }
    println!(
        "\nEvery strategy paid the same simulation budget; the differences\n\
         above are purely in how the budget was spent."
    );
    Ok(())
}
