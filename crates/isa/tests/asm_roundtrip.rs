//! Textual round-trip of the whole ISA: every instruction variant is
//! encoded (`Display`), disassembled as part of a program listing, and
//! re-parsed — both levels must reproduce the original exactly.

use simtune_isa::{parse_inst, parse_program, Fpr, Gpr, Inst, ProgramBuilder, Vr};

/// One representative of every `Inst` variant, with asymmetric operand
/// values so that swapped fields cannot round-trip by accident.
fn all_variants() -> Vec<Inst> {
    vec![
        Inst::Li {
            rd: Gpr(1),
            imm: -5,
        },
        Inst::Addi {
            rd: Gpr(2),
            rs: Gpr(3),
            imm: 8,
        },
        Inst::Add {
            rd: Gpr(4),
            rs1: Gpr(5),
            rs2: Gpr(6),
        },
        Inst::Sub {
            rd: Gpr(7),
            rs1: Gpr(8),
            rs2: Gpr(9),
        },
        Inst::Mul {
            rd: Gpr(10),
            rs1: Gpr(11),
            rs2: Gpr(12),
        },
        Inst::Muli {
            rd: Gpr(13),
            rs: Gpr(14),
            imm: -24,
        },
        Inst::Slli {
            rd: Gpr(15),
            rs: Gpr(1),
            shamt: 3,
        },
        Inst::Mv {
            rd: Gpr(2),
            rs: Gpr(3),
        },
        Inst::Ld {
            rd: Gpr(4),
            rs: Gpr(5),
            imm: 16,
        },
        Inst::Sd {
            rval: Gpr(6),
            rs: Gpr(7),
            imm: -32,
        },
        Inst::Fli {
            fd: Fpr(1),
            imm: 2.5,
        },
        Inst::Flw {
            fd: Fpr(2),
            rs: Gpr(3),
            imm: 4,
        },
        Inst::Fsw {
            fval: Fpr(3),
            rs: Gpr(4),
            imm: -8,
        },
        Inst::Fadd {
            fd: Fpr(4),
            fs1: Fpr(5),
            fs2: Fpr(6),
        },
        Inst::Fsub {
            fd: Fpr(7),
            fs1: Fpr(8),
            fs2: Fpr(9),
        },
        Inst::Fmul {
            fd: Fpr(10),
            fs1: Fpr(11),
            fs2: Fpr(12),
        },
        Inst::Fdiv {
            fd: Fpr(13),
            fs1: Fpr(14),
            fs2: Fpr(15),
        },
        Inst::Fmadd {
            fd: Fpr(1),
            fs1: Fpr(2),
            fs2: Fpr(3),
            fs3: Fpr(4),
        },
        Inst::Fmax {
            fd: Fpr(5),
            fs1: Fpr(6),
            fs2: Fpr(7),
        },
        Inst::Fcvt {
            fd: Fpr(8),
            rs: Gpr(9),
        },
        Inst::Vload {
            vd: Vr(1),
            rs: Gpr(2),
            imm: 0,
        },
        Inst::Vstore {
            vval: Vr(2),
            rs: Gpr(3),
            imm: 64,
        },
        Inst::Vbcast {
            vd: Vr(3),
            fs: Fpr(4),
        },
        Inst::Vsplat {
            vd: Vr(4),
            imm: -1.25,
        },
        Inst::Vfadd {
            vd: Vr(5),
            vs1: Vr(6),
            vs2: Vr(7),
        },
        Inst::Vfmul {
            vd: Vr(0),
            vs1: Vr(1),
            vs2: Vr(2),
        },
        Inst::Vfma {
            vd: Vr(3),
            vs1: Vr(4),
            vs2: Vr(5),
        },
        Inst::Vfmax {
            vd: Vr(6),
            vs1: Vr(7),
            vs2: Vr(0),
        },
        Inst::Vredsum {
            fd: Fpr(9),
            vs: Vr(1),
        },
        Inst::Vinsert {
            vd: Vr(2),
            fs: Fpr(10),
            lane: 3,
        },
        Inst::Vextract {
            fd: Fpr(11),
            vs: Vr(3),
            lane: 7,
        },
        Inst::Blt {
            rs1: Gpr(1),
            rs2: Gpr(2),
            target: 40,
        },
        Inst::Bge {
            rs1: Gpr(3),
            rs2: Gpr(4),
            target: 41,
        },
        Inst::Bne {
            rs1: Gpr(5),
            rs2: Gpr(6),
            target: 42,
        },
        Inst::Jmp { target: 43 },
        Inst::Ecall { code: 7 },
        Inst::Halt,
    ]
}

/// Forces `all_variants` to stay exhaustive: adding an `Inst` variant
/// breaks this match until the list above is extended.
fn assert_variant_covered(inst: &Inst) {
    match inst {
        Inst::Li { .. }
        | Inst::Addi { .. }
        | Inst::Add { .. }
        | Inst::Sub { .. }
        | Inst::Mul { .. }
        | Inst::Muli { .. }
        | Inst::Slli { .. }
        | Inst::Mv { .. }
        | Inst::Ld { .. }
        | Inst::Sd { .. }
        | Inst::Fli { .. }
        | Inst::Flw { .. }
        | Inst::Fsw { .. }
        | Inst::Fadd { .. }
        | Inst::Fsub { .. }
        | Inst::Fmul { .. }
        | Inst::Fdiv { .. }
        | Inst::Fmadd { .. }
        | Inst::Fmax { .. }
        | Inst::Fcvt { .. }
        | Inst::Vload { .. }
        | Inst::Vstore { .. }
        | Inst::Vbcast { .. }
        | Inst::Vsplat { .. }
        | Inst::Vfadd { .. }
        | Inst::Vfmul { .. }
        | Inst::Vfma { .. }
        | Inst::Vfmax { .. }
        | Inst::Vredsum { .. }
        | Inst::Vinsert { .. }
        | Inst::Vextract { .. }
        | Inst::Blt { .. }
        | Inst::Bge { .. }
        | Inst::Bne { .. }
        | Inst::Jmp { .. }
        | Inst::Ecall { .. }
        | Inst::Halt => {}
    }
}

#[test]
fn every_variant_roundtrips_through_text() {
    for inst in all_variants() {
        assert_variant_covered(&inst);
        let text = inst.to_string();
        let back = parse_inst(&text).unwrap_or_else(|e| panic!("{text:?} failed to parse: {e}"));
        assert_eq!(inst, back, "text was {text:?}");
    }
}

#[test]
fn whole_program_listing_roundtrips() {
    // Branch targets must be in range for the program to validate, so
    // rewrite them to point inside this listing.
    let mut insts = all_variants();
    let len = insts.len();
    for inst in &mut insts {
        match inst {
            Inst::Blt { target, .. }
            | Inst::Bge { target, .. }
            | Inst::Bne { target, .. }
            | Inst::Jmp { target } => *target %= len,
            _ => {}
        }
    }
    let mut b = ProgramBuilder::new();
    for inst in &insts {
        b.push(*inst);
    }
    let program = b.build().expect("valid program");
    let listing = program.disassemble();
    let reparsed = parse_program(&listing).expect("listing parses");
    assert_eq!(program.insts(), reparsed.insts());
}

#[test]
fn listing_with_comments_and_blanks_parses() {
    let src = "
        # scalar setup
        li r1, 4

        li r2, 10
        add r3, r1, r2   # r3 = 14
        halt
    ";
    let p = parse_program(src).expect("parses");
    assert_eq!(p.len(), 4);
    assert_eq!(
        p.insts()[2],
        Inst::Add {
            rd: Gpr(3),
            rs1: Gpr(1),
            rs2: Gpr(2)
        }
    );
}
