//! Contract suite for the torture-program generator: the invariants
//! `torture.rs` documents, checked over the whole scenario corpus and
//! over adversarial random configs.
//!
//! Three invariants, for every config and every seed:
//!
//! 1. **termination** — every program halts (or faults at a guarded
//!    fault site) well under a 100 000-instruction budget; it never
//!    exhausts the budget, runs off the code segment, or touches
//!    unmapped memory;
//! 2. **window containment** — every memory access is `BASE`-relative
//!    with an 8-aligned offset inside `[0, TORTURE_WINDOW - 32]`, and
//!    no instruction after the preamble overwrites the base register,
//!    so the bound holds *statically*, not just on observed paths;
//! 3. **determinism** — the same `(config, seed)` pair yields a
//!    byte-identical program (and disassembly), the replay property
//!    every journaled fuzz failure depends on.

use proptest::prelude::*;
use simtune_cache::{CacheHierarchy, HierarchyConfig};
use simtune_isa::{
    torture_program, torture_program_with, AtomicCpu, Gpr, Inst, Memory, MemoryPattern, Program,
    RunLimits, SimError, TargetIsa, TortureConfig, TORTURE_FAULT_CODE, TORTURE_WINDOW,
};

/// Generous budget: the generator's documented worst case is far below.
const BUDGET: u64 = 100_000;

fn every_config() -> Vec<(String, TortureConfig)> {
    TortureConfig::corpus()
        .into_iter()
        .map(|(n, c)| (n.to_string(), c))
        .collect()
}

/// Runs one program to completion on the reference interpreter and
/// asserts the only permitted outcomes: normal halt, or the injected
/// fault syscall.
fn assert_terminates(ctx: &str, prog: &Program) {
    let target = TargetIsa::riscv_u74();
    let mut cpu = AtomicCpu::new(&target);
    let mut mem = Memory::new();
    let mut hier = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
    match cpu.run(prog, &mut mem, &mut hier, RunLimits { max_insts: BUDGET }) {
        Ok(stats) => assert!(stats.inst_mix.total() > 0, "{ctx}: empty run"),
        Err(SimError::UnknownSyscall { code }) => {
            assert_eq!(code, TORTURE_FAULT_CODE, "{ctx}: unexpected syscall");
        }
        Err(e) => panic!("{ctx}: non-terminating or faulting program: {e}"),
    }
}

/// Statically proves window containment: every memory operand is
/// `r1`-relative with an 8-aligned in-window offset, and `r1` is only
/// written by the first preamble instruction.
fn assert_window_contained(ctx: &str, prog: &Program) {
    const BASE: Gpr = Gpr(1);
    let max_off = (TORTURE_WINDOW - 32) as i64;
    for (i, inst) in prog.insts().iter().enumerate() {
        match *inst {
            Inst::Ld { rs, imm, .. }
            | Inst::Sd { rs, imm, .. }
            | Inst::Flw { rs, imm, .. }
            | Inst::Fsw { rs, imm, .. }
            | Inst::Vload { rs, imm, .. }
            | Inst::Vstore { rs, imm, .. } => {
                assert_eq!(rs, BASE, "{ctx}: access {i} not base-relative");
                assert!(
                    (0..=max_off).contains(&imm) && imm % 8 == 0,
                    "{ctx}: access {i} offset {imm} escapes the window"
                );
            }
            _ => {}
        }
        // The data base must stay constant after the preamble sets it.
        let writes_base = match *inst {
            Inst::Li { rd, .. }
            | Inst::Addi { rd, .. }
            | Inst::Add { rd, .. }
            | Inst::Sub { rd, .. }
            | Inst::Mul { rd, .. }
            | Inst::Muli { rd, .. }
            | Inst::Slli { rd, .. }
            | Inst::Mv { rd, .. }
            | Inst::Ld { rd, .. } => rd == BASE,
            _ => false,
        };
        assert!(
            !writes_base || i == 0,
            "{ctx}: instruction {i} overwrites the data base register"
        );
    }
}

#[test]
fn every_corpus_scenario_terminates_for_many_seeds() {
    for (name, cfg) in every_config() {
        for seed in 0..32 {
            let prog = torture_program_with(&cfg, seed);
            assert_terminates(&format!("{name} seed {seed}"), &prog);
        }
    }
}

#[test]
fn every_corpus_scenario_stays_inside_the_window() {
    for (name, cfg) in every_config() {
        for seed in 0..32 {
            let prog = torture_program_with(&cfg, seed);
            assert_window_contained(&format!("{name} seed {seed}"), &prog);
        }
    }
}

#[test]
fn same_seed_yields_byte_identical_programs() {
    for (name, cfg) in every_config() {
        for seed in [0, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            let a = torture_program_with(&cfg, seed);
            let b = torture_program_with(&cfg, seed);
            assert_eq!(a, b, "{name} seed {seed}");
            assert_eq!(a.disassemble(), b.disassemble(), "{name} seed {seed}");
        }
    }
}

#[test]
fn baseline_wrapper_matches_the_baseline_preset() {
    for seed in 0..8 {
        assert_eq!(
            torture_program(seed),
            torture_program_with(&TortureConfig::baseline(), seed)
        );
    }
}

#[test]
fn seeds_decorrelate_programs() {
    // Not a strict invariant of every pair, but if many consecutive
    // seeds collide the RNG plumbing is broken.
    let distinct = (0..32)
        .map(|s| torture_program(s).disassemble())
        .collect::<std::collections::HashSet<_>>()
        .len();
    assert!(distinct >= 31, "only {distinct}/32 distinct programs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The three invariants hold for *arbitrary* configs, including
    /// values far outside the documented ranges (the generator clamps).
    #[test]
    fn arbitrary_configs_uphold_the_generator_contract(
        loop_depth in 0u8..=255,
        max_trip in 0u8..=255,
        body_lo in 0u8..=255,
        body_hi in 0u8..=255,
        branch_density in 0u8..=255,
        fault_rate in 0u8..=255,
        vector_mix in 0u8..=255,
        pattern in 0usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = TortureConfig {
            loop_depth,
            max_trip,
            body_insts: (body_lo, body_hi),
            branch_density,
            memory_pattern: [
                MemoryPattern::Sequential,
                MemoryPattern::Strided,
                MemoryPattern::Irregular,
                MemoryPattern::Clustered,
            ][pattern],
            fault_rate,
            vector_mix,
        };
        let prog = torture_program_with(&cfg, seed);
        prop_assert_eq!(&prog, &torture_program_with(&cfg, seed));
        assert_window_contained("random config", &prog);
        assert_terminates("random config", &prog);
    }
}
