use crate::inst::MAX_LANES;
use crate::{BuildProgramError, Fpr, Gpr, Inst, Label, Vr};
use std::collections::HashMap;

/// Hard bound of the integer register file (targets expose fewer).
pub(crate) const GPR_FILE: usize = 32;
/// Hard bound of the float register file.
pub(crate) const FPR_FILE: usize = 32;
/// Hard bound of the vector register file.
pub(crate) const VR_FILE: usize = 32;

/// A validated, label-resolved instruction sequence.
///
/// Obtained from [`ProgramBuilder::build`]; every branch target points
/// inside the program, every register index is within the hard register
/// file bounds, and a terminator is guaranteed to exist.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// The instruction sequence.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions (static code size).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program has no instructions (never true for built
    /// programs, which require a terminator).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Static code footprint in bytes for a given encoding width,
    /// used to lay the program out for I-cache simulation.
    pub fn code_bytes(&self, inst_bytes: u64) -> u64 {
        self.insts.len() as u64 * inst_bytes
    }

    /// Builds a program directly from instructions whose branch targets
    /// are already resolved indices — the entry point for tools that
    /// transform existing programs (the delta-debugging shrinker,
    /// journal replay) rather than assemble new ones through labels.
    ///
    /// Validation matches [`ProgramBuilder::build`]: non-empty, every
    /// register inside the hard file bounds, a terminator present —
    /// plus an in-range check on every pre-resolved branch target
    /// (builder programs get that for free from label resolution).
    ///
    /// # Errors
    ///
    /// Returns [`BuildProgramError`] on any violation above.
    pub fn from_insts(insts: Vec<Inst>) -> Result<Program, BuildProgramError> {
        if insts.is_empty() {
            return Err(BuildProgramError::Empty);
        }
        if !insts.iter().any(|i| i.is_terminator()) {
            return Err(BuildProgramError::MissingTerminator);
        }
        let len = insts.len();
        for (at, inst) in insts.iter().enumerate() {
            validate_registers(inst, at)?;
            if let Inst::Blt { target, .. }
            | Inst::Bge { target, .. }
            | Inst::Bne { target, .. }
            | Inst::Jmp { target } = *inst
            {
                if target >= len {
                    return Err(BuildProgramError::BranchTargetOutOfRange { at, target });
                }
            }
        }
        Ok(Program { insts })
    }
}

/// Incremental program assembler with labels and validation.
///
/// # Example
///
/// ```
/// use simtune_isa::{Gpr, Inst, ProgramBuilder};
///
/// # fn main() -> Result<(), simtune_isa::BuildProgramError> {
/// // Count r1 from 0 to 10.
/// let mut b = ProgramBuilder::new();
/// b.push(Inst::Li { rd: Gpr(1), imm: 0 });
/// b.push(Inst::Li { rd: Gpr(2), imm: 10 });
/// let top = b.bind_new_label();
/// b.push(Inst::Addi { rd: Gpr(1), rs: Gpr(1), imm: 1 });
/// b.branch_lt(Gpr(1), Gpr(2), top);
/// b.push(Inst::Halt);
/// let prog = b.build()?;
/// assert_eq!(prog.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    labels: HashMap<u32, usize>,
    next_label: u32,
    // (instruction index, label) pairs to patch at build time.
    fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an instruction and returns its index.
    pub fn push(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    /// Current instruction count (the index the next `push` will get).
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Allocates a fresh unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (programmer error in codegen).
    pub fn bind(&mut self, label: Label) {
        let prev = self.labels.insert(label.0, self.insts.len());
        assert!(prev.is_none(), "label {} bound twice", label.0);
    }

    /// Convenience: allocate a label and bind it here.
    pub fn bind_new_label(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Emits `blt rs1, rs2, label` with a deferred target.
    pub fn branch_lt(&mut self, rs1: Gpr, rs2: Gpr, label: Label) {
        let at = self.push(Inst::Blt {
            rs1,
            rs2,
            target: usize::MAX,
        });
        self.fixups.push((at, label));
    }

    /// Emits `bge rs1, rs2, label` with a deferred target.
    pub fn branch_ge(&mut self, rs1: Gpr, rs2: Gpr, label: Label) {
        let at = self.push(Inst::Bge {
            rs1,
            rs2,
            target: usize::MAX,
        });
        self.fixups.push((at, label));
    }

    /// Emits `bne rs1, rs2, label` with a deferred target.
    pub fn branch_ne(&mut self, rs1: Gpr, rs2: Gpr, label: Label) {
        let at = self.push(Inst::Bne {
            rs1,
            rs2,
            target: usize::MAX,
        });
        self.fixups.push((at, label));
    }

    /// Emits `jmp label` with a deferred target.
    pub fn jump(&mut self, label: Label) {
        let at = self.push(Inst::Jmp { target: usize::MAX });
        self.fixups.push((at, label));
    }

    /// Resolves labels, validates registers and returns the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildProgramError`] if the program is empty, lacks a
    /// terminator, references an unbound label, or uses a register index
    /// outside the hard register file bounds.
    pub fn build(mut self) -> Result<Program, BuildProgramError> {
        if self.insts.is_empty() {
            return Err(BuildProgramError::Empty);
        }
        for (at, label) in &self.fixups {
            let target = *self
                .labels
                .get(&label.0)
                .ok_or(BuildProgramError::UnboundLabel {
                    label: label.0,
                    at: *at,
                })?;
            match &mut self.insts[*at] {
                Inst::Blt { target: t, .. }
                | Inst::Bge { target: t, .. }
                | Inst::Bne { target: t, .. }
                | Inst::Jmp { target: t } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        if !self.insts.iter().any(|i| i.is_terminator()) {
            return Err(BuildProgramError::MissingTerminator);
        }
        for (at, inst) in self.insts.iter().enumerate() {
            validate_registers(inst, at)?;
        }
        Ok(Program { insts: self.insts })
    }
}

fn validate_registers(inst: &Inst, at: usize) -> Result<(), BuildProgramError> {
    let g = |r: Gpr| -> Result<(), BuildProgramError> {
        if (r.0 as usize) < GPR_FILE {
            Ok(())
        } else {
            Err(BuildProgramError::RegisterOutOfRange {
                file: "gpr",
                index: r.0,
                at,
            })
        }
    };
    let fp = |r: Fpr| -> Result<(), BuildProgramError> {
        if (r.0 as usize) < FPR_FILE {
            Ok(())
        } else {
            Err(BuildProgramError::RegisterOutOfRange {
                file: "fpr",
                index: r.0,
                at,
            })
        }
    };
    let v = |r: Vr| -> Result<(), BuildProgramError> {
        if (r.0 as usize) < VR_FILE {
            Ok(())
        } else {
            Err(BuildProgramError::RegisterOutOfRange {
                file: "vr",
                index: r.0,
                at,
            })
        }
    };
    let lane = |l: u8| -> Result<(), BuildProgramError> {
        if (l as usize) < MAX_LANES {
            Ok(())
        } else {
            Err(BuildProgramError::RegisterOutOfRange {
                file: "vr",
                index: l,
                at,
            })
        }
    };
    match *inst {
        Inst::Li { rd, .. } => g(rd),
        Inst::Addi { rd, rs, .. } | Inst::Muli { rd, rs, .. } | Inst::Mv { rd, rs } => {
            g(rd).and(g(rs))
        }
        Inst::Slli { rd, rs, .. } => g(rd).and(g(rs)),
        Inst::Add { rd, rs1, rs2 } | Inst::Sub { rd, rs1, rs2 } | Inst::Mul { rd, rs1, rs2 } => {
            g(rd).and(g(rs1)).and(g(rs2))
        }
        Inst::Ld { rd, rs, .. } => g(rd).and(g(rs)),
        Inst::Sd { rval, rs, .. } => g(rval).and(g(rs)),
        Inst::Fli { fd, .. } => fp(fd),
        Inst::Flw { fd, rs, .. } => fp(fd).and(g(rs)),
        Inst::Fsw { fval, rs, .. } => fp(fval).and(g(rs)),
        Inst::Fadd { fd, fs1, fs2 }
        | Inst::Fsub { fd, fs1, fs2 }
        | Inst::Fmul { fd, fs1, fs2 }
        | Inst::Fdiv { fd, fs1, fs2 }
        | Inst::Fmax { fd, fs1, fs2 } => fp(fd).and(fp(fs1)).and(fp(fs2)),
        Inst::Fmadd { fd, fs1, fs2, fs3 } => fp(fd).and(fp(fs1)).and(fp(fs2)).and(fp(fs3)),
        Inst::Fcvt { fd, rs } => fp(fd).and(g(rs)),
        Inst::Vload { vd, rs, .. } => v(vd).and(g(rs)),
        Inst::Vstore { vval, rs, .. } => v(vval).and(g(rs)),
        Inst::Vbcast { vd, fs } => v(vd).and(fp(fs)),
        Inst::Vsplat { vd, .. } => v(vd),
        Inst::Vfadd { vd, vs1, vs2 }
        | Inst::Vfmul { vd, vs1, vs2 }
        | Inst::Vfma { vd, vs1, vs2 }
        | Inst::Vfmax { vd, vs1, vs2 } => v(vd).and(v(vs1)).and(v(vs2)),
        Inst::Vredsum { fd, vs } => fp(fd).and(v(vs)),
        Inst::Vinsert { vd, fs, lane: l } => v(vd).and(fp(fs)).and(lane(l)),
        Inst::Vextract { fd, vs, lane: l } => fp(fd).and(v(vs)).and(lane(l)),
        Inst::Blt { rs1, rs2, .. } | Inst::Bge { rs1, rs2, .. } | Inst::Bne { rs1, rs2, .. } => {
            g(rs1).and(g(rs2))
        }
        Inst::Jmp { .. } | Inst::Ecall { .. } | Inst::Halt => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_resolves_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        b.push(Inst::Li { rd: Gpr(1), imm: 0 });
        b.jump(end);
        b.push(Inst::Li {
            rd: Gpr(1),
            imm: 99,
        }); // skipped
        b.bind(end);
        b.push(Inst::Halt);
        let p = b.build().unwrap();
        match p.insts()[1] {
            Inst::Jmp { target } => assert_eq!(target, 3),
            ref other => panic!("expected jmp, got {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.jump(l);
        b.push(Inst::Halt);
        assert!(matches!(
            b.build(),
            Err(BuildProgramError::UnboundLabel { .. })
        ));
    }

    #[test]
    fn missing_terminator_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li { rd: Gpr(0), imm: 1 });
        assert!(matches!(
            b.build(),
            Err(BuildProgramError::MissingTerminator)
        ));
    }

    #[test]
    fn empty_program_is_an_error() {
        assert!(matches!(
            ProgramBuilder::new().build(),
            Err(BuildProgramError::Empty)
        ));
    }

    #[test]
    fn register_bounds_are_enforced() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li {
            rd: Gpr(32),
            imm: 0,
        });
        b.push(Inst::Halt);
        assert!(matches!(
            b.build(),
            Err(BuildProgramError::RegisterOutOfRange { file: "gpr", .. })
        ));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn from_insts_validates_targets_registers_and_terminator() {
        // Round trip: a built program's instructions rebuild verbatim.
        let mut b = ProgramBuilder::new();
        let top = b.bind_new_label();
        b.push(Inst::Li { rd: Gpr(1), imm: 1 });
        b.branch_lt(Gpr(1), Gpr(2), top);
        b.push(Inst::Halt);
        let p = b.build().unwrap();
        let rebuilt = Program::from_insts(p.insts().to_vec()).unwrap();
        assert_eq!(rebuilt, p);

        assert!(matches!(
            Program::from_insts(vec![]),
            Err(BuildProgramError::Empty)
        ));
        assert!(matches!(
            Program::from_insts(vec![Inst::Li { rd: Gpr(1), imm: 0 }]),
            Err(BuildProgramError::MissingTerminator)
        ));
        assert!(matches!(
            Program::from_insts(vec![Inst::Jmp { target: 2 }, Inst::Halt]),
            Err(BuildProgramError::BranchTargetOutOfRange { at: 0, target: 2 })
        ));
        assert!(matches!(
            Program::from_insts(vec![
                Inst::Li {
                    rd: Gpr(40),
                    imm: 0
                },
                Inst::Halt
            ]),
            Err(BuildProgramError::RegisterOutOfRange { file: "gpr", .. })
        ));
    }

    #[test]
    fn code_bytes_scales_with_encoding() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Halt);
        let p = b.build().unwrap();
        assert_eq!(p.code_bytes(4), 4);
    }
}
