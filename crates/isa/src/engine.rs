//! Replay-engine selection: which [`crate::ExecEngine`] drives a run.
//!
//! The ladder, from most general to fastest on repeated replay:
//!
//! 1. [`crate::InterpEngine`] — re-inspects the raw program each step;
//! 2. [`crate::DecodedEngine`] — replays the pre-decoded µop array;
//! 3. [`crate::ThreadedEngine`] — threaded-code dispatch over pre-bound
//!    handler pointers with pre-resolved successors;
//! 4. [`crate::BatchEngine`] — batched structure-of-arrays replay of the
//!    same program over many data sets at once.
//!
//! All four are observationally identical (same statistics, registers
//! and memory, bit for bit); the choice only moves host time.

use std::fmt;

/// Names one rung of the replay-engine ladder. Carried by tuning
/// sessions so every simulation — and every memoization fingerprint —
/// knows which engine produced it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Re-decoding interpreter ([`crate::InterpEngine`]): the reference
    /// loop, right for one-shot runs where decoding would not amortize.
    Interp,
    /// Pre-decoded µop replay ([`crate::DecodedEngine`]): the default.
    #[default]
    Decoded,
    /// Threaded-code dispatch ([`crate::ThreadedEngine`]): lowers the
    /// µop array once into pre-bound handler pointers.
    Threaded,
    /// Batched SoA replay ([`crate::BatchEngine`]) for groups of trials
    /// sharing one program; single trials fall back to the decoded loop.
    Batch,
}

impl EngineKind {
    /// Every engine, in ladder order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Interp,
        EngineKind::Decoded,
        EngineKind::Threaded,
        EngineKind::Batch,
    ];

    /// Stable lowercase name, used in CLI flags, perf summaries and
    /// memo fingerprints.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Interp => "interp",
            EngineKind::Decoded => "decoded",
            EngineKind::Threaded => "threaded",
            EngineKind::Batch => "batch",
        }
    }

    /// Parses a [`EngineKind::label`] back into the engine.
    pub fn parse(s: &str) -> Option<EngineKind> {
        EngineKind::ALL.into_iter().find(|e| e.label() == s)
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for e in EngineKind::ALL {
            assert_eq!(EngineKind::parse(e.label()), Some(e));
            assert_eq!(format!("{e}"), e.label());
        }
        assert_eq!(EngineKind::parse("jit"), None);
    }

    #[test]
    fn default_is_decoded() {
        assert_eq!(EngineKind::default(), EngineKind::Decoded);
    }
}
