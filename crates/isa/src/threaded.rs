//! Threaded-code replay: a [`DecodedProgram`] lowered once more into a
//! dense array of thunks, each carrying a pre-bound handler selector and
//! a pre-resolved fall-through successor.
//!
//! The decoded loop still pays two per-retirement dispatch costs: the
//! big `Inst` match inside the semantic core sees a *different* variant
//! every iteration (an unpredictable indirect branch), and the generic
//! `Step` match recomputes the successor even for straight-line code.
//! Classic threaded code (Forth, QEMU TCG's TB chaining, mijit's lowered
//! templates) removes both by storing, per µop, a pointer to a handler
//! specialized for that instruction kind plus the index of the next µop.
//!
//! [`ThreadedProgram::lower`] performs that binding once;
//! [`ThreadedEngine`] then replays the thunk array with an indirect call
//! per retirement. Every handler narrows the instruction to its own
//! variant **before** delegating to the shared semantic core
//! (`AtomicCpu::exec_inst`), so the inlined core collapses to the one
//! reachable arm per handler — native-like dispatch without duplicating
//! instruction semantics, keeping the engine bit-identical to
//! [`crate::InterpEngine`] and [`crate::DecodedEngine`] by construction.

use crate::cpu::Step;
use crate::decode::DecodedProgram;
use crate::{
    AtomicCpu, ExecEngine, ExecHook, Inst, InstMix, Memory, RunLimits, SimError, SimStats,
};
use simtune_cache::CacheHierarchy;

/// Successor sentinel: the handler observed a terminator.
const STOP: u32 = u32::MAX;

/// One µop in threaded form: the instruction, its precomputed fetch
/// address, the pre-resolved fall-through successor and the index of
/// the handler bound to its kind.
#[derive(Debug, Clone, Copy)]
struct Thunk {
    inst: Inst,
    fetch_addr: u64,
    /// Index of the µop control falls through to (`pc + 1`); branch
    /// handlers override it with the taken target.
    next: u32,
    /// Pre-bound handler index (one per instruction kind).
    handler: u8,
}

/// A [`DecodedProgram`] lowered into threaded form. Lower once per
/// program, replay many times via [`ThreadedEngine`].
#[derive(Debug, Clone)]
pub struct ThreadedProgram {
    thunks: Vec<Thunk>,
}

impl ThreadedProgram {
    /// Binds every µop of `prog` to its handler and pre-resolves the
    /// fall-through successor. Control-flow validity was already
    /// established by [`DecodedProgram::decode`], so lowering cannot
    /// fail.
    pub fn lower(prog: &DecodedProgram) -> ThreadedProgram {
        assert!(
            prog.len() < STOP as usize,
            "program too large for threaded lowering"
        );
        ThreadedProgram {
            thunks: prog
                .ops()
                .iter()
                .enumerate()
                .map(|(pc, op)| Thunk {
                    inst: op.inst,
                    fetch_addr: op.fetch_addr,
                    next: (pc + 1) as u32,
                    handler: handler_index(&op.inst),
                })
                .collect(),
        }
    }

    /// Number of thunks (equals the decoded program's µop count).
    pub fn len(&self) -> usize {
        self.thunks.len()
    }

    /// True when the program has no thunks (never for decoded programs,
    /// which require a terminator).
    pub fn is_empty(&self) -> bool {
        self.thunks.is_empty()
    }
}

/// Handler signature: execute the thunk's instruction and return the
/// next µop index ([`STOP`] on termination).
type Handler<H> = fn(
    &mut AtomicCpu,
    &Thunk,
    usize,
    &mut Memory,
    &mut CacheHierarchy,
    &mut H,
    u64,
    &mut InstMix,
) -> Result<u32, SimError>;

/// Generates one handler per instruction kind plus the kind → index
/// binding and the per-hook handler table. Each handler narrows to its
/// own variant so the inlined semantic core specializes per kind; the
/// `unreachable!` arm is dead by construction ([`ThreadedProgram::lower`]
/// binds handlers from the same match).
macro_rules! threaded_handlers {
    ($(($idx:literal, $name:ident, $pat:pat)),* $(,)?) => {
        fn handler_index(inst: &Inst) -> u8 {
            match *inst {
                $($pat => $idx,)*
            }
        }

        $(
            #[allow(clippy::too_many_arguments)] // mirrors the semantic core
            fn $name<H: ExecHook>(
                cpu: &mut AtomicCpu,
                t: &Thunk,
                pc: usize,
                mem: &mut Memory,
                hier: &mut CacheHierarchy,
                hook: &mut H,
                line_bytes: u64,
                mix: &mut InstMix,
            ) -> Result<u32, SimError> {
                match t.inst {
                    inst @ $pat => {
                        let step = cpu.exec_inst(&inst, pc, mem, hier, hook, line_bytes, mix)?;
                        Ok(match step {
                            Step::Next => t.next,
                            Step::Jump(target) => target as u32,
                            Step::Stop => STOP,
                        })
                    }
                    _ => unreachable!("thunk bound to the wrong handler"),
                }
            }
        )*

        fn handler_table<H: ExecHook>() -> [Handler<H>; 37] {
            [$($name::<H>,)*]
        }
    };
}

threaded_handlers! {
    (0, h_li, Inst::Li { .. }),
    (1, h_addi, Inst::Addi { .. }),
    (2, h_add, Inst::Add { .. }),
    (3, h_sub, Inst::Sub { .. }),
    (4, h_mul, Inst::Mul { .. }),
    (5, h_muli, Inst::Muli { .. }),
    (6, h_slli, Inst::Slli { .. }),
    (7, h_mv, Inst::Mv { .. }),
    (8, h_ld, Inst::Ld { .. }),
    (9, h_sd, Inst::Sd { .. }),
    (10, h_fli, Inst::Fli { .. }),
    (11, h_flw, Inst::Flw { .. }),
    (12, h_fsw, Inst::Fsw { .. }),
    (13, h_fadd, Inst::Fadd { .. }),
    (14, h_fsub, Inst::Fsub { .. }),
    (15, h_fmul, Inst::Fmul { .. }),
    (16, h_fdiv, Inst::Fdiv { .. }),
    (17, h_fmadd, Inst::Fmadd { .. }),
    (18, h_fmax, Inst::Fmax { .. }),
    (19, h_fcvt, Inst::Fcvt { .. }),
    (20, h_vload, Inst::Vload { .. }),
    (21, h_vstore, Inst::Vstore { .. }),
    (22, h_vbcast, Inst::Vbcast { .. }),
    (23, h_vsplat, Inst::Vsplat { .. }),
    (24, h_vfadd, Inst::Vfadd { .. }),
    (25, h_vfmul, Inst::Vfmul { .. }),
    (26, h_vfma, Inst::Vfma { .. }),
    (27, h_vfmax, Inst::Vfmax { .. }),
    (28, h_vredsum, Inst::Vredsum { .. }),
    (29, h_vinsert, Inst::Vinsert { .. }),
    (30, h_vextract, Inst::Vextract { .. }),
    (31, h_blt, Inst::Blt { .. }),
    (32, h_bge, Inst::Bge { .. }),
    (33, h_bne, Inst::Bne { .. }),
    (34, h_jmp, Inst::Jmp { .. }),
    (35, h_ecall, Inst::Ecall { .. }),
    (36, h_halt, Inst::Halt),
}

/// Replays a [`ThreadedProgram`]: per retirement, one indirect call
/// through the pre-bound handler table and a successor read from the
/// thunk — no `Inst` dispatch match, no `Step` match, no fetch-address
/// arithmetic.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedEngine<'p> {
    prog: &'p ThreadedProgram,
}

impl<'p> ThreadedEngine<'p> {
    /// Engine over a threaded program.
    pub fn new(prog: &'p ThreadedProgram) -> Self {
        ThreadedEngine { prog }
    }

    fn run_threaded<H: ExecHook>(
        &self,
        cpu: &mut AtomicCpu,
        mem: &mut Memory,
        hier: &mut CacheHierarchy,
        limits: RunLimits,
        stop_at: Option<u64>,
        hook: &mut H,
    ) -> Result<(SimStats, bool), SimError> {
        let thunks = self.prog.thunks.as_slice();
        let table = handler_table::<H>();
        let mut mix = InstMix::default();
        // Each retirement bumps exactly one counter `InstMix::total`
        // sums, so this local equals `mix.total()` without re-summing
        // seven fields per retirement.
        let mut retired: u64 = 0;
        let mut pc = 0u32;
        let line_bytes = hier.line_bytes();
        let mut completed = true;
        loop {
            if retired >= limits.max_insts {
                return Err(SimError::InstLimitExceeded {
                    limit: limits.max_insts,
                });
            }
            if stop_at.is_some_and(|budget| retired >= budget) {
                completed = false;
                break;
            }
            // In range by decode-time validation, like the decoded loop.
            let t = &thunks[pc as usize];
            hook.on_fetch(pc as usize, hier.fetch(t.fetch_addr));
            let next = table[t.handler as usize](
                cpu,
                t,
                pc as usize,
                mem,
                hier,
                hook,
                line_bytes,
                &mut mix,
            )?;
            hook.on_retire(&t.inst);
            retired += 1;
            if next == STOP {
                break;
            }
            pc = next;
        }
        debug_assert_eq!(retired, mix.total());
        Ok((
            SimStats {
                inst_mix: mix,
                cache: hier.stats(),
                host_nanos: 0,
            },
            completed,
        ))
    }
}

impl ExecEngine for ThreadedEngine<'_> {
    fn run_with_hook<H: ExecHook>(
        &self,
        cpu: &mut AtomicCpu,
        mem: &mut Memory,
        hier: &mut CacheHierarchy,
        limits: RunLimits,
        hook: &mut H,
    ) -> Result<SimStats, SimError> {
        self.run_threaded(cpu, mem, hier, limits, None, hook)
            .map(|(stats, _)| stats)
    }

    fn run_prefix_with_hook<H: ExecHook>(
        &self,
        cpu: &mut AtomicCpu,
        mem: &mut Memory,
        hier: &mut CacheHierarchy,
        limits: RunLimits,
        budget: u64,
        hook: &mut H,
    ) -> Result<(SimStats, bool), SimError> {
        self.run_threaded(cpu, mem, hier, limits, Some(budget), hook)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DecodedEngine, Gpr, NoopHook, ProgramBuilder, TargetIsa};
    use simtune_cache::HierarchyConfig;

    fn loop_program() -> crate::Program {
        // r1 = sum of 0..10 via a counted loop.
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li { rd: Gpr(1), imm: 0 });
        b.push(Inst::Li { rd: Gpr(2), imm: 0 });
        b.push(Inst::Li {
            rd: Gpr(3),
            imm: 10,
        });
        let top = b.bind_new_label();
        b.push(Inst::Add {
            rd: Gpr(1),
            rs1: Gpr(1),
            rs2: Gpr(2),
        });
        b.push(Inst::Addi {
            rd: Gpr(2),
            rs: Gpr(2),
            imm: 1,
        });
        b.branch_lt(Gpr(2), Gpr(3), top);
        b.push(Inst::Halt);
        b.build().unwrap()
    }

    fn run<E: ExecEngine>(engine: &E, target: &TargetIsa) -> (SimStats, i64) {
        let mut cpu = AtomicCpu::new(target);
        let mut mem = Memory::new();
        let mut hier = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
        let stats = engine
            .run_with_hook(
                &mut cpu,
                &mut mem,
                &mut hier,
                RunLimits::default(),
                &mut NoopHook,
            )
            .unwrap();
        (stats, cpu.gpr(Gpr(1)))
    }

    #[test]
    fn threaded_matches_decoded_exactly() {
        let prog = loop_program();
        let target = TargetIsa::riscv_u74();
        let decoded = DecodedProgram::decode(&prog, &target).unwrap();
        let threaded = ThreadedProgram::lower(&decoded);
        assert_eq!(threaded.len(), decoded.len());
        assert!(!threaded.is_empty());
        let (a, ra) = run(&DecodedEngine::new(&decoded), &target);
        let (b, rb) = run(&ThreadedEngine::new(&threaded), &target);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        assert_eq!(ra, 45);
    }

    #[test]
    fn threaded_prefix_stops_at_budget() {
        let prog = loop_program();
        let target = TargetIsa::riscv_u74();
        let decoded = DecodedProgram::decode(&prog, &target).unwrap();
        let threaded = ThreadedProgram::lower(&decoded);
        let mut cpu = AtomicCpu::new(&target);
        let mut mem = Memory::new();
        let mut hier = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
        let (stats, completed) = ThreadedEngine::new(&threaded)
            .run_prefix_with_hook(
                &mut cpu,
                &mut mem,
                &mut hier,
                RunLimits::default(),
                7,
                &mut NoopHook,
            )
            .unwrap();
        assert!(!completed);
        assert_eq!(stats.inst_mix.total(), 7);
    }

    #[test]
    fn threaded_surfaces_inst_limit() {
        let prog = loop_program();
        let target = TargetIsa::riscv_u74();
        let decoded = DecodedProgram::decode(&prog, &target).unwrap();
        let threaded = ThreadedProgram::lower(&decoded);
        let mut cpu = AtomicCpu::new(&target);
        let mut mem = Memory::new();
        let mut hier = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
        let err = ThreadedEngine::new(&threaded)
            .run_with_hook(
                &mut cpu,
                &mut mem,
                &mut hier,
                RunLimits { max_insts: 5 },
                &mut NoopHook,
            )
            .unwrap_err();
        assert_eq!(err, SimError::InstLimitExceeded { limit: 5 });
    }

    #[test]
    fn every_handler_index_matches_its_binding() {
        // The handler table and `handler_index` come from the same macro
        // expansion; spot-check the binding is stable at both ends.
        assert_eq!(handler_index(&Inst::Li { rd: Gpr(0), imm: 0 }), 0);
        assert_eq!(handler_index(&Inst::Halt), 36);
    }
}
