//! Batched structure-of-arrays replay: N trials of the *same* decoded
//! program over N independent data sets, driven by one dispatch stream.
//!
//! Autotuning sweeps replay one candidate program over many inputs
//! (and a worker-pool batch often carries many same-program trials that
//! differ only in their data segments). Running them one at a time pays
//! the full per-retirement dispatch cost N times; running them as lanes
//! of one loop loads each µop once and applies it to every live lane —
//! the batching trick GPU-simulator parallelization applies to
//! independent workloads. Generated kernels branch on loop counters,
//! not data, so lanes almost always stay converged until `Halt`; when
//! they do diverge (data-dependent branch, early halt, per-lane fault)
//! each remaining lane is finished by a scalar loop identical to
//! [`crate::DecodedEngine`]'s.
//!
//! Lanes share no architectural state — each owns its CPU, memory and
//! cache hierarchy — so the per-lane event sequence is exactly the one
//! [`crate::DecodedEngine`] would produce, and every lane's statistics,
//! registers and memory are bit-identical to a solo run by construction.

use crate::cpu::Step;
use crate::decode::{DecodedProgram, MicroOp};
use crate::{AtomicCpu, ExecHook, Inst, InstMix, Memory, RunLimits, SimError, SimStats};
use simtune_cache::CacheHierarchy;

/// One lane of a batch: the full architectural state of one trial.
/// Mutable borrows keep the engine agnostic to how callers allocate
/// per-trial state.
pub struct BatchLane<'a, H: ExecHook> {
    /// The lane's CPU (register files).
    pub cpu: &'a mut AtomicCpu,
    /// The lane's memory image (data segments already materialized).
    pub mem: &'a mut Memory,
    /// The lane's cache hierarchy.
    pub hier: &'a mut CacheHierarchy,
    /// The lane's event hook.
    pub hook: &'a mut H,
}

/// Per-lane bookkeeping the lockstep loop threads through the run.
struct LaneState {
    mix: InstMix,
    // Equals `mix.total()`: each retirement bumps exactly one counter
    // the total sums (see `ThreadedEngine` for the same invariant).
    retired: u64,
    line_bytes: u64,
    // The pc this lane executes next; valid while the lane is live.
    next: usize,
}

/// Replays a [`DecodedProgram`] across many lanes at once.
///
/// This is deliberately *not* an [`crate::ExecEngine`] — its unit of
/// work is a whole batch, not a single CPU. Single-trial callers should
/// use [`crate::DecodedEngine`]; a batch of one produces bit-identical
/// results but pays a little lane bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct BatchEngine<'p> {
    prog: &'p DecodedProgram,
}

impl<'p> BatchEngine<'p> {
    /// Engine over a pre-decoded program.
    pub fn new(prog: &'p DecodedProgram) -> Self {
        BatchEngine { prog }
    }

    /// Runs every lane to completion (or its own error) and returns one
    /// outcome per lane, in lane order. Lanes halting early, faulting,
    /// or exhausting `limits` resolve independently; the rest keep
    /// running.
    pub fn run_lanes<H: ExecHook>(
        &self,
        lanes: &mut [BatchLane<'_, H>],
        limits: RunLimits,
    ) -> Vec<Result<SimStats, SimError>> {
        let ops = self.prog.ops();
        let n = lanes.len();
        let mut outcomes: Vec<Option<Result<SimStats, SimError>>> = (0..n).map(|_| None).collect();
        let mut states: Vec<LaneState> = lanes
            .iter()
            .map(|l| LaneState {
                mix: InstMix::default(),
                retired: 0,
                line_bytes: l.hier.line_bytes(),
                next: 0,
            })
            .collect();
        let ends = block_ends(ops);
        let mut pc = 0usize;

        // Full-width lockstep over straight-line *blocks*: every lane
        // live and converged at `pc`. This is where a same-program batch
        // earns its keep, so each lane runs a whole fall-through block
        // (everything up to the next branch/halt) in one tight scalar
        // burst — its instruction mix in a local the compiler can keep
        // in registers, no per-µop limit check (the block fits the
        // remaining budget by construction), and one convergence compare
        // per block instead of per µop. Lanes retire identical counts
        // while converged, so the shared budget bookkeeping trips every
        // lane exactly when its solo run would.
        let mut uneven = n == 0;
        while !uneven {
            if states[0].retired >= limits.max_insts {
                // Lanes retire in lockstep here, so the budget trips all
                // of them at once — exactly when each solo run would.
                return (0..n)
                    .map(|_| {
                        Err(SimError::InstLimitExceeded {
                            limit: limits.max_insts,
                        })
                    })
                    .collect();
            }
            let end = ends[pc] as usize;
            let blen = (end - pc + 1) as u64;
            let mut common: Option<usize> = None;
            if blen <= limits.max_insts - states[0].retired {
                for (l, (lane, st)) in lanes.iter_mut().zip(states.iter_mut()).enumerate() {
                    let line_bytes = st.line_bytes;
                    let mut mix = st.mix;
                    let mut i = pc;
                    let res = if H::IS_NOOP && lane.hier.is_counting_only() {
                        // Nobody observes per-fetch events and the fetch
                        // stream is a pure tally: run the block without
                        // per-µop hierarchy calls and credit one fetch
                        // per attempted µop afterwards — bit-identical
                        // to the eventful path below.
                        let r = loop {
                            let op = &ops[i];
                            match lane.cpu.exec_inst(
                                &op.inst, i, lane.mem, lane.hier, lane.hook, line_bytes, &mut mix,
                            ) {
                                Err(e) => break Err(e),
                                Ok(step) => {
                                    if i == end {
                                        break Ok(step);
                                    }
                                    // Only the terminator can redirect
                                    // or stop control flow.
                                    debug_assert!(matches!(step, Step::Next));
                                    i += 1;
                                }
                            }
                        };
                        // µops pc..i retired plus the one at `i` that
                        // errored or terminated: each was fetched.
                        lane.hier.bulk_fetches((i - pc + 1) as u64);
                        r
                    } else {
                        loop {
                            let op = &ops[i];
                            lane.hook.on_fetch(i, lane.hier.fetch(op.fetch_addr));
                            match lane.cpu.exec_inst(
                                &op.inst, i, lane.mem, lane.hier, lane.hook, line_bytes, &mut mix,
                            ) {
                                Err(e) => break Err(e),
                                Ok(step) => {
                                    lane.hook.on_retire(&op.inst);
                                    if i == end {
                                        break Ok(step);
                                    }
                                    // Only the terminator can redirect
                                    // or stop control flow.
                                    debug_assert!(matches!(step, Step::Next));
                                    i += 1;
                                }
                            }
                        }
                    };
                    st.mix = mix;
                    match res {
                        Err(e) => {
                            st.retired += (i - pc) as u64;
                            outcomes[l] = Some(Err(e));
                            uneven = true;
                        }
                        Ok(Step::Stop) => {
                            st.retired += blen;
                            outcomes[l] = Some(Ok(SimStats {
                                inst_mix: st.mix,
                                cache: lane.hier.stats(),
                                host_nanos: 0,
                            }));
                            uneven = true;
                        }
                        Ok(step) => {
                            st.retired += blen;
                            let np = match step {
                                Step::Jump(target) => target,
                                _ => end + 1,
                            };
                            st.next = np;
                            match common {
                                Some(c) => uneven |= c != np,
                                None => common = Some(np),
                            }
                        }
                    }
                }
            } else {
                // The budget expires inside this block: step one µop at
                // a time so the loop-head check trips at exactly the
                // retirement a solo run would trip at.
                let op = &ops[pc];
                let inst = op.inst;
                for (l, (lane, st)) in lanes.iter_mut().zip(states.iter_mut()).enumerate() {
                    lane.hook.on_fetch(pc, lane.hier.fetch(op.fetch_addr));
                    match lane.cpu.exec_inst(
                        &inst,
                        pc,
                        lane.mem,
                        lane.hier,
                        lane.hook,
                        st.line_bytes,
                        &mut st.mix,
                    ) {
                        Err(e) => {
                            outcomes[l] = Some(Err(e));
                            uneven = true;
                        }
                        Ok(step) => {
                            lane.hook.on_retire(&inst);
                            st.retired += 1;
                            match step {
                                Step::Stop => {
                                    outcomes[l] = Some(Ok(SimStats {
                                        inst_mix: st.mix,
                                        cache: lane.hier.stats(),
                                        host_nanos: 0,
                                    }));
                                    uneven = true;
                                }
                                step => {
                                    let np = match step {
                                        Step::Jump(target) => target,
                                        _ => pc + 1,
                                    };
                                    st.next = np;
                                    match common {
                                        Some(c) => uneven |= c != np,
                                        None => common = Some(np),
                                    }
                                }
                            }
                        }
                    }
                }
            }
            if !uneven {
                pc = common.expect("all lanes survived, so the first did");
            }
        }

        // A lane resolved (halt, error) or control flow split: fall back
        // to the indexed loop over whoever is still live.
        let active: Vec<usize> = (0..n).filter(|&l| outcomes[l].is_none()).collect();
        if let Some((&first, rest)) = active.split_first() {
            let first_pc = states[first].next;
            if rest.iter().all(|&l| states[l].next == first_pc) {
                lockstep_tail(
                    ops,
                    lanes,
                    &mut states,
                    &mut outcomes,
                    active,
                    first_pc,
                    limits,
                );
            } else {
                // Divergent control flow: finish each lane with the
                // scalar loop. Lanes share no state, so any scheduling
                // from here is observationally identical.
                for &l in &active {
                    let np = states[l].next;
                    outcomes[l] = Some(finish_scalar(
                        ops,
                        &mut lanes[l],
                        &mut states[l],
                        np,
                        limits,
                    ));
                }
            }
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every lane resolves"))
            .collect()
    }
}

/// For every µop index, the index of its straight-line block's
/// terminator: the first µop at or after it that can redirect or stop
/// control flow (branch, jump, ecall, halt). The fall-through run up to
/// a terminator is the unit the lockstep fast path hands each lane,
/// letting the lane's bookkeeping live in registers for the whole run.
/// One reverse scan per batch; the lanes amortize it.
fn block_ends(ops: &[MicroOp]) -> Vec<u32> {
    let mut ends = vec![0u32; ops.len()];
    let mut end = ops.len().saturating_sub(1) as u32;
    for (i, op) in ops.iter().enumerate().rev() {
        if matches!(
            op.inst,
            Inst::Blt { .. }
                | Inst::Bge { .. }
                | Inst::Bne { .. }
                | Inst::Jmp { .. }
                | Inst::Ecall { .. }
                | Inst::Halt
        ) {
            end = i as u32;
        }
        ends[i] = end;
    }
    ends
}

/// The general lockstep loop for a partially-resolved batch: `active`
/// lanes (converged at `pc`, possibly with unequal retired counts once
/// errors have been charged) run in lockstep until they halt or their
/// control flow splits, at which point each survivor is finished by the
/// scalar loop.
#[allow(clippy::too_many_arguments)] // internal driver, mirrors run_lanes' locals
fn lockstep_tail<H: ExecHook>(
    ops: &[MicroOp],
    lanes: &mut [BatchLane<'_, H>],
    states: &mut [LaneState],
    outcomes: &mut [Option<Result<SimStats, SimError>>],
    mut active: Vec<usize>,
    mut pc: usize,
    limits: RunLimits,
) {
    // (lane, next pc) of every lane that survives the current µop. The
    // vector is reused across iterations — allocating it per µop would
    // cost a malloc per retired instruction, dwarfing the dispatch win.
    let mut survivors: Vec<(usize, usize)> = Vec::with_capacity(active.len());
    while !active.is_empty() {
        let op = &ops[pc];
        let inst = op.inst;
        survivors.clear();
        for &l in &active {
            let st = &mut states[l];
            if st.retired >= limits.max_insts {
                outcomes[l] = Some(Err(SimError::InstLimitExceeded {
                    limit: limits.max_insts,
                }));
                continue;
            }
            let lane = &mut lanes[l];
            lane.hook.on_fetch(pc, lane.hier.fetch(op.fetch_addr));
            match lane.cpu.exec_inst(
                &inst,
                pc,
                lane.mem,
                lane.hier,
                lane.hook,
                st.line_bytes,
                &mut st.mix,
            ) {
                Err(e) => outcomes[l] = Some(Err(e)),
                Ok(step) => {
                    lane.hook.on_retire(&inst);
                    st.retired += 1;
                    match step {
                        Step::Stop => {
                            outcomes[l] = Some(Ok(SimStats {
                                inst_mix: st.mix,
                                cache: lane.hier.stats(),
                                host_nanos: 0,
                            }));
                        }
                        Step::Next => survivors.push((l, pc + 1)),
                        Step::Jump(target) => survivors.push((l, target)),
                    }
                }
            }
        }
        match survivors.as_slice() {
            [] => break,
            [(_, first), rest @ ..] if rest.iter().all(|(_, np)| np == first) => {
                // Still converged: continue in lockstep. The common
                // case — nobody finished — keeps `active` untouched.
                pc = *first;
                if survivors.len() != active.len() {
                    active.clear();
                    active.extend(survivors.iter().map(|(l, _)| *l));
                }
            }
            _ => {
                // Divergent control flow: finish each lane with the
                // scalar loop. Lanes share no state, so any scheduling
                // from here is observationally identical.
                for &(l, np) in &survivors {
                    outcomes[l] = Some(finish_scalar(
                        ops,
                        &mut lanes[l],
                        &mut states[l],
                        np,
                        limits,
                    ));
                }
                break;
            }
        }
    }
}

/// The tail of one diverged lane: the [`crate::DecodedEngine`] loop
/// resumed from `start_pc` with the lane's accumulated statistics.
fn finish_scalar<H: ExecHook>(
    ops: &[MicroOp],
    lane: &mut BatchLane<'_, H>,
    st: &mut LaneState,
    start_pc: usize,
    limits: RunLimits,
) -> Result<SimStats, SimError> {
    let mut pc = start_pc;
    loop {
        if st.retired >= limits.max_insts {
            return Err(SimError::InstLimitExceeded {
                limit: limits.max_insts,
            });
        }
        let op = &ops[pc];
        let inst = op.inst;
        lane.hook.on_fetch(pc, lane.hier.fetch(op.fetch_addr));
        let step = lane.cpu.exec_inst(
            &inst,
            pc,
            lane.mem,
            lane.hier,
            lane.hook,
            st.line_bytes,
            &mut st.mix,
        )?;
        lane.hook.on_retire(&inst);
        st.retired += 1;
        match step {
            Step::Next => pc += 1,
            Step::Jump(target) => pc = target,
            Step::Stop => break,
        }
    }
    Ok(SimStats {
        inst_mix: st.mix,
        cache: lane.hier.stats(),
        host_nanos: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        DecodedEngine, ExecEngine, Gpr, Inst, NoopHook, Program, ProgramBuilder, DATA_BASE,
    };
    use simtune_cache::HierarchyConfig;

    /// Loop whose bound is *loaded from memory*: lanes with different
    /// data retire different instruction counts (and can fault).
    ///
    /// `r2 = mem[DATA_BASE]` (an i64 read of two raw f32 slots), then a
    /// counted loop to `r2`.
    fn data_bound_loop() -> Program {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li {
            rd: Gpr(1),
            imm: DATA_BASE as i64,
        });
        b.push(Inst::Ld {
            rd: Gpr(2),
            rs: Gpr(1),
            imm: 0,
        });
        b.push(Inst::Li { rd: Gpr(3), imm: 0 });
        let top = b.bind_new_label();
        b.push(Inst::Addi {
            rd: Gpr(3),
            rs: Gpr(3),
            imm: 1,
        });
        b.branch_lt(Gpr(3), Gpr(2), top);
        b.push(Inst::Halt);
        b.build().unwrap()
    }

    /// Data segment whose first i64 reads back as `value` (two f32
    /// slots carrying the raw low/high bit halves).
    fn i64_segment(value: u64) -> Vec<f32> {
        vec![
            f32::from_bits(value as u32),
            f32::from_bits((value >> 32) as u32),
        ]
    }

    struct LaneBox {
        cpu: AtomicCpu,
        mem: Memory,
        hier: CacheHierarchy,
        hook: NoopHook,
    }

    fn lane_box(data: &[f32]) -> LaneBox {
        let mut mem = Memory::new();
        mem.write_f32_slice(DATA_BASE, data).unwrap();
        LaneBox {
            cpu: AtomicCpu::new(&crate::TargetIsa::riscv_u74()),
            mem,
            hier: CacheHierarchy::new(HierarchyConfig::tiny_for_tests()),
            hook: NoopHook,
        }
    }

    fn run_batch(
        prog: &Program,
        data: &[Vec<f32>],
        limits: RunLimits,
    ) -> (Vec<Result<SimStats, SimError>>, Vec<LaneBox>) {
        let target = crate::TargetIsa::riscv_u74();
        let decoded = DecodedProgram::decode(prog, &target).unwrap();
        let mut boxes: Vec<LaneBox> = data.iter().map(|d| lane_box(d)).collect();
        let mut lanes: Vec<BatchLane<'_, NoopHook>> = boxes
            .iter_mut()
            .map(|b| BatchLane {
                cpu: &mut b.cpu,
                mem: &mut b.mem,
                hier: &mut b.hier,
                hook: &mut b.hook,
            })
            .collect();
        let outcomes = BatchEngine::new(&decoded).run_lanes(&mut lanes, limits);
        drop(lanes);
        (outcomes, boxes)
    }

    fn run_solo(prog: &Program, data: &[f32], limits: RunLimits) -> Result<SimStats, SimError> {
        let target = crate::TargetIsa::riscv_u74();
        let decoded = DecodedProgram::decode(prog, &target).unwrap();
        let mut b = lane_box(data);
        DecodedEngine::new(&decoded).run_with_hook(
            &mut b.cpu,
            &mut b.mem,
            &mut b.hier,
            limits,
            &mut b.hook,
        )
    }

    #[test]
    fn lanes_halt_at_different_micro_ops() {
        let prog = data_bound_loop();
        let data = [i64_segment(3), i64_segment(7), i64_segment(1)];
        let (outcomes, _) = run_batch(&prog, &data, RunLimits::default());
        let totals: Vec<u64> = outcomes
            .iter()
            .map(|o| o.as_ref().unwrap().inst_mix.total())
            .collect();
        assert!(totals[1] > totals[0] && totals[0] > totals[2], "{totals:?}");
        // Every lane matches a solo decoded run of the same trial.
        for (o, d) in outcomes.iter().zip(&data) {
            assert_eq!(
                o.as_ref().unwrap(),
                &run_solo(&prog, d, RunLimits::default()).unwrap()
            );
        }
    }

    #[test]
    fn per_lane_errors_surface_independently() {
        let prog = data_bound_loop();
        // Lane 0 finishes; lane 1 exhausts the instruction budget; lane
        // 2 finishes with a different count.
        let data = [i64_segment(2), i64_segment(1 << 40), i64_segment(4)];
        let limits = RunLimits { max_insts: 200 };
        let (outcomes, _) = run_batch(&prog, &data, limits);
        assert!(outcomes[0].is_ok());
        assert_eq!(outcomes[1], Err(SimError::InstLimitExceeded { limit: 200 }));
        assert!(outcomes[2].is_ok());
        // Solo runs agree on both the successes and the failure.
        for (o, d) in outcomes.iter().zip(&data) {
            assert_eq!(o, &run_solo(&prog, d, limits));
        }
    }

    #[test]
    fn per_lane_memory_faults_surface_independently() {
        // `r2 = mem[DATA_BASE]` then `Ld r4, [r2]`: the loaded value is
        // the address of the second load, so lane data selects between
        // a valid pointer and one beyond the 4 GiB address space.
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li {
            rd: Gpr(1),
            imm: DATA_BASE as i64,
        });
        b.push(Inst::Ld {
            rd: Gpr(2),
            rs: Gpr(1),
            imm: 0,
        });
        b.push(Inst::Ld {
            rd: Gpr(4),
            rs: Gpr(2),
            imm: 0,
        });
        b.push(Inst::Halt);
        let prog = b.build().unwrap();
        let bad_addr = 1u64 << 40;
        let data = [i64_segment(DATA_BASE), i64_segment(bad_addr)];
        let (outcomes, _) = run_batch(&prog, &data, RunLimits::default());
        assert!(outcomes[0].is_ok());
        assert_eq!(outcomes[1], Err(SimError::MemoryFault { addr: bad_addr }));
    }

    #[test]
    fn batch_of_one_matches_decoded_engine() {
        let prog = data_bound_loop();
        let data = [i64_segment(5)];
        let (outcomes, boxes) = run_batch(&prog, &data, RunLimits::default());
        let solo = run_solo(&prog, &data[0], RunLimits::default()).unwrap();
        assert_eq!(outcomes[0].as_ref().unwrap(), &solo);
        // Architectural state matches too.
        let target = crate::TargetIsa::riscv_u74();
        let decoded = DecodedProgram::decode(&prog, &target).unwrap();
        let mut solo_box = lane_box(&data[0]);
        DecodedEngine::new(&decoded)
            .run_with_hook(
                &mut solo_box.cpu,
                &mut solo_box.mem,
                &mut solo_box.hier,
                RunLimits::default(),
                &mut solo_box.hook,
            )
            .unwrap();
        assert_eq!(boxes[0].cpu.gpr(Gpr(3)), solo_box.cpu.gpr(Gpr(3)));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let prog = data_bound_loop();
        let (outcomes, _) = run_batch(&prog, &[], RunLimits::default());
        assert!(outcomes.is_empty());
    }
}
