use std::fmt;

/// General-purpose (integer/address) register index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Gpr(pub u8);

/// Scalar floating-point register index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Fpr(pub u8);

/// Vector register index (each holds [`MAX_LANES`] f32 lanes;
/// the active lane count comes from the target).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Vr(pub u8);

/// Unresolved branch target used by [`crate::ProgramBuilder`]; resolved to
/// an instruction index when the program is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) u32);

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for Vr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Maximum vector lanes supported by the register file (the widest
/// target, x86/AVX2-like, uses all 8).
pub const MAX_LANES: usize = 8;

/// One instruction of the virtual ISA.
///
/// Branch/jump targets are *resolved* instruction indices; construct
/// programs through [`crate::ProgramBuilder`], which patches labels and
/// validates register indices against hard register-file bounds.
///
/// Memory operands use base + immediate-offset addressing; effective
/// addresses are byte addresses. Scalar float accesses move 4 bytes,
/// integer accesses 8 bytes, vector accesses `4 * lanes` bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    // ----- integer -----
    /// `rd = imm`
    Li { rd: Gpr, imm: i64 },
    /// `rd = rs + imm`
    Addi { rd: Gpr, rs: Gpr, imm: i64 },
    /// `rd = rs1 + rs2`
    Add { rd: Gpr, rs1: Gpr, rs2: Gpr },
    /// `rd = rs1 - rs2`
    Sub { rd: Gpr, rs1: Gpr, rs2: Gpr },
    /// `rd = rs1 * rs2`
    Mul { rd: Gpr, rs1: Gpr, rs2: Gpr },
    /// `rd = rs * imm` (strength-reduced index arithmetic)
    Muli { rd: Gpr, rs: Gpr, imm: i64 },
    /// `rd = rs << shamt`
    Slli { rd: Gpr, rs: Gpr, shamt: u8 },
    /// `rd = rs`
    Mv { rd: Gpr, rs: Gpr },
    /// `rd = mem64[rs + imm]` (spill reload)
    Ld { rd: Gpr, rs: Gpr, imm: i64 },
    /// `mem64[rs + imm] = rval` (spill store)
    Sd { rval: Gpr, rs: Gpr, imm: i64 },

    // ----- scalar float (f32) -----
    /// `fd = imm`
    Fli { fd: Fpr, imm: f32 },
    /// `fd = mem32[rs + imm]`
    Flw { fd: Fpr, rs: Gpr, imm: i64 },
    /// `mem32[rs + imm] = fval`
    Fsw { fval: Fpr, rs: Gpr, imm: i64 },
    /// `fd = fs1 + fs2`
    Fadd { fd: Fpr, fs1: Fpr, fs2: Fpr },
    /// `fd = fs1 - fs2`
    Fsub { fd: Fpr, fs1: Fpr, fs2: Fpr },
    /// `fd = fs1 * fs2`
    Fmul { fd: Fpr, fs1: Fpr, fs2: Fpr },
    /// `fd = fs1 / fs2`
    Fdiv { fd: Fpr, fs1: Fpr, fs2: Fpr },
    /// `fd = fs1 * fs2 + fs3` (fused)
    Fmadd {
        fd: Fpr,
        fs1: Fpr,
        fs2: Fpr,
        fs3: Fpr,
    },
    /// `fd = max(fs1, fs2)` (ReLU)
    Fmax { fd: Fpr, fs1: Fpr, fs2: Fpr },
    /// `fd = f32(rs)` integer-to-float conversion
    Fcvt { fd: Fpr, rs: Gpr },

    // ----- vector (f32 x lanes) -----
    /// `vd[l] = mem32[rs + imm + 4*l]` for each active lane
    Vload { vd: Vr, rs: Gpr, imm: i64 },
    /// `mem32[rs + imm + 4*l] = vval[l]` for each active lane
    Vstore { vval: Vr, rs: Gpr, imm: i64 },
    /// `vd[l] = fs` (broadcast)
    Vbcast { vd: Vr, fs: Fpr },
    /// `vd[l] = imm` (splat constant)
    Vsplat { vd: Vr, imm: f32 },
    /// `vd[l] = vs1[l] + vs2[l]`
    Vfadd { vd: Vr, vs1: Vr, vs2: Vr },
    /// `vd[l] = vs1[l] * vs2[l]`
    Vfmul { vd: Vr, vs1: Vr, vs2: Vr },
    /// `vd[l] = vs1[l] * vs2[l] + vd[l]` (fused accumulate)
    Vfma { vd: Vr, vs1: Vr, vs2: Vr },
    /// `vd[l] = max(vs1[l], vs2[l])`
    Vfmax { vd: Vr, vs1: Vr, vs2: Vr },
    /// `fd = Σ_l vs[l]` (horizontal reduction)
    Vredsum { fd: Fpr, vs: Vr },
    /// `vd[lane] = fs` (single-lane insert; strided vector load lowering)
    Vinsert { vd: Vr, fs: Fpr, lane: u8 },
    /// `fd = vs[lane]` (single-lane extract; strided vector store lowering)
    Vextract { fd: Fpr, vs: Vr, lane: u8 },

    // ----- control -----
    /// `if rs1 < rs2 { pc = target }`
    Blt { rs1: Gpr, rs2: Gpr, target: usize },
    /// `if rs1 >= rs2 { pc = target }`
    Bge { rs1: Gpr, rs2: Gpr, target: usize },
    /// `if rs1 != rs2 { pc = target }`
    Bne { rs1: Gpr, rs2: Gpr, target: usize },
    /// `pc = target`
    Jmp { target: usize },

    // ----- system -----
    /// Syscall-emulation hook; code 0 is `exit`.
    Ecall { code: u16 },
    /// Stop execution.
    Halt,
}

impl Inst {
    /// True for instructions that terminate execution.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Halt | Inst::Ecall { code: 0 })
    }

    /// True for control-flow instructions (the paper's "branch" class).
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::Blt { .. } | Inst::Bge { .. } | Inst::Bne { .. } | Inst::Jmp { .. }
        )
    }

    /// True for instructions that read data memory.
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Inst::Ld { .. } | Inst::Flw { .. } | Inst::Vload { .. }
        )
    }

    /// True for instructions that write data memory.
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            Inst::Sd { .. } | Inst::Fsw { .. } | Inst::Vstore { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_predicates() {
        assert!(Inst::Halt.is_terminator());
        assert!(Inst::Ecall { code: 0 }.is_terminator());
        assert!(!Inst::Ecall { code: 1 }.is_terminator());
        assert!(Inst::Jmp { target: 0 }.is_branch());
        assert!(Inst::Flw {
            fd: Fpr(0),
            rs: Gpr(0),
            imm: 0
        }
        .is_load());
        assert!(Inst::Vstore {
            vval: Vr(0),
            rs: Gpr(0),
            imm: 0
        }
        .is_store());
        assert!(!Inst::Fadd {
            fd: Fpr(0),
            fs1: Fpr(0),
            fs2: Fpr(0)
        }
        .is_load());
    }

    #[test]
    fn register_display() {
        assert_eq!(Gpr(3).to_string(), "r3");
        assert_eq!(Fpr(1).to_string(), "f1");
        assert_eq!(Vr(7).to_string(), "v7");
    }
}
