//! Virtual RISC-like ISA and instruction-accurate (atomic-mode) simulator.
//!
//! This crate is the stand-in for gem5 in the paper's setup
//! (Section II-C / III-B): a *functional* CPU model that executes one
//! instruction per step, routes every fetch and data access through a
//! [`simtune_cache::CacheHierarchy`], and reports instruction-mix and cache
//! statistics — but **no timing**. The atomic `SimpleCPU` + syscall
//! emulation combination the paper uses maps to:
//!
//! * [`AtomicCpu`] — single-transaction memory accesses, no pipeline;
//! * [`Executable`] — a "standalone executable" whose prepared input
//!   tensors are materialized into simulator memory by the loader, the
//!   moral equivalent of the generated `main` function in Section III-A;
//! * [`Inst::Ecall`] — the tiny syscall-emulation surface (exit).
//!
//! Execution is split into a **decode phase** and an **execute phase**:
//! [`DecodedProgram::decode`] lowers a validated [`Program`] once into a
//! dense µop array (pre-resolved control flow, precomputed fetch
//! addresses, per-instruction [`MixClass`], basic-block index), and the
//! [`ExecEngine`] implementations drive the CPU over either form —
//! [`InterpEngine`] re-inspects the raw program each step,
//! [`DecodedEngine`] replays the µop array, [`ThreadedEngine`] replays a
//! further-lowered threaded-code form ([`ThreadedProgram`]) with
//! pre-bound handlers, and [`BatchEngine`] replays one decoded program
//! across many data lanes at once. All engines share one semantic core,
//! so their observable results are bit-identical; [`EngineKind`] names
//! them for configuration. `simulate`, `simulate_counting` and
//! `simulate_prefix` decode internally; their `*_decoded` variants
//! accept a pre-decoded handle so batch drivers pay for decoding exactly
//! once per executable, and the `*_decoded_on` variants additionally
//! select the replay engine.
//!
//! The ISA itself is a register RISC machine with scalar integer/float
//! operations, fused multiply-add, and fixed-width vector operations whose
//! lane count is a property of the [`TargetIsa`] (8 for the x86-like
//! target, 4 for the ARM-like target, 1 — i.e. no vectors — for the
//! RISC-V-like U74 target, which has no V extension).
//!
//! # Example
//!
//! ```
//! use simtune_cache::HierarchyConfig;
//! use simtune_isa::{AtomicCpu, Gpr, Inst, Memory, ProgramBuilder, RunLimits, TargetIsa};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // r1 = 5; r2 = 37; r3 = r1 + r2; halt.
//! let mut b = ProgramBuilder::new();
//! b.push(Inst::Li { rd: Gpr(1), imm: 5 });
//! b.push(Inst::Li { rd: Gpr(2), imm: 37 });
//! b.push(Inst::Add { rd: Gpr(3), rs1: Gpr(1), rs2: Gpr(2) });
//! b.push(Inst::Halt);
//! let prog = b.build()?;
//!
//! let target = TargetIsa::riscv_u74();
//! let mut cpu = AtomicCpu::new(&target);
//! let mut mem = Memory::new();
//! let mut hier = simtune_cache::CacheHierarchy::new(
//!     simtune_cache::HierarchyConfig::tiny_for_tests());
//! let stats = cpu.run(&prog, &mut mem, &mut hier, RunLimits::default())?;
//! assert_eq!(cpu.gpr(Gpr(3)), 42);
//! assert_eq!(stats.inst_mix.total(), 4);
//! # let _ = HierarchyConfig::tiny_for_tests();
//! # Ok(())
//! # }
//! ```

mod asm;
mod batch;
mod cpu;
mod decode;
mod disasm;
mod engine;
mod error;
mod exec;
mod inst;
mod memory;
mod program;
mod shrink;
mod stats;
mod target;
mod threaded;
mod timing;
mod torture;

pub use asm::{parse_inst, parse_program, AsmError};
pub use batch::{BatchEngine, BatchLane};
pub use cpu::{AtomicCpu, ExecHook, NoopHook, RunLimits};
pub use decode::{DecodedEngine, DecodedProgram, ExecEngine, InterpEngine, MicroOp, MixClass};
pub use engine::EngineKind;
pub use error::{BuildProgramError, SimError};
pub use exec::{
    simulate, simulate_batch_decoded, simulate_counting, simulate_counting_batch_decoded,
    simulate_counting_decoded, simulate_counting_decoded_on, simulate_decoded,
    simulate_decoded_hooked_on, simulate_decoded_on, simulate_prefix, simulate_prefix_decoded,
    simulate_prefix_decoded_on, Executable, SimOutcome, ACCURATE, FAST_COUNT,
};
pub use inst::{Fpr, Gpr, Inst, Label, Vr, MAX_LANES};
pub use memory::Memory;
pub use program::{Program, ProgramBuilder};
pub use shrink::shrink_program;
pub use stats::{InstMix, SimStats};
pub use target::TargetIsa;
pub use threaded::{ThreadedEngine, ThreadedProgram};
pub use timing::{uop_event, Reg, TimingBridge, TimingHook, UopEvent, TIMING_REGS};
pub use torture::{
    torture_program, torture_program_with, MemoryPattern, TortureConfig, TORTURE_FAULT_CODE,
    TORTURE_WINDOW,
};

/// Base address at which program code is mapped.
pub const CODE_BASE: u64 = 0x1_0000;
/// Base address of the data segment (tensor buffers).
pub const DATA_BASE: u64 = 0x100_0000;
/// Base address of the downward-growing stack (spill slots).
pub const STACK_BASE: u64 = 0x4000_0000;
