use crate::{
    AtomicCpu, BatchEngine, BatchLane, DecodedEngine, DecodedProgram, EngineKind, ExecEngine,
    ExecHook, InterpEngine, Memory, NoopHook, Program, RunLimits, SimError, SimStats, TargetIsa,
    ThreadedEngine, ThreadedProgram,
};
use simtune_cache::{CacheHierarchy, HierarchyConfig};
use std::time::Instant;

/// A standalone executable, the unit the paper's builder hands to the
/// simulator interface (Section III-A).
///
/// In the paper, a generated `main` function prepares the input tensors,
/// allocates the output and calls the compiled kernel. Here the
/// preparation is a list of `(address, values)` segments the loader
/// materializes into simulator memory before jumping to the program —
/// byte-for-byte the same effect without interpreting an init loop.
#[derive(Debug, Clone)]
pub struct Executable {
    /// Descriptive name ("conv2d g3 impl 17") for logs and errors.
    pub name: String,
    /// The compiled kernel plus driver code.
    pub program: Program,
    /// Prepared tensor data: `(base address, f32 values)` per buffer.
    pub data_segments: Vec<(u64, Vec<f32>)>,
    /// Target whose register/vector resources the code was generated for.
    pub target: TargetIsa,
}

/// Result of a simulator invocation: statistics plus the final memory
/// image (for output validation).
#[derive(Debug)]
pub struct SimOutcome {
    /// Instruction-accurate statistics, including host wall time.
    pub stats: SimStats,
    /// Memory after the run; read the output buffer from here.
    pub memory: Memory,
    /// Name of the simulator flavor that produced this outcome
    /// ("accurate", "fast-count", …) — indispensable when debugging
    /// mixed-fidelity autotuning runs.
    pub backend: String,
}

/// Loads and runs `exe` on a fresh instruction-accurate simulator instance
/// with the given cache hierarchy — one "simulator instance" of the
/// paper's `n_parallel` pool.
///
/// The returned statistics include the host wall-clock time of the
/// simulation (`t_simulator` in the paper's Equation 4).
///
/// The program is lowered with [`Executable::decode`] first, so
/// decode-time control-flow validation applies: a branch pointing
/// outside the program or a last instruction that could fall through
/// past the end is rejected up front with [`SimError::InvalidPc`]
/// instead of (possibly never) failing mid-run.
///
/// # Errors
///
/// Propagates any [`SimError`] from the decode or the run (invalid
/// control flow, memory faults, instruction budget exhaustion, unknown
/// syscalls).
///
/// # Example
///
/// ```
/// use simtune_cache::HierarchyConfig;
/// use simtune_isa::{simulate, Executable, Inst, Gpr, ProgramBuilder, RunLimits, TargetIsa};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new();
/// b.push(Inst::Li { rd: Gpr(1), imm: 0x100_0000 });
/// b.push(Inst::Flw { fd: simtune_isa::Fpr(1), rs: Gpr(1), imm: 0 });
/// b.push(Inst::Halt);
/// let exe = Executable {
///     name: "demo".into(),
///     program: b.build()?,
///     data_segments: vec![(0x100_0000, vec![1.0, 2.0])],
///     target: TargetIsa::riscv_u74(),
/// };
/// let out = simulate(&exe, &HierarchyConfig::tiny_for_tests(), RunLimits::default())?;
/// assert_eq!(out.memory.read_f32(0x100_0000)?, 1.0);
/// assert!(out.stats.host_nanos > 0);
/// # Ok(())
/// # }
/// ```
pub fn simulate(
    exe: &Executable,
    hierarchy: &HierarchyConfig,
    limits: RunLimits,
) -> Result<SimOutcome, SimError> {
    let decoded = exe.decode()?;
    simulate_decoded(exe, &decoded, hierarchy, limits)
}

/// [`simulate`] over a pre-decoded program: the batch-driver entry point
/// that amortizes [`DecodedProgram::decode`] across repeated runs of the
/// same executable (sampling passes, memo-cache misses, sweep replays).
///
/// `decoded` must be the lowering of `exe.program` for `exe.target`
/// (obtain it from [`Executable::decode`]).
///
/// # Errors
///
/// Propagates any [`SimError`] from the run.
pub fn simulate_decoded(
    exe: &Executable,
    decoded: &DecodedProgram,
    hierarchy: &HierarchyConfig,
    limits: RunLimits,
) -> Result<SimOutcome, SimError> {
    simulate_decoded_on(exe, decoded, hierarchy, limits, EngineKind::Decoded)
}

/// [`simulate_decoded`] on an explicit replay engine. All engines are
/// observationally identical (see the differential suite); the choice
/// only moves host time. [`EngineKind::Batch`] is a batch-level
/// concept, so a single trial runs on the decoded loop.
///
/// # Errors
///
/// Propagates any [`SimError`] from the run.
pub fn simulate_decoded_on(
    exe: &Executable,
    decoded: &DecodedProgram,
    hierarchy: &HierarchyConfig,
    limits: RunLimits,
    engine: EngineKind,
) -> Result<SimOutcome, SimError> {
    let mut mem = Memory::new();
    for (base, values) in &exe.data_segments {
        mem.write_f32_slice(*base, values)?;
    }
    let mut hier = CacheHierarchy::new(hierarchy.clone());
    let mut cpu = AtomicCpu::new(&exe.target);
    let start = Instant::now();
    let mut stats = run_full(
        &exe.program,
        decoded,
        engine,
        &mut cpu,
        &mut mem,
        &mut hier,
        limits,
    )?;
    stats.host_nanos = start.elapsed().as_nanos().max(1) as u64;
    Ok(SimOutcome {
        stats,
        memory: mem,
        backend: ACCURATE.into(),
    })
}

/// Dispatches one full run to the selected engine.
fn run_full(
    prog: &Program,
    decoded: &DecodedProgram,
    engine: EngineKind,
    cpu: &mut AtomicCpu,
    mem: &mut Memory,
    hier: &mut CacheHierarchy,
    limits: RunLimits,
) -> Result<SimStats, SimError> {
    run_full_hooked(prog, decoded, engine, cpu, mem, hier, limits, &mut NoopHook)
}

/// Dispatches one full run to the selected engine with an explicit
/// event hook. [`EngineKind::Batch`] is a batch-level concept, so a
/// single hooked trial runs on the decoded loop — which keeps the
/// per-retirement event sequence identical across all engine kinds.
#[allow(clippy::too_many_arguments)] // mirrors the run entry points
fn run_full_hooked<H: ExecHook>(
    prog: &Program,
    decoded: &DecodedProgram,
    engine: EngineKind,
    cpu: &mut AtomicCpu,
    mem: &mut Memory,
    hier: &mut CacheHierarchy,
    limits: RunLimits,
    hook: &mut H,
) -> Result<SimStats, SimError> {
    match engine {
        EngineKind::Interp => InterpEngine::new(prog).run_with_hook(cpu, mem, hier, limits, hook),
        EngineKind::Decoded | EngineKind::Batch => {
            DecodedEngine::new(decoded).run_with_hook(cpu, mem, hier, limits, hook)
        }
        EngineKind::Threaded => {
            let threaded = ThreadedProgram::lower(decoded);
            ThreadedEngine::new(&threaded).run_with_hook(cpu, mem, hier, limits, hook)
        }
    }
}

/// [`simulate_decoded_on`] with an explicit [`ExecHook`] observing the
/// run — the entry point timing tiers use to price every fetch, data
/// access, branch resolution and retirement while the functional
/// semantics stay byte-for-byte those of the accurate backend.
///
/// The hook's event order per retirement is fixed and identical across
/// engines: `on_fetch`, then any `on_data_access`/`on_branch` raised by
/// the instruction, then `on_retire`.
///
/// # Errors
///
/// Propagates any [`SimError`] from the run.
pub fn simulate_decoded_hooked_on<H: ExecHook>(
    exe: &Executable,
    decoded: &DecodedProgram,
    hierarchy: &HierarchyConfig,
    limits: RunLimits,
    engine: EngineKind,
    hook: &mut H,
) -> Result<SimOutcome, SimError> {
    let mut mem = Memory::new();
    for (base, values) in &exe.data_segments {
        mem.write_f32_slice(*base, values)?;
    }
    let mut hier = CacheHierarchy::new(hierarchy.clone());
    let mut cpu = AtomicCpu::new(&exe.target);
    let start = Instant::now();
    let mut stats = run_full_hooked(
        &exe.program,
        decoded,
        engine,
        &mut cpu,
        &mut mem,
        &mut hier,
        limits,
        hook,
    )?;
    stats.host_nanos = start.elapsed().as_nanos().max(1) as u64;
    Ok(SimOutcome {
        stats,
        memory: mem,
        backend: ACCURATE.into(),
    })
}

/// Dispatches one prefix run to the selected engine.
#[allow(clippy::too_many_arguments)] // mirrors the run entry points
fn run_prefix(
    prog: &Program,
    decoded: &DecodedProgram,
    engine: EngineKind,
    cpu: &mut AtomicCpu,
    mem: &mut Memory,
    hier: &mut CacheHierarchy,
    limits: RunLimits,
    budget: u64,
) -> Result<(SimStats, bool), SimError> {
    match engine {
        EngineKind::Interp => InterpEngine::new(prog).run_prefix_with_hook(
            cpu,
            mem,
            hier,
            limits,
            budget,
            &mut NoopHook,
        ),
        EngineKind::Decoded | EngineKind::Batch => DecodedEngine::new(decoded)
            .run_prefix_with_hook(cpu, mem, hier, limits, budget, &mut NoopHook),
        EngineKind::Threaded => {
            let threaded = ThreadedProgram::lower(decoded);
            ThreadedEngine::new(&threaded).run_prefix_with_hook(
                cpu,
                mem,
                hier,
                limits,
                budget,
                &mut NoopHook,
            )
        }
    }
}

/// Canonical name of the full instruction-accurate simulator flavor.
pub const ACCURATE: &str = "accurate";
/// Canonical name of the counting-only simulator flavor.
pub const FAST_COUNT: &str = "fast-count";

/// Loads and runs `exe` on a *counting-only* simulator instance: the
/// program executes functionally and retired instructions plus memory
/// accesses are tallied, but no cache hierarchy is modeled (the
/// QEMU-plugin instrumentation style the paper names as the cheap
/// alternative to gem5). `line_bytes` must match the reference
/// hierarchy's line size so vector accesses touch the same line count.
///
/// Retired-instruction counts are bit-identical to [`simulate`]'s: both
/// run the same functional CPU on the same inputs.
///
/// # Errors
///
/// Propagates any [`SimError`] from the run.
pub fn simulate_counting(
    exe: &Executable,
    line_bytes: u64,
    limits: RunLimits,
) -> Result<SimOutcome, SimError> {
    let decoded = exe.decode()?;
    simulate_counting_decoded(exe, &decoded, line_bytes, limits)
}

/// [`simulate_counting`] over a pre-decoded program; see
/// [`simulate_decoded`] for the contract on `decoded`.
///
/// # Errors
///
/// Propagates any [`SimError`] from the run.
pub fn simulate_counting_decoded(
    exe: &Executable,
    decoded: &DecodedProgram,
    line_bytes: u64,
    limits: RunLimits,
) -> Result<SimOutcome, SimError> {
    simulate_counting_decoded_on(exe, decoded, line_bytes, limits, EngineKind::Decoded)
}

/// [`simulate_counting_decoded`] on an explicit replay engine; see
/// [`simulate_decoded_on`] for the engine contract.
///
/// # Errors
///
/// Propagates any [`SimError`] from the run.
pub fn simulate_counting_decoded_on(
    exe: &Executable,
    decoded: &DecodedProgram,
    line_bytes: u64,
    limits: RunLimits,
    engine: EngineKind,
) -> Result<SimOutcome, SimError> {
    let mut mem = Memory::new();
    for (base, values) in &exe.data_segments {
        mem.write_f32_slice(*base, values)?;
    }
    let mut hier = CacheHierarchy::counting_only(line_bytes);
    let mut cpu = AtomicCpu::new(&exe.target);
    let start = Instant::now();
    let mut stats = run_full(
        &exe.program,
        decoded,
        engine,
        &mut cpu,
        &mut mem,
        &mut hier,
        limits,
    )?;
    stats.host_nanos = start.elapsed().as_nanos().max(1) as u64;
    Ok(SimOutcome {
        stats,
        memory: mem,
        backend: FAST_COUNT.into(),
    })
}

/// Loads and runs at most `budget` instructions of `exe` on a fresh
/// instruction-accurate instance, stopping cleanly when the budget is
/// reached. Returns the prefix outcome and whether the program ran to
/// completion — the primitive a sampled backend extrapolates from.
///
/// # Errors
///
/// Propagates any [`SimError`] from the run.
pub fn simulate_prefix(
    exe: &Executable,
    hierarchy: &HierarchyConfig,
    limits: RunLimits,
    budget: u64,
) -> Result<(SimOutcome, bool), SimError> {
    let decoded = exe.decode()?;
    simulate_prefix_decoded(exe, &decoded, hierarchy, limits, budget)
}

/// [`simulate_prefix`] over a pre-decoded program; see
/// [`simulate_decoded`] for the contract on `decoded`.
///
/// # Errors
///
/// Propagates any [`SimError`] from the run.
pub fn simulate_prefix_decoded(
    exe: &Executable,
    decoded: &DecodedProgram,
    hierarchy: &HierarchyConfig,
    limits: RunLimits,
    budget: u64,
) -> Result<(SimOutcome, bool), SimError> {
    simulate_prefix_decoded_on(exe, decoded, hierarchy, limits, budget, EngineKind::Decoded)
}

/// [`simulate_prefix_decoded`] on an explicit replay engine; see
/// [`simulate_decoded_on`] for the engine contract.
///
/// # Errors
///
/// Propagates any [`SimError`] from the run.
pub fn simulate_prefix_decoded_on(
    exe: &Executable,
    decoded: &DecodedProgram,
    hierarchy: &HierarchyConfig,
    limits: RunLimits,
    budget: u64,
    engine: EngineKind,
) -> Result<(SimOutcome, bool), SimError> {
    let mut mem = Memory::new();
    for (base, values) in &exe.data_segments {
        mem.write_f32_slice(*base, values)?;
    }
    let mut hier = CacheHierarchy::new(hierarchy.clone());
    let mut cpu = AtomicCpu::new(&exe.target);
    let start = Instant::now();
    let (mut stats, completed) = run_prefix(
        &exe.program,
        decoded,
        engine,
        &mut cpu,
        &mut mem,
        &mut hier,
        limits,
        budget,
    )?;
    stats.host_nanos = start.elapsed().as_nanos().max(1) as u64;
    Ok((
        SimOutcome {
            stats,
            memory: mem,
            backend: ACCURATE.into(),
        },
        completed,
    ))
}

/// Replays N same-program trials as lanes of one [`BatchEngine`] pass
/// on the full cache model: every `exes[i]` must share `decoded`'s
/// program and target, differing only in name and data segments.
/// Returns one outcome per trial, in input order; lanes fail
/// independently (a bad data segment or a mid-run [`SimError`] resolves
/// that lane only).
///
/// Host time is measured once for the whole batch and attributed
/// evenly across its lanes.
pub fn simulate_batch_decoded(
    exes: &[&Executable],
    decoded: &DecodedProgram,
    hierarchy: &HierarchyConfig,
    limits: RunLimits,
) -> Vec<Result<SimOutcome, SimError>> {
    simulate_batch_inner(
        exes,
        decoded,
        limits,
        || CacheHierarchy::new(hierarchy.clone()),
        ACCURATE,
    )
}

/// [`simulate_batch_decoded`] on the counting-only hierarchy (the
/// fast-count flavor); see [`simulate_counting`] for the `line_bytes`
/// contract.
pub fn simulate_counting_batch_decoded(
    exes: &[&Executable],
    decoded: &DecodedProgram,
    line_bytes: u64,
    limits: RunLimits,
) -> Vec<Result<SimOutcome, SimError>> {
    simulate_batch_inner(
        exes,
        decoded,
        limits,
        || CacheHierarchy::counting_only(line_bytes),
        FAST_COUNT,
    )
}

struct LaneSlot {
    cpu: AtomicCpu,
    mem: Memory,
    hier: CacheHierarchy,
    hook: NoopHook,
}

fn simulate_batch_inner(
    exes: &[&Executable],
    decoded: &DecodedProgram,
    limits: RunLimits,
    mk_hier: impl Fn() -> CacheHierarchy,
    backend: &str,
) -> Vec<Result<SimOutcome, SimError>> {
    // Materialize every lane up front; a lane whose segments do not
    // load resolves to its error without joining the batch.
    let mut slots: Vec<Result<LaneSlot, SimError>> = exes
        .iter()
        .map(|exe| {
            let mut mem = Memory::new();
            for (base, values) in &exe.data_segments {
                mem.write_f32_slice(*base, values)?;
            }
            Ok(LaneSlot {
                cpu: AtomicCpu::new(&exe.target),
                mem,
                hier: mk_hier(),
                hook: NoopHook,
            })
        })
        .collect();
    let start = Instant::now();
    let mut lanes: Vec<BatchLane<'_, NoopHook>> = slots
        .iter_mut()
        .filter_map(|s| s.as_mut().ok())
        .map(|s| BatchLane {
            cpu: &mut s.cpu,
            mem: &mut s.mem,
            hier: &mut s.hier,
            hook: &mut s.hook,
        })
        .collect();
    let n_lanes = lanes.len();
    let outcomes = BatchEngine::new(decoded).run_lanes(&mut lanes, limits);
    drop(lanes);
    let per_lane_nanos = (start.elapsed().as_nanos() as u64 / n_lanes.max(1) as u64).max(1);
    let mut outcome_iter = outcomes.into_iter();
    slots
        .iter_mut()
        .map(|slot| {
            // Take the memory in place instead of moving the whole slot:
            // the register files alone are ~1.4 KiB per lane and nothing
            // past this point reads them.
            let lane = slot.as_mut().map_err(|e| e.clone())?;
            let mut stats = outcome_iter.next().expect("one outcome per lane")?;
            stats.host_nanos = per_lane_nanos;
            Ok(SimOutcome {
                stats,
                memory: std::mem::take(&mut lane.mem),
                backend: backend.into(),
            })
        })
        .collect()
}

impl Executable {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, program: Program, target: TargetIsa) -> Self {
        Executable {
            name: name.into(),
            program,
            data_segments: Vec::new(),
            target,
        }
    }

    /// Adds a prepared tensor segment, builder-style.
    pub fn with_segment(mut self, base: u64, values: Vec<f32>) -> Self {
        self.data_segments.push((base, values));
        self
    }

    /// Lowers this executable's program once for its target — the handle
    /// the `*_decoded` simulation entry points replay.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPc`] when decode-time control-flow
    /// validation rejects the program.
    pub fn decode(&self) -> Result<DecodedProgram, SimError> {
        DecodedProgram::decode(&self.program, &self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fpr, Gpr, Inst, ProgramBuilder};

    fn adder_exe() -> Executable {
        // out[0] = in[0] + in[1]
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li {
            rd: Gpr(1),
            imm: 0x100_0000,
        });
        b.push(Inst::Flw {
            fd: Fpr(1),
            rs: Gpr(1),
            imm: 0,
        });
        b.push(Inst::Flw {
            fd: Fpr(2),
            rs: Gpr(1),
            imm: 4,
        });
        b.push(Inst::Fadd {
            fd: Fpr(3),
            fs1: Fpr(1),
            fs2: Fpr(2),
        });
        b.push(Inst::Fsw {
            fval: Fpr(3),
            rs: Gpr(1),
            imm: 8,
        });
        b.push(Inst::Ecall { code: 0 });
        Executable::new("adder", b.build().unwrap(), TargetIsa::riscv_u74())
            .with_segment(0x100_0000, vec![1.25, 2.5])
    }

    #[test]
    fn simulate_runs_and_exposes_outputs() {
        let out = simulate(
            &adder_exe(),
            &HierarchyConfig::tiny_for_tests(),
            RunLimits::default(),
        )
        .unwrap();
        assert_eq!(out.memory.read_f32(0x100_0000 + 8).unwrap(), 3.75);
        assert_eq!(out.stats.inst_mix.loads, 2);
        assert_eq!(out.stats.inst_mix.stores, 1);
        assert!(out.stats.host_nanos > 0, "wall time must be recorded");
    }

    #[test]
    fn each_simulation_starts_cold() {
        // Two runs of the same executable report identical cache stats:
        // fresh memory, fresh hierarchy, no leakage between instances.
        let exe = adder_exe();
        let cfg = HierarchyConfig::tiny_for_tests();
        let a = simulate(&exe, &cfg, RunLimits::default()).unwrap();
        let b = simulate(&exe, &cfg, RunLimits::default()).unwrap();
        assert_eq!(a.stats.inst_mix, b.stats.inst_mix);
        assert_eq!(a.stats.cache, b.stats.cache);
    }

    #[test]
    fn segments_materialize_before_entry() {
        let exe = adder_exe().with_segment(0x200_0000, vec![9.0]);
        let out = simulate(
            &exe,
            &HierarchyConfig::tiny_for_tests(),
            RunLimits::default(),
        )
        .unwrap();
        assert_eq!(out.memory.read_f32(0x200_0000).unwrap(), 9.0);
    }
}
