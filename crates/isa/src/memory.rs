use crate::SimError;

const PAGE_BITS: u32 = 16;
#[cfg(test)]
const PAGE_BYTES: usize = 1 << PAGE_BITS; // 64 KiB
/// Simulatable address space: 4 GiB (65536 pages), allocated lazily.
const MAX_PAGES: usize = 1 << 16;

/// Host allocation unit inside a page: 4 KiB. Pages track which of
/// their sub-blocks are materialized, so a trial that touches a few
/// hundred bytes of a page zeroes one sub-block, not 64 KiB — the
/// dominant setup cost when a batch materializes many lanes at once.
const SUB_BITS: u32 = 12;
const SUB_BYTES: usize = 1 << SUB_BITS;
const SUBS_PER_PAGE: usize = 1 << (PAGE_BITS - SUB_BITS);

/// Lazily materialized host storage for one 64 KiB guest page.
type Region = [Option<Box<[u8]>>; SUBS_PER_PAGE];

/// Sparse, page-granular byte-addressable memory.
///
/// Pages (64 KiB) are allocated on first touch, so tensor buffers placed
/// megabytes apart cost only the pages they actually use. Unwritten bytes
/// read as zero, which the loader exploits when materializing zero-padded
/// input tensors.
///
/// # Example
///
/// ```
/// use simtune_isa::Memory;
///
/// # fn main() -> Result<(), simtune_isa::SimError> {
/// let mut m = Memory::new();
/// m.write_f32(0x1000, 3.5)?;
/// assert_eq!(m.read_f32(0x1000)?, 3.5);
/// assert_eq!(m.read_f32(0x2000)?, 0.0); // untouched memory reads zero
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Memory {
    pages: Vec<Option<Box<Region>>>,
}

impl Memory {
    /// Creates an empty memory with no pages allocated.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of 64 KiB pages currently materialized (any sub-block).
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    fn page_index(addr: u64) -> Result<usize, SimError> {
        let idx = (addr >> PAGE_BITS) as usize;
        if idx >= MAX_PAGES {
            Err(SimError::MemoryFault { addr })
        } else {
            Ok(idx)
        }
    }

    /// The materialized 4 KiB sub-block containing `addr`, if any.
    /// `addr` must already be range-checked via [`Memory::page_index`].
    fn sub(&self, addr: u64) -> Option<&[u8]> {
        let idx = (addr >> PAGE_BITS) as usize;
        let sub = ((addr as usize) >> SUB_BITS) & (SUBS_PER_PAGE - 1);
        self.pages.get(idx)?.as_ref()?[sub].as_deref()
    }

    /// The (zero-materialized-on-first-touch) 4 KiB sub-block containing
    /// `addr`. `addr` must already be range-checked.
    fn sub_mut(&mut self, addr: u64) -> &mut [u8] {
        let idx = (addr >> PAGE_BITS) as usize;
        if idx >= self.pages.len() {
            self.pages.resize_with(idx + 1, || None);
        }
        let region = self.pages[idx].get_or_insert_with(|| Box::new(std::array::from_fn(|_| None)));
        let sub = ((addr as usize) >> SUB_BITS) & (SUBS_PER_PAGE - 1);
        region[sub].get_or_insert_with(|| vec![0u8; SUB_BYTES].into_boxed_slice())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn read_u8(&self, addr: u64) -> Result<u8, SimError> {
        Self::page_index(addr)?;
        Ok(self
            .sub(addr)
            .map(|p| p[(addr as usize) & (SUB_BYTES - 1)])
            .unwrap_or(0))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn write_u8(&mut self, addr: u64, value: u8) -> Result<(), SimError> {
        Self::page_index(addr)?;
        self.sub_mut(addr)[(addr as usize) & (SUB_BYTES - 1)] = value;
        Ok(())
    }

    /// Reads a little-endian f32.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn read_f32(&self, addr: u64) -> Result<f32, SimError> {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b)?;
        Ok(f32::from_le_bytes(b))
    }

    /// Writes a little-endian f32.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn write_f32(&mut self, addr: u64, value: f32) -> Result<(), SimError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Reads a little-endian i64.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn read_i64(&self, addr: u64) -> Result<i64, SimError> {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b)?;
        Ok(i64::from_le_bytes(b))
    }

    /// Writes a little-endian i64.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn write_i64(&mut self, addr: u64, value: i64) -> Result<(), SimError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Copies `buf.len()` bytes out of memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<(), SimError> {
        // Fast path: within one sub-block.
        let off = (addr as usize) & (SUB_BYTES - 1);
        if off + buf.len() <= SUB_BYTES {
            Self::page_index(addr)?;
            Self::page_index(addr + buf.len().max(1) as u64 - 1)?;
            match self.sub(addr) {
                Some(p) => buf.copy_from_slice(&p[off..off + buf.len()]),
                None => buf.fill(0),
            }
            return Ok(());
        }
        // Boundary-crossing: copy one sub-block's worth at a time.
        Self::page_index(addr)?;
        Self::page_index(addr + buf.len() as u64 - 1)?;
        let mut addr = addr;
        let mut rest = &mut buf[..];
        while !rest.is_empty() {
            let off = (addr as usize) & (SUB_BYTES - 1);
            let n = rest.len().min(SUB_BYTES - off);
            let (head, tail) = rest.split_at_mut(n);
            match self.sub(addr) {
                Some(p) => head.copy_from_slice(&p[off..off + n]),
                None => head.fill(0),
            }
            addr += n as u64;
            rest = tail;
        }
        Ok(())
    }

    /// Copies `bytes` into memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), SimError> {
        // Fast path: within one sub-block.
        let off = (addr as usize) & (SUB_BYTES - 1);
        if off + bytes.len() <= SUB_BYTES {
            Self::page_index(addr)?;
            Self::page_index(addr + bytes.len().max(1) as u64 - 1)?;
            self.sub_mut(addr)[off..off + bytes.len()].copy_from_slice(bytes);
            return Ok(());
        }
        // Boundary-crossing: copy one sub-block's worth at a time.
        Self::page_index(addr)?;
        Self::page_index(addr + bytes.len() as u64 - 1)?;
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (addr as usize) & (SUB_BYTES - 1);
            let n = rest.len().min(SUB_BYTES - off);
            self.sub_mut(addr)[off..off + n].copy_from_slice(&rest[..n]);
            addr += n as u64;
            rest = &rest[n..];
        }
        Ok(())
    }

    /// Reads `count` consecutive f32 values starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn read_f32_slice(&self, addr: u64, count: usize) -> Result<Vec<f32>, SimError> {
        (0..count)
            .map(|i| self.read_f32(addr + 4 * i as u64))
            .collect()
    }

    /// Writes consecutive f32 values starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn write_f32_slice(&mut self, addr: u64, values: &[f32]) -> Result<(), SimError> {
        // Stage little-endian bytes on the stack and write whole chunks:
        // loading a trial's tensor segments is on every simulation's
        // setup path, and one `write_bytes` per chunk beats one
        // range-checked 4-byte write per element.
        let mut buf = [0u8; 512];
        for (ci, chunk) in values.chunks(buf.len() / 4).enumerate() {
            for (i, v) in chunk.iter().enumerate() {
                buf[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
            }
            self.write_bytes(addr + (ci * buf.len()) as u64, &buf[..4 * chunk.len()])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0).unwrap(), 0);
        assert_eq!(m.read_f32(12345).unwrap(), 0.0);
        assert_eq!(m.read_i64(999).unwrap(), 0);
    }

    #[test]
    fn roundtrip_scalars() {
        let mut m = Memory::new();
        m.write_f32(100, -2.25).unwrap();
        m.write_i64(200, -77).unwrap();
        assert_eq!(m.read_f32(100).unwrap(), -2.25);
        assert_eq!(m.read_i64(200).unwrap(), -77);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = (PAGE_BYTES - 2) as u64; // i64 straddles page 0/1
        m.write_i64(addr, 0x0123_4567_89AB_CDEF).unwrap();
        assert_eq!(m.read_i64(addr).unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn fault_beyond_address_space() {
        let mut m = Memory::new();
        let bad = (MAX_PAGES as u64) << PAGE_BITS;
        assert!(matches!(m.read_u8(bad), Err(SimError::MemoryFault { .. })));
        assert!(matches!(
            m.write_u8(bad, 1),
            Err(SimError::MemoryFault { .. })
        ));
    }

    #[test]
    fn slice_roundtrip() {
        let mut m = Memory::new();
        let vals = vec![1.0f32, -2.0, 3.5, 0.0, 9.25];
        m.write_f32_slice(4096, &vals).unwrap();
        assert_eq!(m.read_f32_slice(4096, 5).unwrap(), vals);
    }

    #[test]
    fn pages_allocate_lazily() {
        let mut m = Memory::new();
        assert_eq!(m.resident_pages(), 0);
        m.write_u8(0, 1).unwrap();
        m.write_u8((10 << PAGE_BITS) + 5, 1).unwrap();
        assert_eq!(m.resident_pages(), 2);
    }
}
