use crate::SimError;

const PAGE_BITS: u32 = 16;
const PAGE_BYTES: usize = 1 << PAGE_BITS; // 64 KiB
/// Simulatable address space: 4 GiB (65536 pages), allocated lazily.
const MAX_PAGES: usize = 1 << 16;

/// Sparse, page-granular byte-addressable memory.
///
/// Pages (64 KiB) are allocated on first touch, so tensor buffers placed
/// megabytes apart cost only the pages they actually use. Unwritten bytes
/// read as zero, which the loader exploits when materializing zero-padded
/// input tensors.
///
/// # Example
///
/// ```
/// use simtune_isa::Memory;
///
/// # fn main() -> Result<(), simtune_isa::SimError> {
/// let mut m = Memory::new();
/// m.write_f32(0x1000, 3.5)?;
/// assert_eq!(m.read_f32(0x1000)?, 3.5);
/// assert_eq!(m.read_f32(0x2000)?, 0.0); // untouched memory reads zero
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Memory {
    pages: Vec<Option<Box<[u8]>>>,
}

impl Memory {
    /// Creates an empty memory with no pages allocated.
    pub fn new() -> Self {
        Memory { pages: Vec::new() }
    }

    /// Number of 64 KiB pages currently materialized.
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    fn page_index(addr: u64) -> Result<usize, SimError> {
        let idx = (addr >> PAGE_BITS) as usize;
        if idx >= MAX_PAGES {
            Err(SimError::MemoryFault { addr })
        } else {
            Ok(idx)
        }
    }

    fn page_mut(&mut self, idx: usize) -> &mut [u8] {
        if idx >= self.pages.len() {
            self.pages.resize_with(idx + 1, || None);
        }
        self.pages[idx]
            .get_or_insert_with(|| vec![0u8; PAGE_BYTES].into_boxed_slice())
            .as_mut()
    }

    fn page(&self, idx: usize) -> Option<&[u8]> {
        self.pages.get(idx).and_then(|p| p.as_deref())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn read_u8(&self, addr: u64) -> Result<u8, SimError> {
        let idx = Self::page_index(addr)?;
        Ok(self
            .page(idx)
            .map(|p| p[(addr as usize) & (PAGE_BYTES - 1)])
            .unwrap_or(0))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn write_u8(&mut self, addr: u64, value: u8) -> Result<(), SimError> {
        let idx = Self::page_index(addr)?;
        self.page_mut(idx)[(addr as usize) & (PAGE_BYTES - 1)] = value;
        Ok(())
    }

    /// Reads a little-endian f32.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn read_f32(&self, addr: u64) -> Result<f32, SimError> {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b)?;
        Ok(f32::from_le_bytes(b))
    }

    /// Writes a little-endian f32.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn write_f32(&mut self, addr: u64, value: f32) -> Result<(), SimError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Reads a little-endian i64.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn read_i64(&self, addr: u64) -> Result<i64, SimError> {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b)?;
        Ok(i64::from_le_bytes(b))
    }

    /// Writes a little-endian i64.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn write_i64(&mut self, addr: u64, value: i64) -> Result<(), SimError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Copies `buf.len()` bytes out of memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<(), SimError> {
        // Fast path: within one page.
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off + buf.len() <= PAGE_BYTES {
            let idx = Self::page_index(addr)?;
            Self::page_index(addr + buf.len().max(1) as u64 - 1)?;
            match self.page(idx) {
                Some(p) => buf.copy_from_slice(&p[off..off + buf.len()]),
                None => buf.fill(0),
            }
            return Ok(());
        }
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64)?;
        }
        Ok(())
    }

    /// Copies `bytes` into memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), SimError> {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off + bytes.len() <= PAGE_BYTES {
            let idx = Self::page_index(addr)?;
            Self::page_index(addr + bytes.len().max(1) as u64 - 1)?;
            self.page_mut(idx)[off..off + bytes.len()].copy_from_slice(bytes);
            return Ok(());
        }
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b)?;
        }
        Ok(())
    }

    /// Reads `count` consecutive f32 values starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn read_f32_slice(&self, addr: u64, count: usize) -> Result<Vec<f32>, SimError> {
        (0..count)
            .map(|i| self.read_f32(addr + 4 * i as u64))
            .collect()
    }

    /// Writes consecutive f32 values starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] beyond the address space.
    pub fn write_f32_slice(&mut self, addr: u64, values: &[f32]) -> Result<(), SimError> {
        for (i, v) in values.iter().enumerate() {
            self.write_f32(addr + 4 * i as u64, *v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0).unwrap(), 0);
        assert_eq!(m.read_f32(12345).unwrap(), 0.0);
        assert_eq!(m.read_i64(999).unwrap(), 0);
    }

    #[test]
    fn roundtrip_scalars() {
        let mut m = Memory::new();
        m.write_f32(100, -2.25).unwrap();
        m.write_i64(200, -77).unwrap();
        assert_eq!(m.read_f32(100).unwrap(), -2.25);
        assert_eq!(m.read_i64(200).unwrap(), -77);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = (PAGE_BYTES - 2) as u64; // i64 straddles page 0/1
        m.write_i64(addr, 0x0123_4567_89AB_CDEF).unwrap();
        assert_eq!(m.read_i64(addr).unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn fault_beyond_address_space() {
        let mut m = Memory::new();
        let bad = (MAX_PAGES as u64) << PAGE_BITS;
        assert!(matches!(m.read_u8(bad), Err(SimError::MemoryFault { .. })));
        assert!(matches!(
            m.write_u8(bad, 1),
            Err(SimError::MemoryFault { .. })
        ));
    }

    #[test]
    fn slice_roundtrip() {
        let mut m = Memory::new();
        let vals = vec![1.0f32, -2.0, 3.5, 0.0, 9.25];
        m.write_f32_slice(4096, &vals).unwrap();
        assert_eq!(m.read_f32_slice(4096, 5).unwrap(), vals);
    }

    #[test]
    fn pages_allocate_lazily() {
        let mut m = Memory::new();
        assert_eq!(m.resident_pages(), 0);
        m.write_u8(0, 1).unwrap();
        m.write_u8((10 << PAGE_BITS) + 5, 1).unwrap();
        assert_eq!(m.resident_pages(), 2);
    }
}
