use simtune_cache::HierarchyStats;

/// Counts of executed (retired) instructions by class.
///
/// The paper's predictor consumes "the number of the executed
/// load/store/branch instructions divided by the total number of
/// instructions" (Section III-D); the finer classes are kept for ablation
/// experiments and debugging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstMix {
    /// Integer ALU operations (address arithmetic, loop counters).
    pub int_alu: u64,
    /// Scalar floating-point operations (FMA counts once).
    pub fp_alu: u64,
    /// Vector ALU operations.
    pub vec_alu: u64,
    /// Loads of any width (scalar int, scalar float, vector).
    pub loads: u64,
    /// Stores of any width.
    pub stores: u64,
    /// Control-flow instructions (conditional and unconditional).
    pub branches: u64,
    /// Conditional branches whose condition held (subset of `branches`).
    pub branches_taken: u64,
    /// Everything else (moves, converts, ecalls, halt).
    pub other: u64,
}

impl InstMix {
    /// Total retired instructions.
    pub fn total(&self) -> u64 {
        self.int_alu
            + self.fp_alu
            + self.vec_alu
            + self.loads
            + self.stores
            + self.branches
            + self.other
    }

    /// Loads / total (0 when nothing retired).
    pub fn load_ratio(&self) -> f64 {
        ratio(self.loads, self.total())
    }

    /// Stores / total (0 when nothing retired).
    pub fn store_ratio(&self) -> f64 {
        ratio(self.stores, self.total())
    }

    /// Branches / total (0 when nothing retired).
    pub fn branch_ratio(&self) -> f64 {
        ratio(self.branches, self.total())
    }

    /// Element-wise sum (aggregation across program phases).
    pub fn merged(&self, other: &InstMix) -> InstMix {
        InstMix {
            int_alu: self.int_alu + other.int_alu,
            fp_alu: self.fp_alu + other.fp_alu,
            vec_alu: self.vec_alu + other.vec_alu,
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
            branches: self.branches + other.branches,
            branches_taken: self.branches_taken + other.branches_taken,
            other: self.other + other.other,
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Everything the instruction-accurate simulator reports for one run:
/// the gem5-statistics stand-in consumed by the feature extractor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Retired-instruction mix.
    pub inst_mix: InstMix,
    /// Cache hierarchy counters.
    pub cache: HierarchyStats,
    /// Host wall-clock nanoseconds spent simulating (the `t_simulator` of
    /// the paper's Equation 4). Zero when not measured.
    pub host_nanos: u64,
}

impl SimStats {
    /// Host wall-clock seconds spent simulating.
    pub fn host_seconds(&self) -> f64 {
        self.host_nanos as f64 * 1e-9
    }

    /// Renders the statistics in gem5's `stats.txt` flavor — one
    /// `name  value  # description` line per counter. Useful when
    /// comparing against real gem5 output or feeding external tooling.
    ///
    /// # Example
    ///
    /// ```
    /// let stats = simtune_isa::SimStats::default();
    /// let text = stats.to_gem5_text();
    /// assert!(text.contains("simInsts"));
    /// assert!(text.contains("system.cpu.dcache.ReadReq.hits"));
    /// ```
    pub fn to_gem5_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut line = |name: &str, value: u64, desc: &str| {
            let _ = writeln!(out, "{name:<44} {value:>14}  # {desc}");
        };
        let m = &self.inst_mix;
        line("simInsts", m.total(), "Number of instructions simulated");
        line(
            "system.cpu.commitStats0.numLoadInsts",
            m.loads,
            "Number of load instructions",
        );
        line(
            "system.cpu.commitStats0.numStoreInsts",
            m.stores,
            "Number of store instructions",
        );
        line(
            "system.cpu.commitStats0.numBranches",
            m.branches,
            "Number of branches",
        );
        line(
            "system.cpu.commitStats0.numIntAluAccesses",
            m.int_alu,
            "Integer ALU ops",
        );
        line(
            "system.cpu.commitStats0.numFpAluAccesses",
            m.fp_alu,
            "FP ALU ops",
        );
        line(
            "system.cpu.commitStats0.numVecAluAccesses",
            m.vec_alu,
            "Vector ALU ops",
        );
        for (label, cache_name) in [
            ("l1d", "system.cpu.dcache"),
            ("l1i", "system.cpu.icache"),
            ("l2", "system.l2"),
        ] {
            let s = match label {
                "l1d" => self.cache.l1d,
                "l1i" => self.cache.l1i,
                _ => self.cache.l2,
            };
            line(
                &format!("{cache_name}.ReadReq.hits"),
                s.read_hits,
                "read hits",
            );
            line(
                &format!("{cache_name}.ReadReq.misses"),
                s.read_misses,
                "read misses",
            );
            line(
                &format!("{cache_name}.WriteReq.hits"),
                s.write_hits,
                "write hits",
            );
            line(
                &format!("{cache_name}.WriteReq.misses"),
                s.write_misses,
                "write misses",
            );
            line(
                &format!("{cache_name}.replacements"),
                s.read_replacements + s.write_replacements,
                "replacements",
            );
        }
        if let Some(l3) = self.cache.l3 {
            line("system.l3.ReadReq.hits", l3.read_hits, "read hits");
            line("system.l3.ReadReq.misses", l3.read_misses, "read misses");
            line("system.l3.WriteReq.hits", l3.write_hits, "write hits");
            line("system.l3.WriteReq.misses", l3.write_misses, "write misses");
        }
        line(
            "system.mem.numReads",
            self.cache.dram_reads,
            "DRAM line fills",
        );
        line(
            "system.mem.numWrites",
            self.cache.dram_writes,
            "DRAM write-backs",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_all_classes() {
        let m = InstMix {
            int_alu: 1,
            fp_alu: 2,
            vec_alu: 3,
            loads: 4,
            stores: 5,
            branches: 6,
            branches_taken: 4,
            other: 7,
        };
        assert_eq!(m.total(), 28);
        assert!((m.load_ratio() - 4.0 / 28.0).abs() < 1e-15);
        assert!((m.store_ratio() - 5.0 / 28.0).abs() < 1e-15);
        assert!((m.branch_ratio() - 6.0 / 28.0).abs() < 1e-15);
    }

    #[test]
    fn empty_mix_has_zero_ratios() {
        let m = InstMix::default();
        assert_eq!(m.total(), 0);
        assert_eq!(m.load_ratio(), 0.0);
    }

    #[test]
    fn merged_adds_componentwise() {
        let a = InstMix {
            loads: 2,
            branches: 1,
            ..Default::default()
        };
        let b = InstMix {
            loads: 3,
            stores: 7,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.loads, 5);
        assert_eq!(m.stores, 7);
        assert_eq!(m.branches, 1);
    }

    #[test]
    fn host_seconds_converts_nanos() {
        let s = SimStats {
            host_nanos: 1_500_000_000,
            ..Default::default()
        };
        assert!((s.host_seconds() - 1.5).abs() < 1e-12);
    }
}
