//! µop-level timing events: the seam between functional replay and
//! cycle-accurate timing tiers.
//!
//! [`ExecHook`] reports *architectural* events ([`Inst`] retirements,
//! cache-line accesses, branch resolutions). A timing model wants the
//! same stream one abstraction lower: per retirement, the µop's
//! statistics class and the registers it reads and writes, so it can
//! track RAW hazards and load-use bubbles without re-decoding every
//! instruction itself. [`TimingHook`] is that interface, and
//! [`TimingBridge`] adapts any `TimingHook` into an `ExecHook`, so the
//! replay engines need no changes and — because hooks are monomorphized
//! and [`NoopHook`](crate::NoopHook) stays the default everywhere —
//! non-timing tiers pay nothing for the extra layer.
//!
//! The bridge delivers events in the engines' fixed order, identical
//! across every [`EngineKind`](crate::EngineKind): `on_fetch`, then any
//! `on_mem`/`on_branch` raised while the instruction executes, then the
//! instruction's single `on_uop`. Timing models therefore buffer fetch
//! and memory latencies and settle them when the owning µop arrives.

use crate::{ExecHook, Fpr, Gpr, Inst, MixClass, Vr};
use simtune_cache::{CacheHierarchy, ServicedBy};

/// Number of slots in the unified timing register space: 32 GPRs, 32
/// FPRs and 32 vector registers.
pub const TIMING_REGS: usize = 96;

/// A register in the unified timing namespace — GPRs map to `0..32`,
/// FPRs to `32..64`, vector registers to `64..96` — so a scoreboard is
/// one flat array instead of three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reg(u16);

impl Reg {
    /// A general-purpose register.
    pub fn gpr(r: Gpr) -> Reg {
        Reg(r.0 as u16)
    }

    /// A scalar floating-point register.
    pub fn fpr(f: Fpr) -> Reg {
        Reg(32 + f.0 as u16)
    }

    /// A vector register.
    pub fn vr(v: Vr) -> Reg {
        Reg(64 + v.0 as u16)
    }

    /// Index into a `[_; TIMING_REGS]` scoreboard.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One retired instruction, reduced to what a timing model needs: its
/// statistics class, the register it writes (if any) and the registers
/// it reads (up to three — `Fmadd` and `Vfma` are the widest readers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UopEvent {
    /// Statistics class, identical to the [`InstMix`](crate::InstMix)
    /// accounting.
    pub class: MixClass,
    /// Destination register, `None` for stores, branches and system ops.
    pub dst: Option<Reg>,
    /// Source registers, `None`-padded.
    pub srcs: [Option<Reg>; 3],
}

/// Extracts the [`UopEvent`] of an instruction. `Vfma` and `Vinsert`
/// read their destination as an accumulator/merge input, so it appears
/// among the sources as well.
pub fn uop_event(inst: &Inst) -> UopEvent {
    let class = MixClass::of(inst);
    let (dst, srcs): (Option<Reg>, [Option<Reg>; 3]) = match *inst {
        Inst::Li { rd, .. } => (Some(Reg::gpr(rd)), [None; 3]),
        Inst::Addi { rd, rs, .. }
        | Inst::Muli { rd, rs, .. }
        | Inst::Slli { rd, rs, .. }
        | Inst::Mv { rd, rs } => (Some(Reg::gpr(rd)), [Some(Reg::gpr(rs)), None, None]),
        Inst::Add { rd, rs1, rs2 } | Inst::Sub { rd, rs1, rs2 } | Inst::Mul { rd, rs1, rs2 } => (
            Some(Reg::gpr(rd)),
            [Some(Reg::gpr(rs1)), Some(Reg::gpr(rs2)), None],
        ),
        Inst::Ld { rd, rs, .. } => (Some(Reg::gpr(rd)), [Some(Reg::gpr(rs)), None, None]),
        Inst::Sd { rval, rs, .. } => (None, [Some(Reg::gpr(rval)), Some(Reg::gpr(rs)), None]),
        Inst::Fli { fd, .. } => (Some(Reg::fpr(fd)), [None; 3]),
        Inst::Flw { fd, rs, .. } => (Some(Reg::fpr(fd)), [Some(Reg::gpr(rs)), None, None]),
        Inst::Fsw { fval, rs, .. } => (None, [Some(Reg::fpr(fval)), Some(Reg::gpr(rs)), None]),
        Inst::Fadd { fd, fs1, fs2 }
        | Inst::Fsub { fd, fs1, fs2 }
        | Inst::Fmul { fd, fs1, fs2 }
        | Inst::Fdiv { fd, fs1, fs2 }
        | Inst::Fmax { fd, fs1, fs2 } => (
            Some(Reg::fpr(fd)),
            [Some(Reg::fpr(fs1)), Some(Reg::fpr(fs2)), None],
        ),
        Inst::Fmadd { fd, fs1, fs2, fs3 } => (
            Some(Reg::fpr(fd)),
            [
                Some(Reg::fpr(fs1)),
                Some(Reg::fpr(fs2)),
                Some(Reg::fpr(fs3)),
            ],
        ),
        Inst::Fcvt { fd, rs } => (Some(Reg::fpr(fd)), [Some(Reg::gpr(rs)), None, None]),
        Inst::Vload { vd, rs, .. } => (Some(Reg::vr(vd)), [Some(Reg::gpr(rs)), None, None]),
        Inst::Vstore { vval, rs, .. } => (None, [Some(Reg::vr(vval)), Some(Reg::gpr(rs)), None]),
        Inst::Vbcast { vd, fs } => (Some(Reg::vr(vd)), [Some(Reg::fpr(fs)), None, None]),
        Inst::Vsplat { vd, .. } => (Some(Reg::vr(vd)), [None; 3]),
        Inst::Vfadd { vd, vs1, vs2 }
        | Inst::Vfmul { vd, vs1, vs2 }
        | Inst::Vfmax { vd, vs1, vs2 } => (
            Some(Reg::vr(vd)),
            [Some(Reg::vr(vs1)), Some(Reg::vr(vs2)), None],
        ),
        // Fused accumulate reads its destination.
        Inst::Vfma { vd, vs1, vs2 } => (
            Some(Reg::vr(vd)),
            [Some(Reg::vr(vs1)), Some(Reg::vr(vs2)), Some(Reg::vr(vd))],
        ),
        Inst::Vredsum { fd, vs } => (Some(Reg::fpr(fd)), [Some(Reg::vr(vs)), None, None]),
        // Single-lane insert merges into the destination vector.
        Inst::Vinsert { vd, fs, .. } => (
            Some(Reg::vr(vd)),
            [Some(Reg::fpr(fs)), Some(Reg::vr(vd)), None],
        ),
        Inst::Vextract { fd, vs, .. } => (Some(Reg::fpr(fd)), [Some(Reg::vr(vs)), None, None]),
        Inst::Blt { rs1, rs2, .. } | Inst::Bge { rs1, rs2, .. } | Inst::Bne { rs1, rs2, .. } => {
            (None, [Some(Reg::gpr(rs1)), Some(Reg::gpr(rs2)), None])
        }
        Inst::Jmp { .. } | Inst::Ecall { .. } | Inst::Halt => (None, [None; 3]),
    };
    UopEvent { class, dst, srcs }
}

/// A µop-level execution observer: what a cycle-accurate timing tier
/// implements. Event order per retirement is fixed (and identical
/// across replay engines): `on_fetch`, then zero or more `on_mem` and
/// at most one `on_branch` while the instruction executes, then the
/// instruction's `on_uop`.
pub trait TimingHook {
    /// An instruction was fetched at `pc`, serviced by `serviced`.
    fn on_fetch(&mut self, pc: usize, serviced: ServicedBy) {
        let _ = (pc, serviced);
    }

    /// An instruction retired as `uop`.
    fn on_uop(&mut self, uop: &UopEvent) {
        let _ = uop;
    }

    /// A data access touched the cache line at `line_addr`. The
    /// hierarchy is mutable so prefetchers can issue fills.
    fn on_mem(
        &mut self,
        line_addr: u64,
        is_store: bool,
        serviced: ServicedBy,
        hier: &mut CacheHierarchy,
    ) {
        let _ = (line_addr, is_store, serviced, hier);
    }

    /// A control-flow instruction at `pc` resolved.
    fn on_branch(&mut self, pc: usize, target: usize, taken: bool) {
        let _ = (pc, target, taken);
    }
}

/// Adapts a [`TimingHook`] into an [`ExecHook`], translating each
/// retirement into its [`UopEvent`] — so timing tiers plug into the
/// unmodified replay engines.
#[derive(Debug)]
pub struct TimingBridge<'h, H: TimingHook> {
    hook: &'h mut H,
}

impl<'h, H: TimingHook> TimingBridge<'h, H> {
    /// Wraps `hook` for one run.
    pub fn new(hook: &'h mut H) -> Self {
        TimingBridge { hook }
    }
}

impl<H: TimingHook> ExecHook for TimingBridge<'_, H> {
    fn on_fetch(&mut self, pc: usize, serviced: ServicedBy) {
        self.hook.on_fetch(pc, serviced);
    }

    fn on_retire(&mut self, inst: &Inst) {
        self.hook.on_uop(&uop_event(inst));
    }

    fn on_data_access(
        &mut self,
        line_addr: u64,
        is_store: bool,
        serviced: ServicedBy,
        hier: &mut CacheHierarchy,
    ) {
        self.hook.on_mem(line_addr, is_store, serviced, hier);
    }

    fn on_branch(&mut self, pc: usize, target: usize, taken: bool) {
        self.hook.on_branch(pc, target, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_register_space_is_disjoint() {
        assert_eq!(Reg::gpr(Gpr(0)).index(), 0);
        assert_eq!(Reg::gpr(Gpr(31)).index(), 31);
        assert_eq!(Reg::fpr(Fpr(0)).index(), 32);
        assert_eq!(Reg::fpr(Fpr(31)).index(), 63);
        assert_eq!(Reg::vr(Vr(0)).index(), 64);
        assert_eq!(Reg::vr(Vr(31)).index(), 95);
        assert!(Reg::vr(Vr(31)).index() < TIMING_REGS);
    }

    #[test]
    fn fused_accumulate_reads_its_destination() {
        let e = uop_event(&Inst::Vfma {
            vd: Vr(3),
            vs1: Vr(1),
            vs2: Vr(2),
        });
        assert_eq!(e.class, MixClass::VecAlu);
        assert_eq!(e.dst, Some(Reg::vr(Vr(3))));
        assert!(e.srcs.contains(&Some(Reg::vr(Vr(3)))));
    }

    #[test]
    fn stores_and_branches_write_nothing() {
        let s = uop_event(&Inst::Sd {
            rval: Gpr(4),
            rs: Gpr(5),
            imm: 0,
        });
        assert_eq!(s.dst, None);
        assert_eq!(s.srcs[0], Some(Reg::gpr(Gpr(4))));
        assert_eq!(s.srcs[1], Some(Reg::gpr(Gpr(5))));
        let b = uop_event(&Inst::Blt {
            rs1: Gpr(1),
            rs2: Gpr(2),
            target: 0,
        });
        assert_eq!(b.dst, None);
        assert_eq!(b.class, MixClass::Branch);
    }

    #[test]
    fn loads_carry_their_base_register() {
        let e = uop_event(&Inst::Flw {
            fd: Fpr(7),
            rs: Gpr(2),
            imm: 4,
        });
        assert_eq!(e.class, MixClass::Load);
        assert_eq!(e.dst, Some(Reg::fpr(Fpr(7))));
        assert_eq!(e.srcs[0], Some(Reg::gpr(Gpr(2))));
    }

    #[test]
    fn bridge_translates_retirements_to_uops() {
        #[derive(Default)]
        struct Collect {
            uops: Vec<UopEvent>,
            fetches: usize,
            branches: usize,
        }
        impl TimingHook for Collect {
            fn on_fetch(&mut self, _: usize, _: ServicedBy) {
                self.fetches += 1;
            }
            fn on_uop(&mut self, uop: &UopEvent) {
                self.uops.push(*uop);
            }
            fn on_branch(&mut self, _: usize, _: usize, _: bool) {
                self.branches += 1;
            }
        }
        let mut hook = Collect::default();
        {
            let mut bridge = TimingBridge::new(&mut hook);
            bridge.on_fetch(0, ServicedBy::L1i);
            bridge.on_retire(&Inst::Li { rd: Gpr(1), imm: 3 });
            bridge.on_branch(1, 0, true);
            bridge.on_retire(&Inst::Jmp { target: 0 });
        }
        assert_eq!(hook.fetches, 1);
        assert_eq!(hook.branches, 1);
        assert_eq!(hook.uops.len(), 2);
        assert_eq!(hook.uops[0].dst, Some(Reg::gpr(Gpr(1))));
        assert_eq!(hook.uops[1].class, MixClass::Branch);
    }
}
