//! Disassembly: human-readable listings of virtual-ISA programs.
//!
//! Used by debugging sessions and the documentation examples; the
//! mnemonics follow RISC-V assembly conventions where an equivalent
//! exists.

use crate::{Inst, Program};
use std::fmt;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Li { rd, imm } => write!(f, "li      {rd}, {imm}"),
            Inst::Addi { rd, rs, imm } => write!(f, "addi    {rd}, {rs}, {imm}"),
            Inst::Add { rd, rs1, rs2 } => write!(f, "add     {rd}, {rs1}, {rs2}"),
            Inst::Sub { rd, rs1, rs2 } => write!(f, "sub     {rd}, {rs1}, {rs2}"),
            Inst::Mul { rd, rs1, rs2 } => write!(f, "mul     {rd}, {rs1}, {rs2}"),
            Inst::Muli { rd, rs, imm } => write!(f, "muli    {rd}, {rs}, {imm}"),
            Inst::Slli { rd, rs, shamt } => write!(f, "slli    {rd}, {rs}, {shamt}"),
            Inst::Mv { rd, rs } => write!(f, "mv      {rd}, {rs}"),
            Inst::Ld { rd, rs, imm } => write!(f, "ld      {rd}, {imm}({rs})"),
            Inst::Sd { rval, rs, imm } => write!(f, "sd      {rval}, {imm}({rs})"),
            Inst::Fli { fd, imm } => write!(f, "fli     {fd}, {imm}"),
            Inst::Flw { fd, rs, imm } => write!(f, "flw     {fd}, {imm}({rs})"),
            Inst::Fsw { fval, rs, imm } => write!(f, "fsw     {fval}, {imm}({rs})"),
            Inst::Fadd { fd, fs1, fs2 } => write!(f, "fadd.s  {fd}, {fs1}, {fs2}"),
            Inst::Fsub { fd, fs1, fs2 } => write!(f, "fsub.s  {fd}, {fs1}, {fs2}"),
            Inst::Fmul { fd, fs1, fs2 } => write!(f, "fmul.s  {fd}, {fs1}, {fs2}"),
            Inst::Fdiv { fd, fs1, fs2 } => write!(f, "fdiv.s  {fd}, {fs1}, {fs2}"),
            Inst::Fmadd { fd, fs1, fs2, fs3 } => {
                write!(f, "fmadd.s {fd}, {fs1}, {fs2}, {fs3}")
            }
            Inst::Fmax { fd, fs1, fs2 } => write!(f, "fmax.s  {fd}, {fs1}, {fs2}"),
            Inst::Fcvt { fd, rs } => write!(f, "fcvt.s  {fd}, {rs}"),
            Inst::Vload { vd, rs, imm } => write!(f, "vload   {vd}, {imm}({rs})"),
            Inst::Vstore { vval, rs, imm } => write!(f, "vstore  {vval}, {imm}({rs})"),
            Inst::Vbcast { vd, fs } => write!(f, "vbcast  {vd}, {fs}"),
            Inst::Vsplat { vd, imm } => write!(f, "vsplat  {vd}, {imm}"),
            Inst::Vfadd { vd, vs1, vs2 } => write!(f, "vfadd   {vd}, {vs1}, {vs2}"),
            Inst::Vfmul { vd, vs1, vs2 } => write!(f, "vfmul   {vd}, {vs1}, {vs2}"),
            Inst::Vfma { vd, vs1, vs2 } => write!(f, "vfma    {vd}, {vs1}, {vs2}"),
            Inst::Vfmax { vd, vs1, vs2 } => write!(f, "vfmax   {vd}, {vs1}, {vs2}"),
            Inst::Vredsum { fd, vs } => write!(f, "vredsum {fd}, {vs}"),
            Inst::Vinsert { vd, fs, lane } => write!(f, "vins    {vd}[{lane}], {fs}"),
            Inst::Vextract { fd, vs, lane } => write!(f, "vext    {fd}, {vs}[{lane}]"),
            Inst::Blt { rs1, rs2, target } => write!(f, "blt     {rs1}, {rs2}, @{target}"),
            Inst::Bge { rs1, rs2, target } => write!(f, "bge     {rs1}, {rs2}, @{target}"),
            Inst::Bne { rs1, rs2, target } => write!(f, "bne     {rs1}, {rs2}, @{target}"),
            Inst::Jmp { target } => write!(f, "j       @{target}"),
            Inst::Ecall { code } => write!(f, "ecall   {code}"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

impl Program {
    /// Full disassembly listing with instruction indices and branch
    /// target markers.
    ///
    /// # Example
    ///
    /// ```
    /// use simtune_isa::{Gpr, Inst, ProgramBuilder};
    ///
    /// # fn main() -> Result<(), simtune_isa::BuildProgramError> {
    /// let mut b = ProgramBuilder::new();
    /// b.push(Inst::Li { rd: Gpr(1), imm: 3 });
    /// b.push(Inst::Halt);
    /// let listing = b.build()?.disassemble();
    /// assert!(listing.contains("li      r1, 3"));
    /// assert!(listing.contains("halt"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn disassemble(&self) -> String {
        use std::collections::HashSet;
        use std::fmt::Write as _;

        // Collect branch targets so the listing marks them.
        let targets: HashSet<usize> = self
            .insts()
            .iter()
            .filter_map(|i| match *i {
                Inst::Blt { target, .. }
                | Inst::Bge { target, .. }
                | Inst::Bne { target, .. }
                | Inst::Jmp { target } => Some(target),
                _ => None,
            })
            .collect();
        let mut out = String::new();
        for (pc, inst) in self.insts().iter().enumerate() {
            let mark = if targets.contains(&pc) { ">" } else { " " };
            let _ = writeln!(out, "{mark}{pc:>6}:  {inst}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fpr, Gpr, ProgramBuilder, Vr};

    #[test]
    fn every_instruction_kind_disassembles() {
        let insts = vec![
            Inst::Li {
                rd: Gpr(1),
                imm: -5,
            },
            Inst::Addi {
                rd: Gpr(1),
                rs: Gpr(2),
                imm: 8,
            },
            Inst::Mul {
                rd: Gpr(3),
                rs1: Gpr(1),
                rs2: Gpr(2),
            },
            Inst::Ld {
                rd: Gpr(4),
                rs: Gpr(2),
                imm: 16,
            },
            Inst::Flw {
                fd: Fpr(1),
                rs: Gpr(2),
                imm: 4,
            },
            Inst::Fmadd {
                fd: Fpr(2),
                fs1: Fpr(1),
                fs2: Fpr(1),
                fs3: Fpr(2),
            },
            Inst::Vload {
                vd: Vr(1),
                rs: Gpr(2),
                imm: 0,
            },
            Inst::Vfma {
                vd: Vr(0),
                vs1: Vr(1),
                vs2: Vr(2),
            },
            Inst::Vinsert {
                vd: Vr(1),
                fs: Fpr(1),
                lane: 3,
            },
            Inst::Ecall { code: 0 },
            Inst::Halt,
        ];
        for inst in insts {
            let s = inst.to_string();
            assert!(!s.is_empty());
            assert!(!s.contains("{"), "unformatted field in {s}");
        }
    }

    #[test]
    fn listing_marks_branch_targets() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li { rd: Gpr(1), imm: 0 });
        let top = b.bind_new_label();
        b.push(Inst::Addi {
            rd: Gpr(1),
            rs: Gpr(1),
            imm: 1,
        });
        b.push(Inst::Li { rd: Gpr(2), imm: 5 });
        b.branch_lt(Gpr(1), Gpr(2), top);
        b.push(Inst::Halt);
        let listing = b.build().unwrap().disassemble();
        // Instruction 1 is the loop head: marked with '>'.
        assert!(listing.lines().any(|l| l.starts_with(">     1:")));
        assert!(listing.contains("blt     r1, r2, @1"));
    }
}
