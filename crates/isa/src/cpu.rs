use crate::inst::MAX_LANES;
use crate::program::{FPR_FILE, GPR_FILE, VR_FILE};
use crate::CODE_BASE;
use crate::{Fpr, Gpr, Inst, InstMix, Memory, Program, SimError, SimStats, TargetIsa, Vr};
use simtune_cache::{lines_touched, CacheHierarchy, ServicedBy};

/// Execution budget for one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Abort with [`SimError::InstLimitExceeded`] after this many retired
    /// instructions (guards against mis-generated infinite loops).
    pub max_insts: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        // Generous enough for the paper-scale Conv2D groups.
        RunLimits {
            max_insts: 20_000_000_000,
        }
    }
}

/// Observer invoked by [`AtomicCpu::run_with_hook`] on every architectural
/// event.
///
/// The instruction-accurate path uses the no-op default implementation;
/// the timing models in `simtune-hw` implement this trait to accumulate
/// cycles and drive prefetchers (which is why [`ExecHook::on_data_access`]
/// receives the hierarchy mutably).
pub trait ExecHook {
    /// True only for hooks that observe nothing. Engines may use this to
    /// batch deterministic event accounting (e.g. crediting a lockstep
    /// block's instruction fetches in one call) instead of synthesizing
    /// per-event callbacks nobody consumes; the resulting statistics
    /// must stay bit-identical either way.
    const IS_NOOP: bool = false;

    /// Called after the fetch of each instruction.
    fn on_fetch(&mut self, pc: usize, serviced: ServicedBy) {
        let _ = (pc, serviced);
    }

    /// Called after an instruction retires.
    fn on_retire(&mut self, inst: &Inst) {
        let _ = inst;
    }

    /// Called once per cache line touched by a data access.
    fn on_data_access(
        &mut self,
        line_addr: u64,
        is_store: bool,
        serviced: ServicedBy,
        hier: &mut CacheHierarchy,
    ) {
        let _ = (line_addr, is_store, serviced, hier);
    }

    /// Called when a control-flow instruction resolves.
    fn on_branch(&mut self, pc: usize, target: usize, taken: bool) {
        let _ = (pc, target, taken);
    }
}

/// Hook that observes nothing (the plain instruction-accurate mode).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopHook;

impl ExecHook for NoopHook {
    const IS_NOOP: bool = true;
}

/// Where control goes after one retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// Fall through to `pc + 1`.
    Next,
    /// Jump to a resolved instruction index (taken branch).
    Jump(usize),
    /// Terminate execution (`Halt` / `Ecall 0`).
    Stop,
}

/// Instruction-accurate CPU: the gem5 "atomic SimpleCPU" stand-in.
///
/// Executes one instruction per step; every memory access completes within
/// the step (atomic mode); no pipeline or timing state exists. All fetches
/// and data accesses are routed through the supplied
/// [`CacheHierarchy`] so that hit/miss/replacement statistics accumulate.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct AtomicCpu {
    gpr: [i64; GPR_FILE],
    fpr: [f32; FPR_FILE],
    vr: [[f32; MAX_LANES]; VR_FILE],
    lanes: usize,
    inst_bytes: u64,
}

impl AtomicCpu {
    /// Creates a CPU with all registers zeroed for the given target.
    pub fn new(target: &TargetIsa) -> Self {
        AtomicCpu {
            gpr: [0; GPR_FILE],
            fpr: [0.0; FPR_FILE],
            vr: [[0.0; MAX_LANES]; VR_FILE],
            lanes: target.vector_lanes.clamp(1, MAX_LANES),
            inst_bytes: target.inst_bytes,
        }
    }

    /// Reads a general-purpose register (test/debug aid).
    pub fn gpr(&self, r: Gpr) -> i64 {
        self.gpr[r.0 as usize]
    }

    /// Reads a float register (test/debug aid).
    pub fn fpr(&self, r: Fpr) -> f32 {
        self.fpr[r.0 as usize]
    }

    /// Reads a vector register's active lanes (test/debug aid).
    pub fn vr(&self, r: Vr) -> &[f32] {
        &self.vr[r.0 as usize][..self.lanes]
    }

    /// Runs `prog` to completion in plain instruction-accurate mode.
    ///
    /// # Errors
    ///
    /// See [`AtomicCpu::run_with_hook`].
    pub fn run(
        &mut self,
        prog: &Program,
        mem: &mut Memory,
        hier: &mut CacheHierarchy,
        limits: RunLimits,
    ) -> Result<SimStats, SimError> {
        self.run_with_hook(prog, mem, hier, limits, &mut NoopHook)
    }

    /// Runs `prog` to completion, reporting every event to `hook`.
    ///
    /// Thin wrapper over [`crate::InterpEngine`], the re-decoding
    /// execution engine; pre-lower the program with
    /// [`crate::DecodedProgram::decode`] and drive a
    /// [`crate::DecodedEngine`] to amortize per-instruction dispatch work
    /// across repeated simulations.
    ///
    /// # Errors
    ///
    /// * [`SimError::PcOutOfRange`] — fell off the end of the program.
    /// * [`SimError::InstLimitExceeded`] — `limits.max_insts` exhausted.
    /// * [`SimError::MemoryFault`] — access outside the address space.
    /// * [`SimError::UnknownSyscall`] — unimplemented `Ecall` code.
    pub fn run_with_hook<H: ExecHook>(
        &mut self,
        prog: &Program,
        mem: &mut Memory,
        hier: &mut CacheHierarchy,
        limits: RunLimits,
        hook: &mut H,
    ) -> Result<SimStats, SimError> {
        use crate::decode::{ExecEngine, InterpEngine};
        InterpEngine::new(prog).run_with_hook(self, mem, hier, limits, hook)
    }

    /// Runs at most `budget` instructions of `prog`, stopping *cleanly*
    /// (not with an error) when the budget is reached before the program
    /// terminates. Returns the statistics of the executed prefix and
    /// whether the program ran to completion.
    ///
    /// This is the primitive behind sampled simulation (Pac-Sim-style):
    /// a fidelity-reduced backend simulates only a prefix of the work and
    /// extrapolates the rest. [`RunLimits::max_insts`] still aborts the
    /// run with an error when it is lower than `budget`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AtomicCpu::run_with_hook`].
    pub fn run_prefix_with_hook<H: ExecHook>(
        &mut self,
        prog: &Program,
        mem: &mut Memory,
        hier: &mut CacheHierarchy,
        limits: RunLimits,
        budget: u64,
        hook: &mut H,
    ) -> Result<(SimStats, bool), SimError> {
        use crate::decode::{ExecEngine, InterpEngine};
        InterpEngine::new(prog).run_prefix_with_hook(self, mem, hier, limits, budget, hook)
    }

    pub(crate) fn run_inner<H: ExecHook>(
        &mut self,
        prog: &Program,
        mem: &mut Memory,
        hier: &mut CacheHierarchy,
        limits: RunLimits,
        stop_at: Option<u64>,
        hook: &mut H,
    ) -> Result<(SimStats, bool), SimError> {
        let insts = prog.insts();
        let mut mix = InstMix::default();
        let mut pc = 0usize;
        let line_bytes = hier.line_bytes();
        let mut completed = true;
        loop {
            let retired = mix.total();
            if retired >= limits.max_insts {
                return Err(SimError::InstLimitExceeded {
                    limit: limits.max_insts,
                });
            }
            if stop_at.is_some_and(|budget| retired >= budget) {
                completed = false;
                break;
            }
            let inst = *insts.get(pc).ok_or(SimError::PcOutOfRange { pc })?;

            // Instruction fetch through the L1I.
            let fetch_addr = CODE_BASE + pc as u64 * self.inst_bytes;
            let serviced = hier.fetch(fetch_addr);
            hook.on_fetch(pc, serviced);

            let step = self.exec_inst(&inst, pc, mem, hier, hook, line_bytes, &mut mix)?;
            hook.on_retire(&inst);
            match step {
                Step::Next => pc += 1,
                Step::Jump(target) => pc = target,
                Step::Stop => break,
            }
        }
        Ok((
            SimStats {
                inst_mix: mix,
                cache: hier.stats(),
                host_nanos: 0,
            },
            completed,
        ))
    }

    /// Executes exactly one instruction: the semantic core shared by the
    /// re-decoding [`crate::InterpEngine`] and the pre-decoded
    /// [`crate::DecodedEngine`], so both produce bit-identical
    /// architectural state and statistics by construction.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)] // hot path: every operand is load-bearing
    pub(crate) fn exec_inst<H: ExecHook>(
        &mut self,
        inst: &Inst,
        pc: usize,
        mem: &mut Memory,
        hier: &mut CacheHierarchy,
        hook: &mut H,
        line_bytes: u64,
        mix: &mut InstMix,
    ) -> Result<Step, SimError> {
        let mut next = Step::Next;
        match *inst {
            // ----- integer -----
            Inst::Li { rd, imm } => {
                self.gpr[rd.0 as usize] = imm;
                mix.int_alu += 1;
            }
            Inst::Addi { rd, rs, imm } => {
                self.gpr[rd.0 as usize] = self.gpr[rs.0 as usize].wrapping_add(imm);
                mix.int_alu += 1;
            }
            Inst::Add { rd, rs1, rs2 } => {
                self.gpr[rd.0 as usize] =
                    self.gpr[rs1.0 as usize].wrapping_add(self.gpr[rs2.0 as usize]);
                mix.int_alu += 1;
            }
            Inst::Sub { rd, rs1, rs2 } => {
                self.gpr[rd.0 as usize] =
                    self.gpr[rs1.0 as usize].wrapping_sub(self.gpr[rs2.0 as usize]);
                mix.int_alu += 1;
            }
            Inst::Mul { rd, rs1, rs2 } => {
                self.gpr[rd.0 as usize] =
                    self.gpr[rs1.0 as usize].wrapping_mul(self.gpr[rs2.0 as usize]);
                mix.int_alu += 1;
            }
            Inst::Muli { rd, rs, imm } => {
                self.gpr[rd.0 as usize] = self.gpr[rs.0 as usize].wrapping_mul(imm);
                mix.int_alu += 1;
            }
            Inst::Slli { rd, rs, shamt } => {
                self.gpr[rd.0 as usize] = self.gpr[rs.0 as usize].wrapping_shl(shamt as u32);
                mix.int_alu += 1;
            }
            Inst::Mv { rd, rs } => {
                self.gpr[rd.0 as usize] = self.gpr[rs.0 as usize];
                mix.other += 1;
            }
            Inst::Ld { rd, rs, imm } => {
                let addr = self.ea(rs, imm);
                self.data_access(addr, 8, false, hier, hook, line_bytes);
                self.gpr[rd.0 as usize] = mem.read_i64(addr)?;
                mix.loads += 1;
            }
            Inst::Sd { rval, rs, imm } => {
                let addr = self.ea(rs, imm);
                self.data_access(addr, 8, true, hier, hook, line_bytes);
                mem.write_i64(addr, self.gpr[rval.0 as usize])?;
                mix.stores += 1;
            }

            // ----- scalar float -----
            Inst::Fli { fd, imm } => {
                self.fpr[fd.0 as usize] = imm;
                mix.fp_alu += 1;
            }
            Inst::Flw { fd, rs, imm } => {
                let addr = self.ea(rs, imm);
                self.data_access(addr, 4, false, hier, hook, line_bytes);
                self.fpr[fd.0 as usize] = mem.read_f32(addr)?;
                mix.loads += 1;
            }
            Inst::Fsw { fval, rs, imm } => {
                let addr = self.ea(rs, imm);
                self.data_access(addr, 4, true, hier, hook, line_bytes);
                mem.write_f32(addr, self.fpr[fval.0 as usize])?;
                mix.stores += 1;
            }
            Inst::Fadd { fd, fs1, fs2 } => {
                self.fpr[fd.0 as usize] = self.fpr[fs1.0 as usize] + self.fpr[fs2.0 as usize];
                mix.fp_alu += 1;
            }
            Inst::Fsub { fd, fs1, fs2 } => {
                self.fpr[fd.0 as usize] = self.fpr[fs1.0 as usize] - self.fpr[fs2.0 as usize];
                mix.fp_alu += 1;
            }
            Inst::Fmul { fd, fs1, fs2 } => {
                self.fpr[fd.0 as usize] = self.fpr[fs1.0 as usize] * self.fpr[fs2.0 as usize];
                mix.fp_alu += 1;
            }
            Inst::Fdiv { fd, fs1, fs2 } => {
                self.fpr[fd.0 as usize] = self.fpr[fs1.0 as usize] / self.fpr[fs2.0 as usize];
                mix.fp_alu += 1;
            }
            Inst::Fmadd { fd, fs1, fs2, fs3 } => {
                self.fpr[fd.0 as usize] = self.fpr[fs1.0 as usize]
                    .mul_add(self.fpr[fs2.0 as usize], self.fpr[fs3.0 as usize]);
                mix.fp_alu += 1;
            }
            Inst::Fmax { fd, fs1, fs2 } => {
                self.fpr[fd.0 as usize] = self.fpr[fs1.0 as usize].max(self.fpr[fs2.0 as usize]);
                mix.fp_alu += 1;
            }
            Inst::Fcvt { fd, rs } => {
                self.fpr[fd.0 as usize] = self.gpr[rs.0 as usize] as f32;
                mix.other += 1;
            }

            // ----- vector -----
            Inst::Vload { vd, rs, imm } => {
                let addr = self.ea(rs, imm);
                let bytes = 4 * self.lanes as u64;
                self.data_access(addr, bytes, false, hier, hook, line_bytes);
                for l in 0..self.lanes {
                    self.vr[vd.0 as usize][l] = mem.read_f32(addr + 4 * l as u64)?;
                }
                mix.loads += 1;
            }
            Inst::Vstore { vval, rs, imm } => {
                let addr = self.ea(rs, imm);
                let bytes = 4 * self.lanes as u64;
                self.data_access(addr, bytes, true, hier, hook, line_bytes);
                for l in 0..self.lanes {
                    mem.write_f32(addr + 4 * l as u64, self.vr[vval.0 as usize][l])?;
                }
                mix.stores += 1;
            }
            Inst::Vbcast { vd, fs } => {
                let v = self.fpr[fs.0 as usize];
                self.vr[vd.0 as usize][..self.lanes].fill(v);
                mix.vec_alu += 1;
            }
            Inst::Vsplat { vd, imm } => {
                self.vr[vd.0 as usize][..self.lanes].fill(imm);
                mix.vec_alu += 1;
            }
            Inst::Vfadd { vd, vs1, vs2 } => {
                for l in 0..self.lanes {
                    self.vr[vd.0 as usize][l] =
                        self.vr[vs1.0 as usize][l] + self.vr[vs2.0 as usize][l];
                }
                mix.vec_alu += 1;
            }
            Inst::Vfmul { vd, vs1, vs2 } => {
                for l in 0..self.lanes {
                    self.vr[vd.0 as usize][l] =
                        self.vr[vs1.0 as usize][l] * self.vr[vs2.0 as usize][l];
                }
                mix.vec_alu += 1;
            }
            Inst::Vfma { vd, vs1, vs2 } => {
                for l in 0..self.lanes {
                    let prod = self.vr[vs1.0 as usize][l] * self.vr[vs2.0 as usize][l];
                    self.vr[vd.0 as usize][l] += prod;
                }
                mix.vec_alu += 1;
            }
            Inst::Vfmax { vd, vs1, vs2 } => {
                for l in 0..self.lanes {
                    self.vr[vd.0 as usize][l] =
                        self.vr[vs1.0 as usize][l].max(self.vr[vs2.0 as usize][l]);
                }
                mix.vec_alu += 1;
            }
            Inst::Vredsum { fd, vs } => {
                self.fpr[fd.0 as usize] = self.vr[vs.0 as usize][..self.lanes].iter().sum();
                mix.vec_alu += 1;
            }
            Inst::Vinsert { vd, fs, lane } => {
                self.vr[vd.0 as usize][lane as usize] = self.fpr[fs.0 as usize];
                mix.vec_alu += 1;
            }
            Inst::Vextract { fd, vs, lane } => {
                self.fpr[fd.0 as usize] = self.vr[vs.0 as usize][lane as usize];
                mix.vec_alu += 1;
            }

            // ----- control -----
            Inst::Blt { rs1, rs2, target } => {
                let taken = self.gpr[rs1.0 as usize] < self.gpr[rs2.0 as usize];
                if taken {
                    next = Step::Jump(target);
                    mix.branches_taken += 1;
                }
                hook.on_branch(pc, target, taken);
                mix.branches += 1;
            }
            Inst::Bge { rs1, rs2, target } => {
                let taken = self.gpr[rs1.0 as usize] >= self.gpr[rs2.0 as usize];
                if taken {
                    next = Step::Jump(target);
                    mix.branches_taken += 1;
                }
                hook.on_branch(pc, target, taken);
                mix.branches += 1;
            }
            Inst::Bne { rs1, rs2, target } => {
                let taken = self.gpr[rs1.0 as usize] != self.gpr[rs2.0 as usize];
                if taken {
                    next = Step::Jump(target);
                    mix.branches_taken += 1;
                }
                hook.on_branch(pc, target, taken);
                mix.branches += 1;
            }
            Inst::Jmp { target } => {
                next = Step::Jump(target);
                hook.on_branch(pc, target, true);
                mix.branches += 1;
                mix.branches_taken += 1;
            }

            // ----- system -----
            Inst::Ecall { code } => {
                mix.other += 1;
                if code != 0 {
                    return Err(SimError::UnknownSyscall { code });
                }
                next = Step::Stop;
            }
            Inst::Halt => {
                mix.other += 1;
                next = Step::Stop;
            }
        }
        Ok(next)
    }

    #[inline]
    fn ea(&self, base: Gpr, imm: i64) -> u64 {
        (self.gpr[base.0 as usize].wrapping_add(imm)) as u64
    }

    #[inline]
    fn data_access<H: ExecHook>(
        &self,
        addr: u64,
        bytes: u64,
        is_store: bool,
        hier: &mut CacheHierarchy,
        hook: &mut H,
        line_bytes: u64,
    ) {
        for line in lines_touched(addr, bytes, line_bytes) {
            let serviced = if is_store {
                hier.data_write(line)
            } else {
                hier.data_read(line)
            };
            hook.on_data_access(line, is_store, serviced, hier);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use simtune_cache::HierarchyConfig;

    fn setup() -> (Memory, CacheHierarchy) {
        (
            Memory::new(),
            CacheHierarchy::new(HierarchyConfig::tiny_for_tests()),
        )
    }

    fn run_prog(b: ProgramBuilder) -> (AtomicCpu, SimStats) {
        let prog = b.build().expect("valid program");
        let target = TargetIsa::arm_cortex_a72();
        let mut cpu = AtomicCpu::new(&target);
        let (mut mem, mut hier) = setup();
        let stats = cpu
            .run(&prog, &mut mem, &mut hier, RunLimits::default())
            .expect("run succeeds");
        (cpu, stats)
    }

    #[test]
    fn integer_arithmetic() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li { rd: Gpr(1), imm: 6 });
        b.push(Inst::Li { rd: Gpr(2), imm: 7 });
        b.push(Inst::Mul {
            rd: Gpr(3),
            rs1: Gpr(1),
            rs2: Gpr(2),
        });
        b.push(Inst::Slli {
            rd: Gpr(4),
            rs: Gpr(3),
            shamt: 1,
        });
        b.push(Inst::Addi {
            rd: Gpr(5),
            rs: Gpr(4),
            imm: -4,
        });
        b.push(Inst::Halt);
        let (cpu, stats) = run_prog(b);
        assert_eq!(cpu.gpr(Gpr(3)), 42);
        assert_eq!(cpu.gpr(Gpr(4)), 84);
        assert_eq!(cpu.gpr(Gpr(5)), 80);
        assert_eq!(stats.inst_mix.int_alu, 5);
    }

    #[test]
    fn loop_executes_correct_iteration_count() {
        // sum = 0; for i in 0..10 { sum += i }
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li { rd: Gpr(1), imm: 0 }); // i
        b.push(Inst::Li { rd: Gpr(2), imm: 0 }); // sum
        b.push(Inst::Li {
            rd: Gpr(3),
            imm: 10,
        });
        let top = b.bind_new_label();
        b.push(Inst::Add {
            rd: Gpr(2),
            rs1: Gpr(2),
            rs2: Gpr(1),
        });
        b.push(Inst::Addi {
            rd: Gpr(1),
            rs: Gpr(1),
            imm: 1,
        });
        b.branch_lt(Gpr(1), Gpr(3), top);
        b.push(Inst::Halt);
        let (cpu, stats) = run_prog(b);
        assert_eq!(cpu.gpr(Gpr(2)), 45);
        assert_eq!(stats.inst_mix.branches, 10);
        assert_eq!(stats.inst_mix.branches_taken, 9);
    }

    #[test]
    fn float_fma_and_relu() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Fli {
            fd: Fpr(1),
            imm: 2.0,
        });
        b.push(Inst::Fli {
            fd: Fpr(2),
            imm: -3.0,
        });
        b.push(Inst::Fli {
            fd: Fpr(3),
            imm: 1.0,
        });
        b.push(Inst::Fmadd {
            fd: Fpr(4),
            fs1: Fpr(1),
            fs2: Fpr(2),
            fs3: Fpr(3),
        }); // 2*-3+1 = -5
        b.push(Inst::Fli {
            fd: Fpr(0),
            imm: 0.0,
        });
        b.push(Inst::Fmax {
            fd: Fpr(5),
            fs1: Fpr(4),
            fs2: Fpr(0),
        }); // relu(-5) = 0
        b.push(Inst::Halt);
        let (cpu, _) = run_prog(b);
        assert_eq!(cpu.fpr(Fpr(4)), -5.0);
        assert_eq!(cpu.fpr(Fpr(5)), 0.0);
    }

    #[test]
    fn memory_roundtrip_counts_loads_and_stores() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li {
            rd: Gpr(1),
            imm: 0x10_0000,
        });
        b.push(Inst::Fli {
            fd: Fpr(1),
            imm: 1.5,
        });
        b.push(Inst::Fsw {
            fval: Fpr(1),
            rs: Gpr(1),
            imm: 8,
        });
        b.push(Inst::Flw {
            fd: Fpr(2),
            rs: Gpr(1),
            imm: 8,
        });
        b.push(Inst::Halt);
        let (cpu, stats) = run_prog(b);
        assert_eq!(cpu.fpr(Fpr(2)), 1.5);
        assert_eq!(stats.inst_mix.loads, 1);
        assert_eq!(stats.inst_mix.stores, 1);
        // Store allocated the line; the load hits L1D.
        assert_eq!(stats.cache.l1d.read_hits, 1);
        assert_eq!(stats.cache.l1d.write_misses, 1);
    }

    #[test]
    fn vector_ops_respect_lane_count() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li {
            rd: Gpr(1),
            imm: 0x10_0000,
        });
        b.push(Inst::Vsplat {
            vd: Vr(1),
            imm: 2.0,
        });
        b.push(Inst::Vsplat {
            vd: Vr(2),
            imm: 3.0,
        });
        b.push(Inst::Vsplat {
            vd: Vr(3),
            imm: 1.0,
        });
        // v3 += v1 * v2 -> 7.0 in each lane
        b.push(Inst::Vfma {
            vd: Vr(3),
            vs1: Vr(1),
            vs2: Vr(2),
        });
        b.push(Inst::Vstore {
            vval: Vr(3),
            rs: Gpr(1),
            imm: 0,
        });
        b.push(Inst::Vredsum {
            fd: Fpr(1),
            vs: Vr(3),
        });
        b.push(Inst::Halt);
        let prog = b.build().unwrap();
        // ARM target: 4 lanes.
        let target = TargetIsa::arm_cortex_a72();
        let mut cpu = AtomicCpu::new(&target);
        let (mut mem, mut hier) = setup();
        cpu.run(&prog, &mut mem, &mut hier, RunLimits::default())
            .unwrap();
        assert_eq!(cpu.vr(Vr(3)), &[7.0, 7.0, 7.0, 7.0]);
        assert_eq!(cpu.fpr(Fpr(1)), 28.0);
        assert_eq!(mem.read_f32_slice(0x10_0000, 4).unwrap(), vec![7.0; 4]);
        // Lane 4 was never written on a 4-lane target.
        assert_eq!(mem.read_f32(0x10_0000 + 16).unwrap(), 0.0);
    }

    #[test]
    fn vector_load_straddling_lines_touches_two() {
        let mut b = ProgramBuilder::new();
        // Address 0x10_0038 = 56 mod 64: an 8-lane (32 B) access straddles.
        b.push(Inst::Li {
            rd: Gpr(1),
            imm: 0x10_0038,
        });
        b.push(Inst::Vload {
            vd: Vr(1),
            rs: Gpr(1),
            imm: 0,
        });
        b.push(Inst::Halt);
        let prog = b.build().unwrap();
        let target = TargetIsa::x86_ryzen_5800x(); // 8 lanes
        let mut cpu = AtomicCpu::new(&target);
        let (mut mem, mut hier) = setup();
        let stats = cpu
            .run(&prog, &mut mem, &mut hier, RunLimits::default())
            .unwrap();
        assert_eq!(stats.inst_mix.loads, 1, "one instruction");
        assert_eq!(stats.cache.l1d.read_misses, 2, "two lines touched");
    }

    #[test]
    fn inst_limit_guards_infinite_loops() {
        let mut b = ProgramBuilder::new();
        let top = b.bind_new_label();
        b.jump(top);
        b.push(Inst::Halt);
        let prog = b.build().unwrap();
        let target = TargetIsa::riscv_u74();
        let mut cpu = AtomicCpu::new(&target);
        let (mut mem, mut hier) = setup();
        let err = cpu.run(&prog, &mut mem, &mut hier, RunLimits { max_insts: 100 });
        assert!(matches!(err, Err(SimError::InstLimitExceeded { .. })));
    }

    #[test]
    fn prefix_run_stops_cleanly_at_budget() {
        // sum = 0; for i in 0..10 { sum += i } — 33 retired instructions.
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li { rd: Gpr(1), imm: 0 });
        b.push(Inst::Li { rd: Gpr(2), imm: 0 });
        b.push(Inst::Li {
            rd: Gpr(3),
            imm: 10,
        });
        let top = b.bind_new_label();
        b.push(Inst::Add {
            rd: Gpr(2),
            rs1: Gpr(2),
            rs2: Gpr(1),
        });
        b.push(Inst::Addi {
            rd: Gpr(1),
            rs: Gpr(1),
            imm: 1,
        });
        b.branch_lt(Gpr(1), Gpr(3), top);
        b.push(Inst::Halt);
        let prog = b.build().unwrap();
        let target = TargetIsa::riscv_u74();

        // Budget below the full run: clean stop, exact prefix length.
        let mut cpu = AtomicCpu::new(&target);
        let (mut mem, mut hier) = setup();
        let (stats, completed) = cpu
            .run_prefix_with_hook(
                &prog,
                &mut mem,
                &mut hier,
                RunLimits::default(),
                10,
                &mut NoopHook,
            )
            .unwrap();
        assert!(!completed);
        assert_eq!(stats.inst_mix.total(), 10);

        // Budget beyond the full run: identical to a plain run.
        let mut cpu = AtomicCpu::new(&target);
        let (mut mem, mut hier) = setup();
        let (stats, completed) = cpu
            .run_prefix_with_hook(
                &prog,
                &mut mem,
                &mut hier,
                RunLimits::default(),
                u64::MAX,
                &mut NoopHook,
            )
            .unwrap();
        assert!(completed);
        let mut cpu = AtomicCpu::new(&target);
        let (mut mem, mut hier) = setup();
        let full = cpu
            .run(&prog, &mut mem, &mut hier, RunLimits::default())
            .unwrap();
        assert_eq!(stats, full);

        // max_insts still wins over the prefix budget.
        let mut cpu = AtomicCpu::new(&target);
        let (mut mem, mut hier) = setup();
        let err = cpu.run_prefix_with_hook(
            &prog,
            &mut mem,
            &mut hier,
            RunLimits { max_insts: 5 },
            10,
            &mut NoopHook,
        );
        assert!(matches!(err, Err(SimError::InstLimitExceeded { .. })));
    }

    #[test]
    fn unknown_syscall_is_reported() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Ecall { code: 42 });
        b.push(Inst::Halt);
        let prog = b.build().unwrap();
        let target = TargetIsa::riscv_u74();
        let mut cpu = AtomicCpu::new(&target);
        let (mut mem, mut hier) = setup();
        let err = cpu.run(&prog, &mut mem, &mut hier, RunLimits::default());
        assert_eq!(err, Err(SimError::UnknownSyscall { code: 42 }));
    }

    #[test]
    fn fetch_statistics_accumulate_in_l1i() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li { rd: Gpr(1), imm: 1 });
        b.push(Inst::Halt);
        let (_, stats) = run_prog(b);
        assert_eq!(stats.inst_mix.total(), 2);
        assert_eq!(stats.cache.l1i.read_accesses(), 2);
        // Both instructions share one line: 1 miss + 1 hit.
        assert_eq!(stats.cache.l1i.read_misses, 1);
        assert_eq!(stats.cache.l1i.read_hits, 1);
    }

    #[test]
    fn hook_receives_events() {
        #[derive(Default)]
        struct Counter {
            retired: u64,
            fetches: u64,
            data: u64,
            branches: u64,
        }
        impl ExecHook for Counter {
            fn on_fetch(&mut self, _: usize, _: ServicedBy) {
                self.fetches += 1;
            }
            fn on_retire(&mut self, _: &Inst) {
                self.retired += 1;
            }
            fn on_data_access(&mut self, _: u64, _: bool, _: ServicedBy, _: &mut CacheHierarchy) {
                self.data += 1;
            }
            fn on_branch(&mut self, _: usize, _: usize, _: bool) {
                self.branches += 1;
            }
        }
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li {
            rd: Gpr(1),
            imm: 0x10_0000,
        });
        b.push(Inst::Flw {
            fd: Fpr(1),
            rs: Gpr(1),
            imm: 0,
        });
        let l = b.new_label();
        b.jump(l);
        b.bind(l);
        b.push(Inst::Halt);
        let prog = b.build().unwrap();
        let target = TargetIsa::riscv_u74();
        let mut cpu = AtomicCpu::new(&target);
        let (mut mem, mut hier) = setup();
        let mut hook = Counter::default();
        cpu.run_with_hook(&prog, &mut mem, &mut hier, RunLimits::default(), &mut hook)
            .unwrap();
        assert_eq!(hook.retired, 4);
        assert_eq!(hook.fetches, 4);
        assert_eq!(hook.data, 1);
        assert_eq!(hook.branches, 1);
    }
}
