//! Assembly parsing: the inverse of [`crate::Inst`]'s `Display` /
//! [`crate::Program::disassemble`].
//!
//! Every mnemonic emitted by the disassembler parses back to the exact
//! instruction it came from, which gives the ISA a textual round-trip
//! (`Inst` → text → `Inst`) used by tests, debugging sessions and
//! hand-written fixtures.

use crate::{Fpr, Gpr, Inst, Program, ProgramBuilder, Vr};
use std::fmt;

/// Error produced while parsing assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line (0 when parsing a bare instruction).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "asm parse error: {}", self.msg)
        } else {
            write!(f, "asm parse error on line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for AsmError {}

fn err(msg: impl Into<String>) -> AsmError {
    AsmError {
        line: 0,
        msg: msg.into(),
    }
}

/// Parses one instruction in the disassembler's syntax, e.g.
/// `add r3, r1, r2`, `ld r4, 16(r2)`, `vins v1[3], f1` or
/// `blt r1, r2, @7`.
///
/// # Errors
///
/// Returns [`AsmError`] on unknown mnemonics, malformed operands or
/// wrong operand counts.
pub fn parse_inst(text: &str) -> Result<Inst, AsmError> {
    let text = text.trim();
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };

    let inst = match mnemonic {
        "li" => Inst::Li {
            rd: gpr(op(&ops, 0, 2)?)?,
            imm: int(op(&ops, 1, 2)?)?,
        },
        "addi" => Inst::Addi {
            rd: gpr(op(&ops, 0, 3)?)?,
            rs: gpr(op(&ops, 1, 3)?)?,
            imm: int(op(&ops, 2, 3)?)?,
        },
        "add" | "sub" | "mul" => {
            let rd = gpr(op(&ops, 0, 3)?)?;
            let rs1 = gpr(op(&ops, 1, 3)?)?;
            let rs2 = gpr(op(&ops, 2, 3)?)?;
            match mnemonic {
                "add" => Inst::Add { rd, rs1, rs2 },
                "sub" => Inst::Sub { rd, rs1, rs2 },
                _ => Inst::Mul { rd, rs1, rs2 },
            }
        }
        "muli" => Inst::Muli {
            rd: gpr(op(&ops, 0, 3)?)?,
            rs: gpr(op(&ops, 1, 3)?)?,
            imm: int(op(&ops, 2, 3)?)?,
        },
        "slli" => Inst::Slli {
            rd: gpr(op(&ops, 0, 3)?)?,
            rs: gpr(op(&ops, 1, 3)?)?,
            shamt: u8::try_from(int(op(&ops, 2, 3)?)?)
                .map_err(|_| err("shift amount out of range"))?,
        },
        "mv" => Inst::Mv {
            rd: gpr(op(&ops, 0, 2)?)?,
            rs: gpr(op(&ops, 1, 2)?)?,
        },
        "ld" => {
            let (imm, rs) = mem_operand(op(&ops, 1, 2)?)?;
            Inst::Ld {
                rd: gpr(op(&ops, 0, 2)?)?,
                rs,
                imm,
            }
        }
        "sd" => {
            let (imm, rs) = mem_operand(op(&ops, 1, 2)?)?;
            Inst::Sd {
                rval: gpr(op(&ops, 0, 2)?)?,
                rs,
                imm,
            }
        }
        "fli" => Inst::Fli {
            fd: fpr(op(&ops, 0, 2)?)?,
            imm: float(op(&ops, 1, 2)?)?,
        },
        "flw" => {
            let (imm, rs) = mem_operand(op(&ops, 1, 2)?)?;
            Inst::Flw {
                fd: fpr(op(&ops, 0, 2)?)?,
                rs,
                imm,
            }
        }
        "fsw" => {
            let (imm, rs) = mem_operand(op(&ops, 1, 2)?)?;
            Inst::Fsw {
                fval: fpr(op(&ops, 0, 2)?)?,
                rs,
                imm,
            }
        }
        "fadd.s" | "fsub.s" | "fmul.s" | "fdiv.s" | "fmax.s" => {
            let fd = fpr(op(&ops, 0, 3)?)?;
            let fs1 = fpr(op(&ops, 1, 3)?)?;
            let fs2 = fpr(op(&ops, 2, 3)?)?;
            match mnemonic {
                "fadd.s" => Inst::Fadd { fd, fs1, fs2 },
                "fsub.s" => Inst::Fsub { fd, fs1, fs2 },
                "fmul.s" => Inst::Fmul { fd, fs1, fs2 },
                "fdiv.s" => Inst::Fdiv { fd, fs1, fs2 },
                _ => Inst::Fmax { fd, fs1, fs2 },
            }
        }
        "fmadd.s" => Inst::Fmadd {
            fd: fpr(op(&ops, 0, 4)?)?,
            fs1: fpr(op(&ops, 1, 4)?)?,
            fs2: fpr(op(&ops, 2, 4)?)?,
            fs3: fpr(op(&ops, 3, 4)?)?,
        },
        "fcvt.s" => Inst::Fcvt {
            fd: fpr(op(&ops, 0, 2)?)?,
            rs: gpr(op(&ops, 1, 2)?)?,
        },
        "vload" => {
            let (imm, rs) = mem_operand(op(&ops, 1, 2)?)?;
            Inst::Vload {
                vd: vr(op(&ops, 0, 2)?)?,
                rs,
                imm,
            }
        }
        "vstore" => {
            let (imm, rs) = mem_operand(op(&ops, 1, 2)?)?;
            Inst::Vstore {
                vval: vr(op(&ops, 0, 2)?)?,
                rs,
                imm,
            }
        }
        "vbcast" => Inst::Vbcast {
            vd: vr(op(&ops, 0, 2)?)?,
            fs: fpr(op(&ops, 1, 2)?)?,
        },
        "vsplat" => Inst::Vsplat {
            vd: vr(op(&ops, 0, 2)?)?,
            imm: float(op(&ops, 1, 2)?)?,
        },
        "vfadd" | "vfmul" | "vfma" | "vfmax" => {
            let vd = vr(op(&ops, 0, 3)?)?;
            let vs1 = vr(op(&ops, 1, 3)?)?;
            let vs2 = vr(op(&ops, 2, 3)?)?;
            match mnemonic {
                "vfadd" => Inst::Vfadd { vd, vs1, vs2 },
                "vfmul" => Inst::Vfmul { vd, vs1, vs2 },
                "vfma" => Inst::Vfma { vd, vs1, vs2 },
                _ => Inst::Vfmax { vd, vs1, vs2 },
            }
        }
        "vredsum" => Inst::Vredsum {
            fd: fpr(op(&ops, 0, 2)?)?,
            vs: vr(op(&ops, 1, 2)?)?,
        },
        "vins" => {
            let (vd, lane) = lane_operand(op(&ops, 0, 2)?, 'v')?;
            Inst::Vinsert {
                vd: Vr(vd),
                fs: fpr(op(&ops, 1, 2)?)?,
                lane,
            }
        }
        "vext" => {
            let (vs, lane) = lane_operand(op(&ops, 1, 2)?, 'v')?;
            Inst::Vextract {
                fd: fpr(op(&ops, 0, 2)?)?,
                vs: Vr(vs),
                lane,
            }
        }
        "blt" | "bge" | "bne" => {
            let rs1 = gpr(op(&ops, 0, 3)?)?;
            let rs2 = gpr(op(&ops, 1, 3)?)?;
            let target = target(op(&ops, 2, 3)?)?;
            match mnemonic {
                "blt" => Inst::Blt { rs1, rs2, target },
                "bge" => Inst::Bge { rs1, rs2, target },
                _ => Inst::Bne { rs1, rs2, target },
            }
        }
        "j" => Inst::Jmp {
            target: target(op(&ops, 0, 1)?)?,
        },
        "ecall" => Inst::Ecall {
            code: u16::try_from(int(op(&ops, 0, 1)?)?)
                .map_err(|_| err("ecall code out of range"))?,
        },
        "halt" => {
            if !ops.is_empty() {
                return Err(err("halt takes no operands"));
            }
            Inst::Halt
        }
        other => return Err(err(format!("unknown mnemonic {other:?}"))),
    };
    Ok(inst)
}

/// Parses a whole listing in [`Program::disassemble`]'s format —
/// optional `>` target marker, optional `index:` prefix, one
/// instruction per line; blank lines and `#` comments are skipped.
///
/// # Errors
///
/// Returns [`AsmError`] (with its line number) for the first malformed
/// line, or the underlying build error if the program fails validation.
pub fn parse_program(listing: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    for (lineno, raw) in listing.lines().enumerate() {
        let mut line = raw.trim();
        if let Some((code, _comment)) = line.split_once('#') {
            line = code.trim();
        }
        if line.is_empty() {
            continue;
        }
        line = line.strip_prefix('>').unwrap_or(line).trim_start();
        // Optional "index:" prefix from disassemble().
        if let Some((prefix, rest)) = line.split_once(':') {
            if prefix.trim().parse::<usize>().is_ok() {
                line = rest.trim_start();
            }
        }
        let inst = parse_inst(line).map_err(|e| AsmError {
            line: lineno + 1,
            msg: e.msg,
        })?;
        b.push(inst);
    }
    b.build().map_err(|e| err(format!("invalid program: {e}")))
}

fn op<'a>(ops: &[&'a str], idx: usize, want: usize) -> Result<&'a str, AsmError> {
    if ops.len() != want {
        return Err(err(format!(
            "expected {want} operand(s), found {}",
            ops.len()
        )));
    }
    Ok(ops[idx])
}

fn reg_index(text: &str, prefix: char, kind: &str) -> Result<u8, AsmError> {
    text.strip_prefix(prefix)
        .and_then(|d| d.parse::<u8>().ok())
        .ok_or_else(|| err(format!("expected {kind} register, found {text:?}")))
}

fn gpr(text: &str) -> Result<Gpr, AsmError> {
    reg_index(text, 'r', "general-purpose").map(Gpr)
}

fn fpr(text: &str) -> Result<Fpr, AsmError> {
    reg_index(text, 'f', "floating-point").map(Fpr)
}

fn vr(text: &str) -> Result<Vr, AsmError> {
    reg_index(text, 'v', "vector").map(Vr)
}

fn int(text: &str) -> Result<i64, AsmError> {
    text.parse::<i64>()
        .map_err(|_| err(format!("expected integer, found {text:?}")))
}

fn float(text: &str) -> Result<f32, AsmError> {
    text.parse::<f32>()
        .map_err(|_| err(format!("expected float, found {text:?}")))
}

/// Parses `imm(reg)` base+offset memory operands.
fn mem_operand(text: &str) -> Result<(i64, Gpr), AsmError> {
    let (imm_text, rest) = text
        .split_once('(')
        .ok_or_else(|| err(format!("expected imm(reg), found {text:?}")))?;
    let reg_text = rest
        .strip_suffix(')')
        .ok_or_else(|| err(format!("unclosed memory operand {text:?}")))?;
    Ok((int(imm_text.trim())?, gpr(reg_text.trim())?))
}

/// Parses `vN[lane]` indexed-lane operands.
fn lane_operand(text: &str, prefix: char) -> Result<(u8, u8), AsmError> {
    let (reg_text, rest) = text
        .split_once('[')
        .ok_or_else(|| err(format!("expected {prefix}N[lane], found {text:?}")))?;
    let lane_text = rest
        .strip_suffix(']')
        .ok_or_else(|| err(format!("unclosed lane index {text:?}")))?;
    let reg = reg_index(reg_text.trim(), prefix, "vector")?;
    let lane = lane_text
        .trim()
        .parse::<u8>()
        .map_err(|_| err(format!("expected lane index, found {lane_text:?}")))?;
    Ok((reg, lane))
}

/// Parses `@index` branch targets.
fn target(text: &str) -> Result<usize, AsmError> {
    text.strip_prefix('@')
        .and_then(|d| d.parse::<usize>().ok())
        .ok_or_else(|| err(format!("expected @target, found {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_memory_and_lane_operands() {
        assert_eq!(
            parse_inst("ld r4, 16(r2)").unwrap(),
            Inst::Ld {
                rd: Gpr(4),
                rs: Gpr(2),
                imm: 16
            }
        );
        assert_eq!(
            parse_inst("vins v1[3], f1").unwrap(),
            Inst::Vinsert {
                vd: Vr(1),
                fs: Fpr(1),
                lane: 3
            }
        );
        assert_eq!(
            parse_inst("vext f2, v5[0]").unwrap(),
            Inst::Vextract {
                fd: Fpr(2),
                vs: Vr(5),
                lane: 0
            }
        );
    }

    #[test]
    fn rejects_malformed_text() {
        assert!(parse_inst("frobnicate r1").is_err());
        assert!(parse_inst("add r1, r2").is_err());
        assert!(parse_inst("ld r1, (r2").is_err());
        assert!(parse_inst("li x1, 5").is_err());
        assert!(parse_inst("halt r1").is_err());
        assert!(parse_inst("blt r1, r2, 7").is_err(), "target needs @");
    }

    #[test]
    fn parse_program_reports_line_numbers() {
        let e = parse_program("li r1, 1\nbogus\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
