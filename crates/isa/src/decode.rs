//! Pre-decoded execution: one-time lowering of a [`Program`] into a
//! dense µop array, plus the [`ExecEngine`] abstraction over the two
//! ways of driving the [`AtomicCpu`].
//!
//! # Why a decode phase
//!
//! The interpreter loop pays per-retirement costs that are invariant
//! across the whole run: bounds-checking the program counter, computing
//! the fetch address (`CODE_BASE + pc * inst_bytes`), and classifying
//! the instruction for statistics. Autotuning workloads re-enter the
//! simulator thousands of times per schedule-space sweep, so this module
//! hoists all of that into a one-time [`DecodedProgram::decode`] pass —
//! the same decode/execute split fast simulators and JITs use (mijit,
//! QEMU TCG, trace-driven GPU simulators): lower once, replay many
//! times.
//!
//! The lowered form is a dense array of [`MicroOp`]s carrying the
//! original instruction, its precomputed fetch address, its
//! [`MixClass`], and the index of the basic block it belongs to.
//! Control-flow validity is established **once** at decode time: every
//! branch target must land inside the program and the last instruction
//! must not fall through past the end ([`SimError::InvalidPc`]
//! otherwise), so the execution loop needs no per-step PC range checks
//! and can never fail with [`SimError::PcOutOfRange`].
//!
//! # Engines
//!
//! [`ExecEngine`] abstracts "something that can drive an [`AtomicCpu`]
//! over a program":
//!
//! * [`InterpEngine`] — the original loop: re-inspects the raw
//!   [`Program`] on every retirement. Kept as the reference
//!   implementation and for one-shot runs where decoding would not
//!   amortize.
//! * [`DecodedEngine`] — replays a [`DecodedProgram`]; per-retirement
//!   work is a single indexed load of the µop.
//! * [`crate::ThreadedEngine`] — replays a [`DecodedProgram`] lowered
//!   once more into threaded-code form ([`crate::ThreadedProgram`]):
//!   per-retirement work is one indirect call through a pre-bound,
//!   per-kind-specialized handler plus a successor read from the thunk.
//! * [`crate::BatchEngine`] — not an [`ExecEngine`] (its unit of work is
//!   a whole batch): replays one decoded program across many data lanes
//!   in lockstep, falling back to the scalar loop on divergence.
//!
//! All engines share the single-instruction semantic core
//! (`AtomicCpu::exec_inst`), so their architectural results and
//! [`SimStats`] are bit-identical by construction — a property pinned
//! down by the differential property suite in `tests/`. [`crate::EngineKind`]
//! names the ladder for configuration plumbing.
//!
//! # Example
//!
//! ```
//! use simtune_cache::{CacheHierarchy, HierarchyConfig};
//! use simtune_isa::{
//!     AtomicCpu, DecodedEngine, DecodedProgram, ExecEngine, Gpr, Inst, Memory, NoopHook,
//!     ProgramBuilder, RunLimits, TargetIsa,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! b.push(Inst::Li { rd: Gpr(1), imm: 41 });
//! b.push(Inst::Addi { rd: Gpr(1), rs: Gpr(1), imm: 1 });
//! b.push(Inst::Halt);
//! let prog = b.build()?;
//!
//! let target = TargetIsa::riscv_u74();
//! let decoded = DecodedProgram::decode(&prog, &target)?; // once
//! let engine = DecodedEngine::new(&decoded);
//! for _ in 0..3 {
//!     // replay many times
//!     let mut cpu = AtomicCpu::new(&target);
//!     let mut mem = Memory::new();
//!     let mut hier = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
//!     let stats =
//!         engine.run_with_hook(&mut cpu, &mut mem, &mut hier, RunLimits::default(), &mut NoopHook)?;
//!     assert_eq!(stats.inst_mix.total(), 3);
//!     assert_eq!(cpu.gpr(Gpr(1)), 42);
//! }
//! # Ok(())
//! # }
//! ```

use crate::cpu::Step;
use crate::{
    AtomicCpu, ExecHook, Inst, InstMix, Memory, Program, RunLimits, SimError, SimStats, TargetIsa,
    CODE_BASE,
};
use simtune_cache::CacheHierarchy;

/// Statistics class of an instruction — the precomputed form of the
/// per-arm `mix.* += 1` accounting in the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixClass {
    /// Integer ALU operations (address arithmetic, loop counters).
    IntAlu,
    /// Scalar floating-point operations.
    FpAlu,
    /// Vector ALU operations.
    VecAlu,
    /// Loads of any width.
    Load,
    /// Stores of any width.
    Store,
    /// Control-flow instructions.
    Branch,
    /// Everything else (moves, converts, ecalls, halt).
    Other,
}

impl MixClass {
    /// Classifies an instruction exactly as the execution loop counts it
    /// into [`InstMix`].
    pub fn of(inst: &Inst) -> MixClass {
        match inst {
            Inst::Li { .. }
            | Inst::Addi { .. }
            | Inst::Add { .. }
            | Inst::Sub { .. }
            | Inst::Mul { .. }
            | Inst::Muli { .. }
            | Inst::Slli { .. } => MixClass::IntAlu,
            Inst::Fli { .. }
            | Inst::Fadd { .. }
            | Inst::Fsub { .. }
            | Inst::Fmul { .. }
            | Inst::Fdiv { .. }
            | Inst::Fmadd { .. }
            | Inst::Fmax { .. } => MixClass::FpAlu,
            Inst::Vbcast { .. }
            | Inst::Vsplat { .. }
            | Inst::Vfadd { .. }
            | Inst::Vfmul { .. }
            | Inst::Vfma { .. }
            | Inst::Vfmax { .. }
            | Inst::Vredsum { .. }
            | Inst::Vinsert { .. }
            | Inst::Vextract { .. } => MixClass::VecAlu,
            Inst::Ld { .. } | Inst::Flw { .. } | Inst::Vload { .. } => MixClass::Load,
            Inst::Sd { .. } | Inst::Fsw { .. } | Inst::Vstore { .. } => MixClass::Store,
            Inst::Blt { .. } | Inst::Bge { .. } | Inst::Bne { .. } | Inst::Jmp { .. } => {
                MixClass::Branch
            }
            Inst::Mv { .. } | Inst::Fcvt { .. } | Inst::Ecall { .. } | Inst::Halt => {
                MixClass::Other
            }
        }
    }
}

/// One pre-decoded instruction: the dense replay form the
/// [`DecodedEngine`] executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroOp {
    /// The architectural instruction (branch targets already resolved).
    pub inst: Inst,
    /// Precomputed I-fetch address (`CODE_BASE + pc * inst_bytes`).
    pub fetch_addr: u64,
    /// Statistics class of the instruction.
    pub class: MixClass,
    /// Index of the basic block this instruction belongs to.
    pub block: u32,
}

/// A [`Program`] lowered once into a dense µop array with validated
/// control flow and a basic-block index.
///
/// Produced by [`DecodedProgram::decode`]; consumed by
/// [`DecodedEngine`]. Decoding is target-specific only through the
/// instruction encoding width (fetch addresses); the same decoded
/// program may be replayed any number of times, by any number of
/// threads (`DecodedProgram` is immutable and `Send + Sync`).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedProgram {
    ops: Vec<MicroOp>,
    block_starts: Vec<usize>,
    inst_bytes: u64,
}

impl DecodedProgram {
    /// Lowers `prog` for `target`, validating all control flow.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPc`] when a branch target points
    /// outside the program or when the last instruction could fall
    /// through past the end (i.e. is neither a terminator, an
    /// unconditional jump, nor an `Ecall`).
    pub fn decode(prog: &Program, target: &TargetIsa) -> Result<DecodedProgram, SimError> {
        let insts = prog.insts();
        let len = insts.len();
        if len == 0 {
            return Err(SimError::InvalidPc {
                at: 0,
                target: 0,
                len: 0,
            });
        }

        // Control-flow validation: every place execution can move the PC
        // must stay inside the program. After this pass the execution
        // loop needs no bounds checks.
        for (at, inst) in insts.iter().enumerate() {
            if let Some(t) = branch_target(inst) {
                if t >= len {
                    return Err(SimError::InvalidPc { at, target: t, len });
                }
            }
        }
        let last = &insts[len - 1];
        let last_falls_through =
            !matches!(last, Inst::Halt | Inst::Ecall { .. } | Inst::Jmp { .. });
        if last_falls_through {
            return Err(SimError::InvalidPc {
                at: len - 1,
                target: len,
                len,
            });
        }

        // Basic-block leaders: entry, every branch target, and every
        // fall-through successor of a control-flow instruction.
        let mut leader = vec![false; len];
        leader[0] = true;
        for (at, inst) in insts.iter().enumerate() {
            if let Some(t) = branch_target(inst) {
                leader[t] = true;
            }
            if (inst.is_branch() || inst.is_terminator()) && at + 1 < len {
                leader[at + 1] = true;
            }
        }
        let block_starts: Vec<usize> = (0..len).filter(|&pc| leader[pc]).collect();

        let mut ops = Vec::with_capacity(len);
        let mut block = 0u32;
        for (pc, inst) in insts.iter().enumerate() {
            if pc > 0 && leader[pc] {
                block += 1;
            }
            ops.push(MicroOp {
                inst: *inst,
                fetch_addr: CODE_BASE + pc as u64 * target.inst_bytes,
                class: MixClass::of(inst),
                block,
            });
        }
        Ok(DecodedProgram {
            ops,
            block_starts,
            inst_bytes: target.inst_bytes,
        })
    }

    /// The µop sequence, indexed by program counter.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of instructions (static code size).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Always false: decoding rejects empty programs.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// First instruction index of each basic block, ascending.
    pub fn block_starts(&self) -> &[usize] {
        &self.block_starts
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_starts.len()
    }

    /// Instruction encoding width the fetch addresses were computed for.
    pub fn inst_bytes(&self) -> u64 {
        self.inst_bytes
    }

    /// Static instruction mix (each instruction counted once, regardless
    /// of how often it executes; `branches_taken` is always zero).
    pub fn static_mix(&self) -> InstMix {
        let mut mix = InstMix::default();
        for op in &self.ops {
            match op.class {
                MixClass::IntAlu => mix.int_alu += 1,
                MixClass::FpAlu => mix.fp_alu += 1,
                MixClass::VecAlu => mix.vec_alu += 1,
                MixClass::Load => mix.loads += 1,
                MixClass::Store => mix.stores += 1,
                MixClass::Branch => mix.branches += 1,
                MixClass::Other => mix.other += 1,
            }
        }
        mix
    }
}

fn branch_target(inst: &Inst) -> Option<usize> {
    match *inst {
        Inst::Blt { target, .. }
        | Inst::Bge { target, .. }
        | Inst::Bne { target, .. }
        | Inst::Jmp { target } => Some(target),
        _ => None,
    }
}

/// Something that can drive an [`AtomicCpu`] over a program: the seam
/// between "what to execute" (raw or pre-decoded) and "how to execute
/// it" (the CPU's single-instruction semantics).
pub trait ExecEngine {
    /// Runs to completion, reporting every event to `hook`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AtomicCpu::run_with_hook`] (the
    /// [`DecodedEngine`] can additionally never raise
    /// [`SimError::PcOutOfRange`]).
    fn run_with_hook<H: ExecHook>(
        &self,
        cpu: &mut AtomicCpu,
        mem: &mut Memory,
        hier: &mut CacheHierarchy,
        limits: RunLimits,
        hook: &mut H,
    ) -> Result<SimStats, SimError>;

    /// Runs at most `budget` instructions, stopping cleanly when the
    /// budget is reached; returns the prefix statistics and whether the
    /// program ran to completion.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExecEngine::run_with_hook`].
    fn run_prefix_with_hook<H: ExecHook>(
        &self,
        cpu: &mut AtomicCpu,
        mem: &mut Memory,
        hier: &mut CacheHierarchy,
        limits: RunLimits,
        budget: u64,
        hook: &mut H,
    ) -> Result<(SimStats, bool), SimError>;
}

/// The original re-decoding execution loop: inspects the raw [`Program`]
/// on every retirement. Reference implementation and the right choice
/// for one-shot runs where a decode pass would not amortize.
#[derive(Debug, Clone, Copy)]
pub struct InterpEngine<'p> {
    prog: &'p Program,
}

impl<'p> InterpEngine<'p> {
    /// Engine over a raw program.
    pub fn new(prog: &'p Program) -> Self {
        InterpEngine { prog }
    }
}

impl ExecEngine for InterpEngine<'_> {
    fn run_with_hook<H: ExecHook>(
        &self,
        cpu: &mut AtomicCpu,
        mem: &mut Memory,
        hier: &mut CacheHierarchy,
        limits: RunLimits,
        hook: &mut H,
    ) -> Result<SimStats, SimError> {
        cpu.run_inner(self.prog, mem, hier, limits, None, hook)
            .map(|(stats, _)| stats)
    }

    fn run_prefix_with_hook<H: ExecHook>(
        &self,
        cpu: &mut AtomicCpu,
        mem: &mut Memory,
        hier: &mut CacheHierarchy,
        limits: RunLimits,
        budget: u64,
        hook: &mut H,
    ) -> Result<(SimStats, bool), SimError> {
        cpu.run_inner(self.prog, mem, hier, limits, Some(budget), hook)
    }
}

/// The fast path: replays a [`DecodedProgram`]. Per-retirement work is
/// one indexed µop load — no PC bounds check (validated at decode), no
/// fetch-address arithmetic (precomputed).
#[derive(Debug, Clone, Copy)]
pub struct DecodedEngine<'p> {
    prog: &'p DecodedProgram,
}

impl<'p> DecodedEngine<'p> {
    /// Engine over a pre-decoded program.
    pub fn new(prog: &'p DecodedProgram) -> Self {
        DecodedEngine { prog }
    }

    fn run_decoded<H: ExecHook>(
        &self,
        cpu: &mut AtomicCpu,
        mem: &mut Memory,
        hier: &mut CacheHierarchy,
        limits: RunLimits,
        stop_at: Option<u64>,
        hook: &mut H,
    ) -> Result<(SimStats, bool), SimError> {
        let ops = self.prog.ops.as_slice();
        let mut mix = InstMix::default();
        let mut pc = 0usize;
        let line_bytes = hier.line_bytes();
        let mut completed = true;
        loop {
            let retired = mix.total();
            if retired >= limits.max_insts {
                return Err(SimError::InstLimitExceeded {
                    limit: limits.max_insts,
                });
            }
            if stop_at.is_some_and(|budget| retired >= budget) {
                completed = false;
                break;
            }
            // In range by decode-time validation: every reachable pc is a
            // fall-through (checked against the last instruction) or a
            // validated branch target. Copy the architectural fields to
            // locals so they live in registers across the step.
            let op = &ops[pc];
            let inst = op.inst;
            hook.on_fetch(pc, hier.fetch(op.fetch_addr));
            let step = cpu.exec_inst(&inst, pc, mem, hier, hook, line_bytes, &mut mix)?;
            hook.on_retire(&inst);
            match step {
                Step::Next => pc += 1,
                Step::Jump(target) => pc = target,
                Step::Stop => break,
            }
        }
        Ok((
            SimStats {
                inst_mix: mix,
                cache: hier.stats(),
                host_nanos: 0,
            },
            completed,
        ))
    }
}

impl ExecEngine for DecodedEngine<'_> {
    fn run_with_hook<H: ExecHook>(
        &self,
        cpu: &mut AtomicCpu,
        mem: &mut Memory,
        hier: &mut CacheHierarchy,
        limits: RunLimits,
        hook: &mut H,
    ) -> Result<SimStats, SimError> {
        self.run_decoded(cpu, mem, hier, limits, None, hook)
            .map(|(stats, _)| stats)
    }

    fn run_prefix_with_hook<H: ExecHook>(
        &self,
        cpu: &mut AtomicCpu,
        mem: &mut Memory,
        hier: &mut CacheHierarchy,
        limits: RunLimits,
        budget: u64,
        hook: &mut H,
    ) -> Result<(SimStats, bool), SimError> {
        self.run_decoded(cpu, mem, hier, limits, Some(budget), hook)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fpr, Gpr, NoopHook, ProgramBuilder};
    use simtune_cache::HierarchyConfig;

    fn loop_program() -> Program {
        // sum = 0; for i in 0..10 { sum += i }
        let mut b = ProgramBuilder::new();
        b.push(Inst::Li { rd: Gpr(1), imm: 0 });
        b.push(Inst::Li { rd: Gpr(2), imm: 0 });
        b.push(Inst::Li {
            rd: Gpr(3),
            imm: 10,
        });
        let top = b.bind_new_label();
        b.push(Inst::Add {
            rd: Gpr(2),
            rs1: Gpr(2),
            rs2: Gpr(1),
        });
        b.push(Inst::Addi {
            rd: Gpr(1),
            rs: Gpr(1),
            imm: 1,
        });
        b.branch_lt(Gpr(1), Gpr(3), top);
        b.push(Inst::Halt);
        b.build().unwrap()
    }

    fn setup() -> (Memory, CacheHierarchy) {
        (
            Memory::new(),
            CacheHierarchy::new(HierarchyConfig::tiny_for_tests()),
        )
    }

    #[test]
    fn decoded_engine_matches_interpreter_exactly() {
        let prog = loop_program();
        let target = TargetIsa::riscv_u74();
        let decoded = DecodedProgram::decode(&prog, &target).unwrap();

        let mut cpu_a = AtomicCpu::new(&target);
        let (mut mem_a, mut hier_a) = setup();
        let a = InterpEngine::new(&prog)
            .run_with_hook(
                &mut cpu_a,
                &mut mem_a,
                &mut hier_a,
                RunLimits::default(),
                &mut NoopHook,
            )
            .unwrap();

        let mut cpu_b = AtomicCpu::new(&target);
        let (mut mem_b, mut hier_b) = setup();
        let b = DecodedEngine::new(&decoded)
            .run_with_hook(
                &mut cpu_b,
                &mut mem_b,
                &mut hier_b,
                RunLimits::default(),
                &mut NoopHook,
            )
            .unwrap();

        assert_eq!(a, b);
        assert_eq!(cpu_a.gpr(Gpr(2)), 45);
        assert_eq!(cpu_b.gpr(Gpr(2)), 45);
    }

    #[test]
    fn decoded_prefix_stops_cleanly_and_matches() {
        let prog = loop_program();
        let target = TargetIsa::riscv_u74();
        let decoded = DecodedProgram::decode(&prog, &target).unwrap();

        let mut cpu = AtomicCpu::new(&target);
        let (mut mem, mut hier) = setup();
        let (stats, completed) = DecodedEngine::new(&decoded)
            .run_prefix_with_hook(
                &mut cpu,
                &mut mem,
                &mut hier,
                RunLimits::default(),
                10,
                &mut NoopHook,
            )
            .unwrap();
        assert!(!completed);
        assert_eq!(stats.inst_mix.total(), 10);

        let mut cpu = AtomicCpu::new(&target);
        let (mut mem, mut hier) = setup();
        let (interp, completed_i) = InterpEngine::new(&prog)
            .run_prefix_with_hook(
                &mut cpu,
                &mut mem,
                &mut hier,
                RunLimits::default(),
                10,
                &mut NoopHook,
            )
            .unwrap();
        assert!(!completed_i);
        assert_eq!(stats, interp);
    }

    #[test]
    fn fetch_addresses_follow_encoding_width() {
        let prog = loop_program();
        let target = TargetIsa::riscv_u74();
        let decoded = DecodedProgram::decode(&prog, &target).unwrap();
        for (pc, op) in decoded.ops().iter().enumerate() {
            assert_eq!(op.fetch_addr, CODE_BASE + pc as u64 * target.inst_bytes);
        }
        assert_eq!(decoded.inst_bytes(), target.inst_bytes);
    }

    #[test]
    fn basic_blocks_split_at_branches_and_targets() {
        let prog = loop_program();
        let target = TargetIsa::riscv_u74();
        let decoded = DecodedProgram::decode(&prog, &target).unwrap();
        // Leaders: 0 (entry), 3 (branch target = loop head), 6 (after
        // the conditional branch).
        assert_eq!(decoded.block_starts(), &[0, 3, 6]);
        assert_eq!(decoded.num_blocks(), 3);
        let blocks: Vec<u32> = decoded.ops().iter().map(|op| op.block).collect();
        assert_eq!(blocks, [0, 0, 0, 1, 1, 1, 2]);
    }

    #[test]
    fn static_mix_counts_each_instruction_once() {
        let prog = loop_program();
        let target = TargetIsa::riscv_u74();
        let mix = DecodedProgram::decode(&prog, &target).unwrap().static_mix();
        assert_eq!(mix.int_alu, 5);
        assert_eq!(mix.branches, 1);
        assert_eq!(mix.other, 1);
        assert_eq!(mix.branches_taken, 0);
        assert_eq!(mix.total(), 7);
    }

    #[test]
    fn out_of_range_branch_is_rejected_at_decode_time() {
        // Hand-construct an invalid target by patching a built program's
        // clone is impossible (fields are private); instead assemble the
        // raw instruction sequence through the builder's escape hatch:
        // push a Jmp with a resolved-but-bogus target.
        let mut b = ProgramBuilder::new();
        b.push(Inst::Jmp { target: 99 });
        b.push(Inst::Halt);
        let prog = b.build().unwrap();
        let err = DecodedProgram::decode(&prog, &TargetIsa::riscv_u74()).unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidPc {
                at: 0,
                target: 99,
                len: 2
            }
        );
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn fall_through_past_end_is_rejected_at_decode_time() {
        // Terminator exists mid-program, but the last instruction is an
        // ALU op whose fall-through leaves the code segment.
        let mut b = ProgramBuilder::new();
        b.push(Inst::Halt);
        b.push(Inst::Li { rd: Gpr(1), imm: 1 });
        let prog = b.build().unwrap();
        let err = DecodedProgram::decode(&prog, &TargetIsa::riscv_u74()).unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidPc {
                at: 1,
                target: 2,
                len: 2
            }
        );
    }

    #[test]
    fn mix_class_covers_every_instruction_kind() {
        assert_eq!(
            MixClass::of(&Inst::Li { rd: Gpr(0), imm: 0 }),
            MixClass::IntAlu
        );
        assert_eq!(
            MixClass::of(&Inst::Fli {
                fd: Fpr(0),
                imm: 0.0
            }),
            MixClass::FpAlu
        );
        assert_eq!(
            MixClass::of(&Inst::Flw {
                fd: Fpr(0),
                rs: Gpr(0),
                imm: 0
            }),
            MixClass::Load
        );
        assert_eq!(
            MixClass::of(&Inst::Fsw {
                fval: Fpr(0),
                rs: Gpr(0),
                imm: 0
            }),
            MixClass::Store
        );
        assert_eq!(MixClass::of(&Inst::Jmp { target: 0 }), MixClass::Branch);
        assert_eq!(MixClass::of(&Inst::Halt), MixClass::Other);
        assert_eq!(
            MixClass::of(&Inst::Mv {
                rd: Gpr(0),
                rs: Gpr(1)
            }),
            MixClass::Other
        );
    }
}
