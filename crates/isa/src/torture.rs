//! Seeded mini-torture program generator: structured random programs
//! for differential engine testing.
//!
//! The differential suites pin every [`crate::ExecEngine`] to the
//! interpreter over randomized programs. Flat instruction soup is easy
//! to generate but shallow — it rarely exercises the control-flow
//! shapes where replay engines can diverge (nested back-edges,
//! forward branches over sub-blocks, strided memory sweeps that hammer
//! the cache model). This module generates *structured* torture
//! programs instead: counted loop nests with irregular forward
//! branches and pathologically-strided loads/stores, all derived
//! deterministically from one seed so failures replay exactly.
//!
//! Every generated program terminates: loops are counter-driven with
//! small fixed bounds, forward branches converge, and the last
//! instruction is `Halt`. Memory accesses stay inside a fixed window
//! above [`DATA_BASE`], so programs are also safe to batch over
//! arbitrary data segments.

use crate::{Fpr, Gpr, Inst, Program, ProgramBuilder, Vr, DATA_BASE};

/// Bytes of the data window torture programs read and write.
pub const TORTURE_WINDOW: u64 = 2048;

// Register conventions: r1 = data base (never overwritten), r2..r9 and
// f0..f7 / v1..v5 scratch, r10+level loop counters, r16+level bounds.
const BASE: Gpr = Gpr(1);

/// Splitmix-style generator: deterministic, dependency-free, and good
/// enough to decorrelate the program shape from the seed.
struct TortureRng(u64);

impl TortureRng {
    fn new(seed: u64) -> Self {
        TortureRng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (n must be nonzero).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generator state threaded through one program emission.
struct Torture {
    rng: TortureRng,
    /// Monotone access counter: successive memory accesses step by the
    /// current stride, wrapping inside the window.
    access: u64,
    /// Current byte stride between successive memory accesses.
    stride: u64,
}

/// Strides chosen to defeat simple prefetch/locality assumptions:
/// sub-line, line-straddling, and page-ish jumps relative to the tiny
/// test hierarchies.
const STRIDES: [u64; 6] = [4, 12, 28, 60, 124, 508];

impl Torture {
    /// Next access offset inside the window, honoring the stride and
    /// leaving room for the widest (8-lane, 32-byte) access. 8-byte
    /// aligned so it is valid for every access width.
    fn offset(&mut self) -> i64 {
        self.access = self.access.wrapping_add(self.stride);
        ((self.access % ((TORTURE_WINDOW - 32) / 8)) * 8) as i64
    }

    fn scratch_g(&mut self) -> Gpr {
        Gpr(2 + self.rng.below(8) as u8)
    }

    fn scratch_f(&mut self) -> Fpr {
        Fpr(self.rng.below(8) as u8)
    }

    fn scratch_v(&mut self) -> Vr {
        Vr(1 + self.rng.below(5) as u8)
    }

    /// Emits one random body instruction.
    fn emit_inst(&mut self, b: &mut ProgramBuilder) {
        let (rd, rs1, rs2) = (self.scratch_g(), self.scratch_g(), self.scratch_g());
        let (fd, fs1, fs2) = (self.scratch_f(), self.scratch_f(), self.scratch_f());
        let (vd, vs1, vs2) = (self.scratch_v(), self.scratch_v(), self.scratch_v());
        match self.rng.below(16) {
            0 => {
                b.push(Inst::Li {
                    rd,
                    imm: self.rng.below(512) as i64 - 256,
                });
            }
            1 => {
                b.push(Inst::Addi {
                    rd,
                    rs: rs1,
                    imm: self.rng.below(32) as i64 - 16,
                });
            }
            2 => {
                b.push(Inst::Add { rd, rs1, rs2 });
            }
            3 => {
                b.push(Inst::Mul { rd, rs1, rs2 });
            }
            4 => {
                let imm = self.offset();
                b.push(Inst::Ld { rd, rs: BASE, imm });
            }
            5 => {
                let imm = self.offset();
                b.push(Inst::Sd {
                    rval: rs1,
                    rs: BASE,
                    imm,
                });
            }
            6 => {
                b.push(Inst::Fli {
                    fd,
                    imm: self.rng.below(4096) as f32 / 32.0 - 64.0,
                });
            }
            7 => {
                let imm = self.offset();
                b.push(Inst::Flw { fd, rs: BASE, imm });
            }
            8 => {
                let imm = self.offset();
                b.push(Inst::Fsw {
                    fval: fs1,
                    rs: BASE,
                    imm,
                });
            }
            9 => {
                b.push(Inst::Fadd { fd, fs1, fs2 });
            }
            10 => {
                b.push(Inst::Fmadd {
                    fd,
                    fs1,
                    fs2,
                    fs3: self.scratch_f(),
                });
            }
            11 => {
                b.push(Inst::Fdiv { fd, fs1, fs2 });
            }
            12 => {
                let imm = self.offset();
                b.push(Inst::Vload { vd, rs: BASE, imm });
            }
            13 => {
                let imm = self.offset();
                b.push(Inst::Vstore {
                    vval: vs1,
                    rs: BASE,
                    imm,
                });
            }
            14 => {
                b.push(Inst::Vfma { vd, vs1, vs2 });
            }
            _ => {
                b.push(Inst::Vredsum { fd, vs: vs1 });
            }
        }
    }

    /// Emits a counted loop at nesting `level` (0 = innermost): a body
    /// of random instructions, an optional irregular forward branch
    /// over a sub-block, an optional deeper nest, and a strided sweep.
    fn emit_loop(&mut self, b: &mut ProgramBuilder, level: u8) {
        let ctr = Gpr(10 + level);
        let bound = Gpr(16 + level);
        b.push(Inst::Li { rd: ctr, imm: 0 });
        b.push(Inst::Li {
            rd: bound,
            imm: 1 + self.rng.below(3) as i64,
        });
        let top = b.bind_new_label();
        self.stride = STRIDES[self.rng.below(STRIDES.len() as u64) as usize];
        for _ in 0..2 + self.rng.below(5) {
            self.emit_inst(b);
        }
        if self.rng.below(2) == 0 {
            // Irregular forward branch: skip a sub-block depending on
            // two scratch registers; both paths converge at `join`.
            let join = b.new_label();
            let (a, c) = (self.scratch_g(), self.scratch_g());
            match self.rng.below(3) {
                0 => b.branch_ne(a, c, join),
                1 => b.branch_lt(a, c, join),
                _ => b.branch_ge(a, c, join),
            }
            for _ in 0..1 + self.rng.below(3) {
                self.emit_inst(b);
            }
            b.bind(join);
        }
        if level > 0 {
            self.emit_loop(b, level - 1);
        }
        b.push(Inst::Addi {
            rd: ctr,
            rs: ctr,
            imm: 1,
        });
        b.branch_lt(ctr, bound, top);
    }
}

/// Generates one torture program from `seed`: a 1–3-deep counted loop
/// nest seeded with scratch values, irregular forward branches and
/// strided memory traffic, ending in `Halt`. Deterministic: the same
/// seed always yields the same program.
pub fn torture_program(seed: u64) -> Program {
    let mut t = Torture {
        rng: TortureRng::new(seed),
        access: 0,
        stride: 4,
    };
    let mut b = ProgramBuilder::new();
    b.push(Inst::Li {
        rd: BASE,
        imm: DATA_BASE as i64,
    });
    for i in 0..4u8 {
        b.push(Inst::Li {
            rd: Gpr(2 + i),
            imm: t.rng.below(256) as i64 - 128,
        });
    }
    for i in 0..3u8 {
        b.push(Inst::Fli {
            fd: Fpr(i),
            imm: t.rng.below(256) as f32 / 8.0 - 16.0,
        });
    }
    let depth = t.rng.below(3) as u8; // nest depth 1..=3
    t.emit_loop(&mut b, depth);
    b.push(Inst::Halt);
    b.build()
        .expect("torture programs are structurally valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AtomicCpu, Memory, RunLimits, TargetIsa};
    use simtune_cache::{CacheHierarchy, HierarchyConfig};

    #[test]
    fn same_seed_same_program() {
        for seed in [0, 1, 42, u64::MAX] {
            assert_eq!(torture_program(seed), torture_program(seed));
        }
        assert_ne!(torture_program(1), torture_program(2));
    }

    #[test]
    fn torture_programs_decode_for_every_paper_target() {
        for seed in 0..32 {
            let prog = torture_program(seed);
            for target in TargetIsa::paper_targets() {
                crate::DecodedProgram::decode(&prog, &target)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn torture_programs_terminate_quickly() {
        // Counter-driven loops with bounds <= 3 and depth <= 3: even the
        // largest nests retire well under the test budget.
        let target = TargetIsa::riscv_u74();
        for seed in 0..32 {
            let prog = torture_program(seed);
            let mut cpu = AtomicCpu::new(&target);
            let mut mem = Memory::new();
            let mut hier = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
            let stats = cpu
                .run(&prog, &mut mem, &mut hier, RunLimits { max_insts: 100_000 })
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(stats.inst_mix.total() > 0);
        }
    }

    #[test]
    fn torture_accesses_stay_inside_the_window() {
        for seed in 0..64 {
            for inst in torture_program(seed).insts() {
                let imm = match *inst {
                    Inst::Ld { imm, .. }
                    | Inst::Sd { imm, .. }
                    | Inst::Flw { imm, .. }
                    | Inst::Fsw { imm, .. }
                    | Inst::Vload { imm, .. }
                    | Inst::Vstore { imm, .. } => imm,
                    _ => continue,
                };
                assert!(imm >= 0 && imm + 32 <= TORTURE_WINDOW as i64, "{inst:?}");
            }
        }
    }
}
