//! Config-driven torture-program generator: structured random programs
//! for differential engine and backend testing.
//!
//! The differential suites pin every [`crate::ExecEngine`] and every
//! bundled simulation backend to the reference interpreter over
//! randomized programs. Flat instruction soup is easy to generate but
//! shallow — it rarely exercises the control-flow shapes where replay
//! engines can diverge (nested back-edges, forward branches over
//! sub-blocks, strided memory sweeps that hammer the cache model,
//! mid-run faults that peel lanes out of a lockstep batch). This module
//! generates *structured* torture programs instead, with the shape
//! dialed in by a [`TortureConfig`]: counted loop nests with irregular
//! forward branches, pathological memory-access patterns, optional
//! guarded fault sites, and a tunable scalar/vector instruction mix —
//! all derived deterministically from one `(config, seed)` pair so
//! failures replay exactly.
//!
//! # Invariants
//!
//! Every generated program, for every config and every seed:
//!
//! * **terminates** — loops are counter-driven with trip counts of at
//!   most [`TortureConfig::MAX_TRIP`] and nests of at most
//!   [`TortureConfig::MAX_DEPTH`] levels, forward branches converge,
//!   and the last instruction is `Halt`; the worst-case retirement is
//!   well under 100 000 instructions;
//! * keeps **every memory access inside the window** of
//!   [`TORTURE_WINDOW`] bytes above [`DATA_BASE`], 8-byte aligned with
//!   room for the widest (8-lane) vector access, so programs are safe
//!   to batch over arbitrary data segments;
//! * is **deterministic** — the same `(config, seed)` pair always
//!   yields a byte-identical program.
//!
//! These invariants are enforced by `crates/isa/tests/torture_generator.rs`
//! over the whole scenario corpus.
//!
//! A program generated with a nonzero [`TortureConfig::fault_rate`] may
//! *fault at runtime* (a guarded `Ecall` with an unimplemented syscall
//! code) — deliberately: the differential harness must prove that every
//! engine and backend reports the *same* error for the same program and
//! data. Faulting is data-dependent (the guard compares two scratch
//! registers), so the same program can fault in one batch lane and
//! complete in another.

use crate::{Fpr, Gpr, Inst, Program, ProgramBuilder, Vr, DATA_BASE};

/// Bytes of the data window torture programs read and write.
pub const TORTURE_WINDOW: u64 = 2048;

/// The unimplemented syscall code injected fault sites raise
/// ([`crate::SimError::UnknownSyscall`] at runtime).
pub const TORTURE_FAULT_CODE: u16 = 2;

// Register conventions: r1 = data base (never overwritten), r2..r9 and
// f0..f7 / v1..v5 scratch, r10+level loop counters, r16+level bounds.
const BASE: Gpr = Gpr(1);

/// How successive memory accesses walk the torture window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryPattern {
    /// Dense forward sweep: successive accesses step by one 8-byte
    /// slot — the friendliest possible pattern for caches/prefetchers.
    Sequential,
    /// A fixed per-loop stride drawn from a table of sub-line,
    /// line-straddling and page-ish jumps (relative to the tiny test
    /// hierarchies) — defeats simple locality assumptions.
    Strided,
    /// Every access lands on an independently drawn random slot —
    /// no spatial locality at all.
    Irregular,
    /// Most accesses hit a small per-loop hot region; occasional
    /// far jumps evict and re-fetch it — the "mostly cached with
    /// conflict spikes" shape.
    Clustered,
}

/// Shape parameters for one torture program. Construct via a preset
/// ([`TortureConfig::baseline`], [`TortureConfig::corpus`],
/// [`TortureConfig::by_name`]) or literal struct syntax; out-of-range
/// values are clamped at generation time (see the field docs), so every
/// config is safe to generate from.
#[derive(Debug, Clone, PartialEq)]
pub struct TortureConfig {
    /// Maximum loop-nest depth; the actual depth of a program is drawn
    /// uniformly from `1..=loop_depth`. Clamped to
    /// `1..=`[`TortureConfig::MAX_DEPTH`].
    pub loop_depth: u8,
    /// Maximum loop trip count; each loop's bound is drawn uniformly
    /// from `1..=max_trip`. Clamped to
    /// `1..=`[`TortureConfig::MAX_TRIP`].
    pub max_trip: u8,
    /// Instructions per loop body, drawn uniformly from
    /// `min..=max` (inclusive). Clamped to `1..=12` with `min <= max`.
    pub body_insts: (u8, u8),
    /// Percent chance (0–100) that a loop body contains an irregular
    /// forward branch over a random sub-block.
    pub branch_density: u8,
    /// How memory accesses walk the torture window.
    pub memory_pattern: MemoryPattern,
    /// Percent chance (0–100) that the program contains one guarded
    /// fault site (an `Ecall` raising
    /// [`crate::SimError::UnknownSyscall`] when two scratch registers
    /// happen to be equal at runtime).
    pub fault_rate: u8,
    /// Percent (0–100) of body instructions drawn from the
    /// float/vector pool instead of the scalar-integer pool.
    pub vector_mix: u8,
}

impl TortureConfig {
    /// Hard cap on [`TortureConfig::loop_depth`]: loop counters live in
    /// `r10+level` and bounds in `r16+level`, and the termination
    /// budget is sized for four levels.
    pub const MAX_DEPTH: u8 = 4;
    /// Hard cap on [`TortureConfig::max_trip`], keeping the worst-case
    /// retirement (trip^depth · body) comfortably under 100 000.
    pub const MAX_TRIP: u8 = 6;

    /// The all-round default: the shape the pre-config generator
    /// produced — a 1–3-deep strided nest with a coin-flip forward
    /// branch per body and a roughly even scalar/vector mix.
    pub fn baseline() -> Self {
        TortureConfig {
            loop_depth: 3,
            max_trip: 3,
            body_insts: (2, 6),
            branch_density: 50,
            memory_pattern: MemoryPattern::Strided,
            fault_rate: 0,
            vector_mix: 60,
        }
    }

    /// The named scenario corpus the fuzz harness cycles through. Each
    /// preset isolates one pathology so coverage reports can say *which
    /// class* of program a tier has been exercised against.
    pub fn corpus() -> Vec<(&'static str, TortureConfig)> {
        let b = TortureConfig::baseline;
        vec![
            ("baseline", b()),
            (
                "deep-nest",
                TortureConfig {
                    loop_depth: 4,
                    max_trip: 3,
                    body_insts: (2, 4),
                    branch_density: 30,
                    ..b()
                },
            ),
            (
                "branch-storm",
                TortureConfig {
                    loop_depth: 2,
                    body_insts: (3, 8),
                    branch_density: 100,
                    ..b()
                },
            ),
            (
                "mem-sequential",
                TortureConfig {
                    memory_pattern: MemoryPattern::Sequential,
                    ..b()
                },
            ),
            (
                "mem-irregular",
                TortureConfig {
                    memory_pattern: MemoryPattern::Irregular,
                    ..b()
                },
            ),
            (
                "mem-clustered",
                TortureConfig {
                    memory_pattern: MemoryPattern::Clustered,
                    max_trip: 5,
                    ..b()
                },
            ),
            (
                "vector-heavy",
                TortureConfig {
                    vector_mix: 95,
                    ..b()
                },
            ),
            (
                "scalar-int",
                TortureConfig {
                    vector_mix: 0,
                    ..b()
                },
            ),
            (
                "fault-prone",
                TortureConfig {
                    loop_depth: 2,
                    fault_rate: 100,
                    ..b()
                },
            ),
            (
                "tiny",
                TortureConfig {
                    loop_depth: 1,
                    max_trip: 2,
                    body_insts: (1, 3),
                    branch_density: 25,
                    ..b()
                },
            ),
        ]
    }

    /// Names of every corpus scenario, in corpus order.
    pub fn scenario_names() -> Vec<&'static str> {
        TortureConfig::corpus()
            .into_iter()
            .map(|(n, _)| n)
            .collect()
    }

    /// Resolves a corpus preset by name.
    pub fn by_name(name: &str) -> Option<TortureConfig> {
        TortureConfig::corpus()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| c)
    }

    /// The config with every field clamped into its documented range —
    /// what the generator actually runs on.
    fn normalized(&self) -> TortureConfig {
        let (lo, hi) = self.body_insts;
        let hi = hi.clamp(1, 12);
        TortureConfig {
            loop_depth: self.loop_depth.clamp(1, Self::MAX_DEPTH),
            max_trip: self.max_trip.clamp(1, Self::MAX_TRIP),
            body_insts: (lo.clamp(1, hi), hi),
            branch_density: self.branch_density.min(100),
            memory_pattern: self.memory_pattern,
            fault_rate: self.fault_rate.min(100),
            vector_mix: self.vector_mix.min(100),
        }
    }
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig::baseline()
    }
}

/// Splitmix-style generator: deterministic, dependency-free, and good
/// enough to decorrelate the program shape from the seed.
struct TortureRng(u64);

impl TortureRng {
    fn new(seed: u64) -> Self {
        TortureRng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (n must be nonzero).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// True with `percent` in 100 probability.
    fn chance(&mut self, percent: u8) -> bool {
        self.below(100) < percent as u64
    }
}

/// 8-byte slots in the window, leaving room for the widest (8-lane,
/// 32-byte) access; offsets are `slot * 8`, valid for every width.
const WINDOW_SLOTS: u64 = (TORTURE_WINDOW - 32) / 8;

/// Strides chosen to defeat simple prefetch/locality assumptions:
/// sub-line, line-straddling, and page-ish jumps relative to the tiny
/// test hierarchies.
const STRIDES: [u64; 6] = [4, 12, 28, 60, 124, 508];

/// Generator state threaded through one program emission.
struct Torture {
    rng: TortureRng,
    cfg: TortureConfig,
    /// Monotone access counter for the stride-driven patterns.
    access: u64,
    /// Current byte stride between successive accesses (stride modes).
    stride: u64,
    /// First slot of the current hot region (clustered mode).
    hot_slot: u64,
    /// One fault site per program at most; cleared once emitted.
    fault_pending: bool,
}

impl Torture {
    /// Next access offset inside the window, by the configured pattern.
    /// Always 8-byte aligned and `<= TORTURE_WINDOW - 32`.
    fn offset(&mut self) -> i64 {
        let slot = match self.cfg.memory_pattern {
            MemoryPattern::Sequential => {
                self.access = self.access.wrapping_add(1);
                self.access % WINDOW_SLOTS
            }
            MemoryPattern::Strided => {
                self.access = self.access.wrapping_add(self.stride);
                self.access % WINDOW_SLOTS
            }
            MemoryPattern::Irregular => self.rng.below(WINDOW_SLOTS),
            MemoryPattern::Clustered => {
                // 7-in-8 accesses stay inside a 32-slot (256-byte) hot
                // region; the rest jump anywhere in the window.
                if self.rng.below(8) < 7 {
                    (self.hot_slot + self.rng.below(32)) % WINDOW_SLOTS
                } else {
                    self.rng.below(WINDOW_SLOTS)
                }
            }
        };
        (slot * 8) as i64
    }

    /// Re-draws the per-loop pattern state (stride / hot region).
    fn reseed_pattern(&mut self) {
        self.stride = STRIDES[self.rng.below(STRIDES.len() as u64) as usize];
        self.hot_slot = self.rng.below(WINDOW_SLOTS);
    }

    fn scratch_g(&mut self) -> Gpr {
        Gpr(2 + self.rng.below(8) as u8)
    }

    fn scratch_f(&mut self) -> Fpr {
        Fpr(self.rng.below(8) as u8)
    }

    fn scratch_v(&mut self) -> Vr {
        Vr(1 + self.rng.below(5) as u8)
    }

    /// Emits one random body instruction from the pool selected by the
    /// configured scalar/vector mix.
    fn emit_inst(&mut self, b: &mut ProgramBuilder) {
        if self.rng.chance(self.cfg.vector_mix) {
            self.emit_fp_vec_inst(b);
        } else {
            self.emit_int_inst(b);
        }
    }

    /// Scalar-integer pool: ALU ops plus 8-byte loads/stores.
    fn emit_int_inst(&mut self, b: &mut ProgramBuilder) {
        let (rd, rs1, rs2) = (self.scratch_g(), self.scratch_g(), self.scratch_g());
        match self.rng.below(9) {
            0 => {
                b.push(Inst::Li {
                    rd,
                    imm: self.rng.below(512) as i64 - 256,
                });
            }
            1 => {
                b.push(Inst::Addi {
                    rd,
                    rs: rs1,
                    imm: self.rng.below(32) as i64 - 16,
                });
            }
            2 => {
                b.push(Inst::Add { rd, rs1, rs2 });
            }
            3 => {
                b.push(Inst::Sub { rd, rs1, rs2 });
            }
            4 => {
                b.push(Inst::Mul { rd, rs1, rs2 });
            }
            5 => {
                b.push(Inst::Slli {
                    rd,
                    rs: rs1,
                    shamt: self.rng.below(8) as u8,
                });
            }
            6 => {
                b.push(Inst::Mv { rd, rs: rs1 });
            }
            7 => {
                let imm = self.offset();
                b.push(Inst::Ld { rd, rs: BASE, imm });
            }
            _ => {
                let imm = self.offset();
                b.push(Inst::Sd {
                    rval: rs1,
                    rs: BASE,
                    imm,
                });
            }
        }
    }

    /// Float/vector pool: FP ALU (including the NaN-capable divide),
    /// FMA, and vector loads/stores/reductions.
    fn emit_fp_vec_inst(&mut self, b: &mut ProgramBuilder) {
        let (fd, fs1, fs2) = (self.scratch_f(), self.scratch_f(), self.scratch_f());
        let (vd, vs1, vs2) = (self.scratch_v(), self.scratch_v(), self.scratch_v());
        match self.rng.below(11) {
            0 => {
                b.push(Inst::Fli {
                    fd,
                    imm: self.rng.below(4096) as f32 / 32.0 - 64.0,
                });
            }
            1 => {
                let imm = self.offset();
                b.push(Inst::Flw { fd, rs: BASE, imm });
            }
            2 => {
                let imm = self.offset();
                b.push(Inst::Fsw {
                    fval: fs1,
                    rs: BASE,
                    imm,
                });
            }
            3 => {
                b.push(Inst::Fadd { fd, fs1, fs2 });
            }
            4 => {
                b.push(Inst::Fmul { fd, fs1, fs2 });
            }
            5 => {
                b.push(Inst::Fmadd {
                    fd,
                    fs1,
                    fs2,
                    fs3: self.scratch_f(),
                });
            }
            6 => {
                b.push(Inst::Fdiv { fd, fs1, fs2 });
            }
            7 => {
                let imm = self.offset();
                b.push(Inst::Vload { vd, rs: BASE, imm });
            }
            8 => {
                let imm = self.offset();
                b.push(Inst::Vstore {
                    vval: vs1,
                    rs: BASE,
                    imm,
                });
            }
            9 => {
                b.push(Inst::Vfma { vd, vs1, vs2 });
            }
            _ => {
                b.push(Inst::Vredsum { fd, vs: vs1 });
            }
        }
    }

    /// Emits the program's single guarded fault site: an `Ecall` with
    /// an unimplemented code, skipped unless two scratch registers are
    /// equal at runtime — so the same program faults on some data
    /// images and completes on others.
    fn emit_fault_site(&mut self, b: &mut ProgramBuilder) {
        let skip = b.new_label();
        let (a, c) = (self.scratch_g(), self.scratch_g());
        b.branch_ne(a, c, skip);
        b.push(Inst::Ecall {
            code: TORTURE_FAULT_CODE,
        });
        b.bind(skip);
    }

    /// Emits a counted loop at nesting `level` (0 = innermost): a body
    /// of random instructions, an optional irregular forward branch
    /// over a sub-block, an optional deeper nest, and the back-edge.
    fn emit_loop(&mut self, b: &mut ProgramBuilder, level: u8) {
        let ctr = Gpr(10 + level);
        let bound = Gpr(16 + level);
        b.push(Inst::Li { rd: ctr, imm: 0 });
        b.push(Inst::Li {
            rd: bound,
            imm: 1 + self.rng.below(self.cfg.max_trip as u64) as i64,
        });
        let top = b.bind_new_label();
        self.reseed_pattern();
        let (lo, hi) = self.cfg.body_insts;
        for _ in 0..lo as u64 + self.rng.below((hi - lo + 1) as u64) {
            self.emit_inst(b);
        }
        if self.fault_pending && level == 0 {
            self.fault_pending = false;
            self.emit_fault_site(b);
        }
        if self.rng.chance(self.cfg.branch_density) {
            // Irregular forward branch: skip a sub-block depending on
            // two scratch registers; both paths converge at `join`.
            let join = b.new_label();
            let (a, c) = (self.scratch_g(), self.scratch_g());
            match self.rng.below(3) {
                0 => b.branch_ne(a, c, join),
                1 => b.branch_lt(a, c, join),
                _ => b.branch_ge(a, c, join),
            }
            for _ in 0..1 + self.rng.below(3) {
                self.emit_inst(b);
            }
            b.bind(join);
        }
        if level > 0 {
            self.emit_loop(b, level - 1);
        }
        b.push(Inst::Addi {
            rd: ctr,
            rs: ctr,
            imm: 1,
        });
        b.branch_lt(ctr, bound, top);
    }
}

/// Generates one torture program from a `(config, seed)` pair — the
/// journaled identity every repro replays from. See the module docs
/// for the invariants (termination, window containment, determinism)
/// that hold for every config and seed.
pub fn torture_program_with(config: &TortureConfig, seed: u64) -> Program {
    let cfg = config.normalized();
    let mut t = Torture {
        rng: TortureRng::new(seed),
        access: 0,
        stride: 4,
        hot_slot: 0,
        fault_pending: false,
        cfg,
    };
    let mut b = ProgramBuilder::new();
    b.push(Inst::Li {
        rd: BASE,
        imm: DATA_BASE as i64,
    });
    for i in 0..4u8 {
        b.push(Inst::Li {
            rd: Gpr(2 + i),
            imm: t.rng.below(256) as i64 - 128,
        });
    }
    for i in 0..3u8 {
        b.push(Inst::Fli {
            fd: Fpr(i),
            imm: t.rng.below(256) as f32 / 8.0 - 16.0,
        });
    }
    let depth = t.rng.below(t.cfg.loop_depth as u64) as u8; // nest depth 1..=loop_depth
    t.fault_pending = t.rng.chance(t.cfg.fault_rate);
    t.emit_loop(&mut b, depth);
    b.push(Inst::Halt);
    b.build()
        .expect("torture programs are structurally valid by construction")
}

/// Generates one torture program from `seed` under the
/// [`TortureConfig::baseline`] preset — the one-argument convenience
/// the engine-equivalence proptests use.
pub fn torture_program(seed: u64) -> Program {
    torture_program_with(&TortureConfig::baseline(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AtomicCpu, Memory, RunLimits, SimError, TargetIsa};
    use simtune_cache::{CacheHierarchy, HierarchyConfig};

    #[test]
    fn same_seed_same_program() {
        for seed in [0, 1, 42, u64::MAX] {
            assert_eq!(torture_program(seed), torture_program(seed));
        }
        assert_ne!(torture_program(1), torture_program(2));
    }

    #[test]
    fn corpus_presets_resolve_by_name_and_differ() {
        for (name, cfg) in TortureConfig::corpus() {
            assert_eq!(TortureConfig::by_name(name), Some(cfg));
        }
        assert_eq!(TortureConfig::by_name("no-such-scenario"), None);
        let names = TortureConfig::scenario_names();
        assert!(names.len() >= 8, "corpus should stay broad: {names:?}");
        // Distinct scenarios generate distinct programs for one seed.
        assert_ne!(
            torture_program_with(&TortureConfig::by_name("deep-nest").unwrap(), 3),
            torture_program_with(&TortureConfig::by_name("scalar-int").unwrap(), 3),
        );
    }

    #[test]
    fn out_of_range_configs_are_clamped_not_rejected() {
        let wild = TortureConfig {
            loop_depth: 200,
            max_trip: 99,
            body_insts: (7, 200),
            branch_density: 255,
            fault_rate: 255,
            vector_mix: 255,
            memory_pattern: MemoryPattern::Irregular,
        };
        // Must generate (and terminate) without panicking.
        let prog = torture_program_with(&wild, 9);
        let target = TargetIsa::riscv_u74();
        let mut cpu = AtomicCpu::new(&target);
        let mut mem = Memory::new();
        let mut hier = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
        let run = cpu.run(&prog, &mut mem, &mut hier, RunLimits { max_insts: 100_000 });
        match run {
            Ok(stats) => assert!(stats.inst_mix.total() > 0),
            // fault_rate 255 clamps to 100: a guarded fault may fire.
            Err(SimError::UnknownSyscall { code }) => assert_eq!(code, TORTURE_FAULT_CODE),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn torture_programs_decode_for_every_paper_target() {
        for (name, cfg) in TortureConfig::corpus() {
            for seed in 0..8 {
                let prog = torture_program_with(&cfg, seed);
                for target in TargetIsa::paper_targets() {
                    crate::DecodedProgram::decode(&prog, &target)
                        .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
                }
            }
        }
    }

    #[test]
    fn fault_prone_scenario_faults_on_some_seeds_only() {
        let cfg = TortureConfig::by_name("fault-prone").unwrap();
        let target = TargetIsa::riscv_u74();
        let (mut faulted, mut completed) = (0, 0);
        for seed in 0..64 {
            let prog = torture_program_with(&cfg, seed);
            let mut cpu = AtomicCpu::new(&target);
            let mut mem = Memory::new();
            let mut hier = CacheHierarchy::new(HierarchyConfig::tiny_for_tests());
            match cpu.run(&prog, &mut mem, &mut hier, RunLimits { max_insts: 100_000 }) {
                Ok(_) => completed += 1,
                Err(SimError::UnknownSyscall { code }) => {
                    assert_eq!(code, TORTURE_FAULT_CODE);
                    faulted += 1;
                }
                Err(e) => panic!("seed {seed}: unexpected error {e}"),
            }
        }
        assert!(faulted > 0, "guard must fire for some seeds");
        assert!(completed > 0, "guard must hold for some seeds");
    }
}
