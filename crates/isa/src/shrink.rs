//! Delta-debugging shrinker for failing torture programs.
//!
//! A fuzz divergence on a 300-instruction loop nest is unactionable;
//! the same divergence on 8 instructions usually names the bug. This
//! module reduces a failing [`Program`] to a (locally) minimal
//! instruction sequence with classic ddmin: repeatedly try to delete
//! chunks of instructions, keep any deletion under which the caller's
//! predicate still reports a failure, and halve the chunk size until
//! no single-instruction deletion survives.
//!
//! Deleting instructions from a program with resolved branch indices
//! would normally tear the control-flow graph, so every candidate is
//! rebuilt with retargeted branches: a branch to index `t` is redirected
//! to the first *kept* instruction at or after `t`. Candidates that
//! still end up structurally invalid (branch past the end, terminator
//! deleted, empty) are rejected through [`Program::from_insts`]
//! validation rather than patched up — the predicate never sees an
//! ill-formed program.
//!
//! The shrinker is fully deterministic: same program + same predicate
//! behavior ⇒ same minimal repro. It never returns a program for which
//! the predicate reported success; if the input itself does not satisfy
//! the predicate it is returned unchanged.

use crate::{Inst, Program};

/// Rebuilds a candidate program from the instructions whose indices are
/// flagged `true` in `keep`, retargeting branches to the first kept
/// instruction at or after their original target. Returns `None` when
/// the candidate is structurally invalid (empty, no terminator, or a
/// branch that escapes past the end after retargeting).
fn rebuild(insts: &[Inst], keep: &[bool]) -> Option<Program> {
    // new_index[i] = how many kept instructions precede i == the index
    // that old target i maps to (the first kept instruction at or after
    // i, or the new length when none remains — caught by validation).
    let mut new_index = vec![0usize; insts.len() + 1];
    let mut kept = 0usize;
    for i in 0..insts.len() {
        new_index[i] = kept;
        if keep[i] {
            kept += 1;
        }
    }
    new_index[insts.len()] = kept;
    let retarget = |t: usize| new_index[t.min(insts.len())];
    let candidate: Vec<Inst> = insts
        .iter()
        .enumerate()
        .filter(|(i, _)| keep[*i])
        .map(|(_, inst)| match *inst {
            Inst::Blt { rs1, rs2, target } => Inst::Blt {
                rs1,
                rs2,
                target: retarget(target),
            },
            Inst::Bge { rs1, rs2, target } => Inst::Bge {
                rs1,
                rs2,
                target: retarget(target),
            },
            Inst::Bne { rs1, rs2, target } => Inst::Bne {
                rs1,
                rs2,
                target: retarget(target),
            },
            Inst::Jmp { target } => Inst::Jmp {
                target: retarget(target),
            },
            other => other,
        })
        .collect();
    Program::from_insts(candidate).ok()
}

/// Reduces `program` to a locally minimal program on which
/// `still_failing` still returns `true`, by delta-debugging chunk
/// deletion (see the module docs). The predicate receives only
/// structurally valid programs. If `still_failing(program)` is `false`
/// the input is returned as-is — the shrinker refuses to "shrink" a
/// non-failure.
pub fn shrink_program<F>(program: &Program, mut still_failing: F) -> Program
where
    F: FnMut(&Program) -> bool,
{
    if !still_failing(program) {
        return program.clone();
    }
    let mut insts: Vec<Inst> = program.insts().to_vec();
    let mut chunk = insts.len().div_ceil(2).max(1);
    loop {
        let mut shrank = false;
        let mut start = 0;
        while start < insts.len() && insts.len() > 1 {
            let end = (start + chunk).min(insts.len());
            let keep: Vec<bool> = (0..insts.len()).map(|i| i < start || i >= end).collect();
            let reduced = rebuild(&insts, &keep).filter(|p| still_failing(p));
            if let Some(p) = reduced {
                insts = p.insts().to_vec();
                shrank = true;
                // Deleted [start, end): the next untried chunk begins
                // at `start` again in the shorter program.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !shrank {
                break;
            }
            // A pass at granularity 1 removed something; run one more
            // pass in case that unlocked further single deletions.
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    Program::from_insts(insts).expect("kept candidates are validated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{torture_program, Gpr, Inst, ProgramBuilder};

    fn has_mul(p: &Program) -> bool {
        p.insts().iter().any(|i| matches!(i, Inst::Mul { .. }))
    }

    #[test]
    fn shrinks_to_minimal_witness() {
        let mut b = ProgramBuilder::new();
        for i in 0..20 {
            b.push(Inst::Li {
                rd: Gpr(2 + (i % 6)),
                imm: i as i64,
            });
        }
        b.push(Inst::Mul {
            rd: Gpr(2),
            rs1: Gpr(3),
            rs2: Gpr(4),
        });
        for i in 0..20 {
            b.push(Inst::Addi {
                rd: Gpr(2 + (i % 6)),
                rs: Gpr(2),
                imm: 1,
            });
        }
        b.push(Inst::Halt);
        let prog = b.build().unwrap();
        let small = shrink_program(&prog, has_mul);
        // Minimal failing program: the Mul plus the mandatory terminator.
        assert_eq!(small.len(), 2);
        assert!(has_mul(&small));
    }

    #[test]
    fn shrinking_a_torture_program_keeps_it_valid() {
        // Predicate keyed on a structural property so shrinking has to
        // fight the branch retargeting: "contains a backward branch".
        let backward = |p: &Program| {
            p.insts().iter().enumerate().any(|(i, inst)| match inst {
                Inst::Blt { target, .. }
                | Inst::Bge { target, .. }
                | Inst::Bne { target, .. }
                | Inst::Jmp { target } => *target <= i,
                _ => false,
            })
        };
        for seed in 0..16 {
            let prog = torture_program(seed);
            let small = shrink_program(&prog, backward);
            assert!(backward(&small), "seed {seed}");
            assert!(small.len() <= prog.len(), "seed {seed}");
            // Every kept candidate went through from_insts validation.
            assert!(Program::from_insts(small.insts().to_vec()).is_ok());
        }
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let prog = torture_program(7);
        let same = shrink_program(&prog, |_| false);
        assert_eq!(same, prog);
    }

    #[test]
    fn predicate_never_sees_invalid_programs() {
        let prog = torture_program(11);
        let mut checked = 0u32;
        let small = shrink_program(&prog, |p| {
            checked += 1;
            assert!(Program::from_insts(p.insts().to_vec()).is_ok());
            !p.is_empty()
        });
        // Any 1-instruction terminator-only program still "fails" here.
        assert_eq!(small.len(), 1);
        assert!(checked > 1);
    }
}
