/// Architectural parameters of a simulation target.
///
/// One `TargetIsa` instance describes the ISA-visible resources the code
/// generator may use and the encoding size used for instruction-fetch
/// addresses. The three presets correspond to the paper's evaluation
/// platforms (Section IV); the numbers are ISA properties (register
/// counts, SIMD width), not microarchitectural ones — timing lives in
/// `simtune-hw`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TargetIsa {
    /// Short label: `"x86"`, `"arm"` or `"riscv"`.
    pub name: &'static str,
    /// f32 lanes per vector register (1 = scalar-only target).
    pub vector_lanes: usize,
    /// General-purpose registers available to generated code.
    pub gpr_count: usize,
    /// Scalar floating-point registers available to generated code.
    pub fpr_count: usize,
    /// Vector registers available to generated code.
    pub vreg_count: usize,
    /// Whether fused multiply-add is available (all presets: yes).
    pub has_fma: bool,
    /// Bytes per instruction used to lay out code for I-cache simulation.
    /// x86 encodings are variable-length; 4 B is the common average.
    pub inst_bytes: u64,
}

impl TargetIsa {
    /// AMD Ryzen 7 5800X-like x86-64 target: AVX2 (8 x f32), 16 GPRs,
    /// 16 vector registers. The small GPR file is what makes deep loop
    /// nests spill on this target.
    pub fn x86_ryzen_5800x() -> Self {
        TargetIsa {
            name: "x86",
            vector_lanes: 8,
            gpr_count: 16,
            fpr_count: 16,
            vreg_count: 16,
            has_fma: true,
            inst_bytes: 4,
        }
    }

    /// ARM Cortex-A72-like AArch64 target: NEON (4 x f32), 31 GPRs,
    /// 32 SIMD registers.
    pub fn arm_cortex_a72() -> Self {
        TargetIsa {
            name: "arm",
            vector_lanes: 4,
            gpr_count: 31,
            fpr_count: 32,
            vreg_count: 32,
            has_fma: true,
            inst_bytes: 4,
        }
    }

    /// SiFive U74-like RV64GC target: no vector extension (lane count 1),
    /// 32 GPRs, 32 FPRs.
    pub fn riscv_u74() -> Self {
        TargetIsa {
            name: "riscv",
            vector_lanes: 1,
            gpr_count: 32,
            fpr_count: 32,
            vreg_count: 0,
            has_fma: true,
            inst_bytes: 4,
        }
    }

    /// The three paper targets in table order (x86, ARM, RISC-V).
    pub fn paper_targets() -> Vec<TargetIsa> {
        vec![
            Self::x86_ryzen_5800x(),
            Self::arm_cortex_a72(),
            Self::riscv_u74(),
        ]
    }

    /// Looks a preset up by its short label.
    ///
    /// # Example
    ///
    /// ```
    /// use simtune_isa::TargetIsa;
    /// assert_eq!(TargetIsa::by_name("arm").unwrap().vector_lanes, 4);
    /// assert!(TargetIsa::by_name("sparc").is_none());
    /// ```
    pub fn by_name(name: &str) -> Option<TargetIsa> {
        match name {
            "x86" => Some(Self::x86_ryzen_5800x()),
            "arm" => Some(Self::arm_cortex_a72()),
            "riscv" => Some(Self::riscv_u74()),
            _ => None,
        }
    }

    /// True when the target supports vector instructions at all.
    pub fn has_vectors(&self) -> bool {
        self.vector_lanes > 1 && self.vreg_count > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_platforms() {
        let x86 = TargetIsa::x86_ryzen_5800x();
        assert_eq!(x86.vector_lanes, 8);
        assert_eq!(x86.gpr_count, 16);
        assert!(x86.has_vectors());

        let arm = TargetIsa::arm_cortex_a72();
        assert_eq!(arm.vector_lanes, 4);
        assert_eq!(arm.gpr_count, 31);

        let riscv = TargetIsa::riscv_u74();
        assert!(!riscv.has_vectors(), "U74 has no V extension");
        assert_eq!(riscv.gpr_count, 32);
    }

    #[test]
    fn by_name_roundtrip() {
        for t in TargetIsa::paper_targets() {
            assert_eq!(TargetIsa::by_name(t.name), Some(t.clone()));
        }
        assert!(TargetIsa::by_name("").is_none());
    }
}
