use std::error::Error;
use std::fmt;

/// Errors raised while assembling a [`crate::Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildProgramError {
    /// A label was referenced by a branch but never bound.
    UnboundLabel {
        /// Internal label id.
        label: u32,
        /// Index of the referencing instruction.
        at: usize,
    },
    /// A label was bound twice.
    DuplicateLabel {
        /// Internal label id.
        label: u32,
    },
    /// A register index exceeds the hard register-file bounds.
    RegisterOutOfRange {
        /// Which file: "gpr", "fpr" or "vr".
        file: &'static str,
        /// The offending index.
        index: u8,
        /// Index of the instruction using it.
        at: usize,
    },
    /// The program has no terminator ([`crate::Inst::Halt`] or `Ecall 0`).
    MissingTerminator,
    /// The program is empty.
    Empty,
    /// A pre-resolved branch target points outside the program
    /// (only reachable through [`crate::Program::from_insts`], whose
    /// instructions carry raw indices instead of labels).
    BranchTargetOutOfRange {
        /// Index of the branch instruction.
        at: usize,
        /// The out-of-range target index.
        target: usize,
    },
}

impl fmt::Display for BuildProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildProgramError::UnboundLabel { label, at } => {
                write!(
                    f,
                    "label {label} referenced at instruction {at} was never bound"
                )
            }
            BuildProgramError::DuplicateLabel { label } => {
                write!(f, "label {label} bound more than once")
            }
            BuildProgramError::RegisterOutOfRange { file, index, at } => {
                write!(
                    f,
                    "{file} register {index} out of range at instruction {at}"
                )
            }
            BuildProgramError::MissingTerminator => {
                write!(f, "program has no halt or exit ecall")
            }
            BuildProgramError::Empty => write!(f, "program is empty"),
            BuildProgramError::BranchTargetOutOfRange { at, target } => {
                write!(
                    f,
                    "branch at instruction {at} targets index {target}, outside the program"
                )
            }
        }
    }
}

impl Error for BuildProgramError {}

/// Errors raised during simulation.
///
/// Marked `#[non_exhaustive]`: simulator backends keep growing the
/// failure surface (sampling, remote execution), so downstream matches
/// must carry a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The program counter left the code segment without a terminator.
    PcOutOfRange {
        /// The runaway program counter.
        pc: usize,
    },
    /// The instruction budget was exhausted (runaway loop guard).
    InstLimitExceeded {
        /// The configured budget.
        limit: u64,
    },
    /// A data access fell outside the simulatable address space.
    MemoryFault {
        /// The faulting byte address.
        addr: u64,
    },
    /// An `Ecall` code the syscall-emulation layer does not implement.
    UnknownSyscall {
        /// The unrecognized code.
        code: u16,
    },
    /// Decode-time validation rejected the program: a branch points
    /// outside the code segment, or control can fall off the end of the
    /// program. Raised once by [`crate::DecodedProgram::decode`] instead
    /// of surfacing as a mid-run [`SimError::PcOutOfRange`].
    InvalidPc {
        /// Index of the offending instruction (the branch, or the last
        /// instruction when it can fall through past the end).
        at: usize,
        /// Where control would go (an out-of-range target or `len`).
        target: usize,
        /// Program length the target was validated against.
        len: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
            SimError::InstLimitExceeded { limit } => {
                write!(f, "instruction limit of {limit} exceeded")
            }
            SimError::MemoryFault { addr } => write!(f, "memory fault at address {addr:#x}"),
            SimError::UnknownSyscall { code } => write!(f, "unknown syscall code {code}"),
            SimError::InvalidPc { at, target, len } => write!(
                f,
                "instruction {at} leads to pc {target}, outside the {len}-instruction program"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(SimError::MemoryFault { addr: 0x40 }
            .to_string()
            .contains("0x40"));
        assert!(BuildProgramError::MissingTerminator
            .to_string()
            .contains("halt"));
    }
}
