//! Shared conformance suite for every predictor family.
//!
//! The online `Predictor` layer in `simtune-core` treats all four model
//! families interchangeably through [`PredictorKind::build_uncertain`],
//! so this suite pins the behaviour that layer relies on: every model
//! (a) learns a known linear set well enough to rank it, (b) copes with
//! a quadratic set at least as well as predicting the mean, (c) is
//! bit-identical under a fixed seed, and (d) reports finite,
//! non-negative uncertainties aligned with its predictions.

use simtune_linalg::Matrix;
use simtune_predict::{PredictError, PredictorKind};

/// y = 3 x0 - 2 x1 + 0.5 over a deterministic grid.
fn linear_set() -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(48, 2, |i, j| ((i * (7 + j) + j * 3) % 13) as f64 / 6.5);
    let y = (0..48)
        .map(|i| 3.0 * x[(i, 0)] - 2.0 * x[(i, 1)] + 0.5)
        .collect();
    (x, y)
}

/// y = x0² - x1, the curvature that separates LinReg from the rest.
fn quadratic_set() -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(48, 2, |i, j| ((i * (5 + 2 * j)) % 17) as f64 / 8.5 - 1.0);
    let y = (0..48).map(|i| x[(i, 0)] * x[(i, 0)] - x[(i, 1)]).collect();
    (x, y)
}

fn mse(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
}

fn variance(y: &[f64]) -> f64 {
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / y.len() as f64
}

#[test]
fn every_model_learns_the_linear_set() {
    let (x, y) = linear_set();
    for kind in PredictorKind::all() {
        let mut model = kind.build(11);
        model.fit(&x, &y).unwrap();
        let pred = model.predict(&x).unwrap();
        let err = mse(&y, &pred);
        let var = variance(&y);
        assert!(
            err < var * 0.2,
            "{}: training mse {err:.4} vs variance {var:.4}",
            kind.label()
        );
    }
}

#[test]
fn every_model_beats_the_mean_on_the_quadratic_set() {
    let (x, y) = quadratic_set();
    for kind in PredictorKind::all() {
        let mut model = kind.build(11);
        model.fit(&x, &y).unwrap();
        let pred = model.predict(&x).unwrap();
        let err = mse(&y, &pred);
        // Predicting the mean scores exactly the variance; every family
        // (even LinReg, thanks to the -x1 term) must do better.
        let var = variance(&y);
        assert!(
            err < var,
            "{}: quadratic mse {err:.4} vs variance {var:.4}",
            kind.label()
        );
    }
}

#[test]
fn every_model_is_deterministic_under_a_fixed_seed() {
    let (x, y) = linear_set();
    for kind in PredictorKind::all() {
        let run = |seed: u64| {
            let mut model = kind.build(seed);
            model.fit(&x, &y).unwrap();
            model.predict(&x).unwrap()
        };
        assert_eq!(run(42), run(42), "{} not deterministic", kind.label());
    }
}

#[test]
fn every_model_reports_aligned_finite_uncertainty() {
    let (x, y) = linear_set();
    for kind in PredictorKind::all() {
        let mut model = kind.build_uncertain(11);
        model.fit(&x, &y).unwrap();
        let (means, stds) = model.predict_with_uncertainty(&x).unwrap();
        assert_eq!(means.len(), x.rows(), "{}", kind.label());
        assert_eq!(stds.len(), x.rows(), "{}", kind.label());
        assert!(
            stds.iter().all(|s| s.is_finite() && *s >= 0.0),
            "{}: bad stds",
            kind.label()
        );
        // The uncertain path must agree with the plain one on the mean.
        let mut plain = kind.build(11);
        plain.fit(&x, &y).unwrap();
        assert_eq!(means, plain.predict(&x).unwrap(), "{}", kind.label());
    }
}

#[test]
fn every_model_rejects_queries_before_fit_and_after_mismatch() {
    let (x, y) = linear_set();
    for kind in PredictorKind::all() {
        let model = kind.build_uncertain(0);
        assert!(
            matches!(model.predict(&x), Err(PredictError::NotFitted)),
            "{}",
            kind.label()
        );
        assert!(
            matches!(
                model.predict_with_uncertainty(&x),
                Err(PredictError::NotFitted)
            ),
            "{}",
            kind.label()
        );
        let mut fitted = kind.build_uncertain(0);
        fitted.fit(&x, &y).unwrap();
        assert!(
            matches!(
                fitted.predict_with_uncertainty(&Matrix::zeros(1, 5)),
                Err(PredictError::DimensionMismatch { .. })
            ),
            "{}",
            kind.label()
        );
    }
}

#[test]
fn gp_uncertainty_grows_away_from_training_data() {
    // The escalation policy leans on this qualitative property: queries
    // far from everything observed must look *less* certain.
    let x = Matrix::from_fn(20, 1, |i, _| i as f64 / 4.0);
    let y: Vec<f64> = (0..20).map(|i| (i as f64 / 4.0).sin()).collect();
    let mut gp = PredictorKind::Bayes.build_uncertain(5);
    gp.fit(&x, &y).unwrap();
    let near = Matrix::from_vec(1, 1, vec![2.0]).unwrap();
    let far = Matrix::from_vec(1, 1, vec![500.0]).unwrap();
    let (_, s_near) = gp.predict_with_uncertainty(&near).unwrap();
    let (_, s_far) = gp.predict_with_uncertainty(&far).unwrap();
    assert!(
        s_far[0] > s_near[0],
        "far {:.4} must exceed near {:.4}",
        s_far[0],
        s_near[0]
    );
}
