use crate::model::{check_features, check_fit_input};
use crate::{PredictError, Regressor, UncertainRegressor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtune_linalg::Matrix;

/// XGBoost-style gradient-boosted-trees configuration.
///
/// The defaults are the paper's grid-searched values (Section IV-C):
/// column subsample 0.6, learning rate 0.05, max depth 3, α = 0,
/// λ = 0.1, 300 trees, min child weight 1, row subsample 0.8, MSE loss.
#[derive(Debug, Clone, PartialEq)]
pub struct GbtConfig {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// L1 regularization on leaf weights (XGBoost `alpha`).
    pub alpha: f64,
    /// L2 regularization on leaf weights (XGBoost `lambda`).
    pub lambda: f64,
    /// Minimum sum of hessians per child (XGBoost `min_child_weight`).
    pub min_child_weight: f64,
    /// Row subsample ratio per tree.
    pub subsample: f64,
    /// Column subsample ratio per tree.
    pub colsample: f64,
    /// RNG seed for the subsampling.
    pub seed: u64,
}

impl Default for GbtConfig {
    fn default() -> Self {
        GbtConfig {
            n_trees: 300,
            learning_rate: 0.05,
            max_depth: 3,
            alpha: 0.0,
            lambda: 0.1,
            min_child_weight: 1.0,
            subsample: 0.8,
            colsample: 0.6,
            seed: 0,
        }
    }
}

/// A node of a regression tree, stored in a flat arena.
#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    Leaf {
        weight: f64,
    },
}

#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, row: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Gradient-boosted regression trees with XGBoost's second-order
/// regularized objective.
///
/// For squared loss the gradient is `pred − y` and the hessian is 1; a
/// split's gain is
/// `½ [G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)]` with L1 soft-thresholding
/// of the gradient sums by `α`, and leaves weigh `−G/(H+λ)`.
///
/// # Example
///
/// ```
/// use simtune_linalg::Matrix;
/// use simtune_predict::{GbtRegressor, Regressor};
///
/// # fn main() -> Result<(), simtune_predict::PredictError> {
/// // A step function: trees nail this, lines cannot.
/// let x = Matrix::from_fn(64, 1, |i, _| i as f64);
/// let y: Vec<f64> = (0..64).map(|i| if i < 32 { 0.0 } else { 1.0 }).collect();
/// let mut m = GbtRegressor::paper_config(1);
/// m.fit(&x, &y)?;
/// let p = m.predict(&x)?;
/// assert!(p[0] < 0.2 && p[63] > 0.8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GbtRegressor {
    config: GbtConfig,
    trees: Vec<Tree>,
    base_score: f64,
    n_features: usize,
}

impl GbtRegressor {
    /// The paper's tuned configuration with a seed.
    pub fn paper_config(seed: u64) -> Self {
        Self::new(GbtConfig {
            seed,
            ..GbtConfig::default()
        })
    }

    /// Builds from an explicit configuration.
    pub fn new(config: GbtConfig) -> Self {
        GbtRegressor {
            config,
            trees: Vec::new(),
            base_score: 0.0,
            n_features: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GbtConfig {
        &self.config
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    fn leaf_weight(&self, g: f64, h: f64) -> f64 {
        let g = soft_threshold(g, self.config.alpha);
        -g / (h + self.config.lambda)
    }

    fn split_score(&self, g: f64, h: f64) -> f64 {
        let g = soft_threshold(g, self.config.alpha);
        g * g / (h + self.config.lambda)
    }

    /// Recursively grows one tree over `rows`, returns the root index.
    #[allow(clippy::too_many_arguments)]
    fn grow(
        &self,
        x: &Matrix,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        features: &[usize],
        depth: usize,
        nodes: &mut Vec<Node>,
    ) -> usize {
        let gsum: f64 = rows.iter().map(|&r| grad[r]).sum();
        let hsum: f64 = rows.iter().map(|&r| hess[r]).sum();

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf {
                weight: self.leaf_weight(gsum, hsum),
            });
            nodes.len() - 1
        };

        if depth >= self.config.max_depth || rows.len() < 2 {
            return make_leaf(nodes);
        }

        // Exact greedy split search over the sampled feature set.
        let parent_score = self.split_score(gsum, hsum);
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut sorted = rows.to_vec();
        for &f in features {
            sorted.sort_by(|&a, &b| x[(a, f)].partial_cmp(&x[(b, f)]).expect("finite feature"));
            let mut gl = 0.0;
            let mut hl = 0.0;
            for w in 0..sorted.len() - 1 {
                let r = sorted[w];
                gl += grad[r];
                hl += hess[r];
                let (gr, hr) = (gsum - gl, hsum - hl);
                if hl < self.config.min_child_weight || hr < self.config.min_child_weight {
                    continue;
                }
                let (xa, xb) = (x[(sorted[w], f)], x[(sorted[w + 1], f)]);
                if xa == xb {
                    continue; // cannot split between equal values
                }
                let gain =
                    0.5 * (self.split_score(gl, hl) + self.split_score(gr, hr) - parent_score);
                if gain > 1e-12 && best.map(|(bg, _, _)| gain > bg).unwrap_or(true) {
                    best = Some((gain, f, 0.5 * (xa + xb)));
                }
            }
        }

        let Some((_, feature, threshold)) = best else {
            return make_leaf(nodes);
        };
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
            rows.iter().partition(|&&r| x[(r, feature)] < threshold);
        let slot = nodes.len();
        nodes.push(Node::Leaf { weight: 0.0 }); // placeholder
        let left = self.grow(x, grad, hess, &left_rows, features, depth + 1, nodes);
        let right = self.grow(x, grad, hess, &right_rows, features, depth + 1, nodes);
        nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }
}

fn soft_threshold(g: f64, alpha: f64) -> f64 {
    if g > alpha {
        g - alpha
    } else if g < -alpha {
        g + alpha
    } else {
        0.0
    }
}

impl Regressor for GbtRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), PredictError> {
        check_fit_input(x, y)?;
        let (n, d) = x.shape();
        self.n_features = d;
        self.base_score = y.iter().sum::<f64>() / n as f64;
        self.trees.clear();

        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(0x9B7));
        let mut pred = vec![self.base_score; n];

        for _ in 0..self.config.n_trees {
            // Squared-loss gradients/hessians.
            let grad: Vec<f64> = pred.iter().zip(y).map(|(p, t)| p - t).collect();
            let hess = vec![1.0; n];

            // Row subsample.
            let rows: Vec<usize> = (0..n)
                .filter(|_| rng.gen_bool(self.config.subsample.clamp(0.01, 1.0)))
                .collect();
            let rows = if rows.len() < 2 {
                (0..n).collect()
            } else {
                rows
            };
            // Column subsample.
            let k = ((d as f64 * self.config.colsample).ceil() as usize).clamp(1, d);
            let mut feats: Vec<usize> = (0..d).collect();
            for i in (1..d).rev() {
                feats.swap(i, rng.gen_range(0..=i));
            }
            feats.truncate(k);

            let mut nodes = Vec::new();
            let root = self.grow(x, &grad, &hess, &rows, &feats, 0, &mut nodes);
            debug_assert_eq!(root, 0);
            let tree = Tree { nodes };
            for (i, p) in pred.iter_mut().enumerate() {
                *p += self.config.learning_rate * tree.predict(x.row(i));
            }
            self.trees.push(tree);
        }
        if pred.iter().any(|p| !p.is_finite()) {
            return Err(PredictError::Diverged);
        }
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>, PredictError> {
        if self.trees.is_empty() {
            return Err(PredictError::NotFitted);
        }
        check_features(self.n_features, x)?;
        Ok((0..x.rows())
            .map(|i| {
                let row = x.row(i);
                self.base_score
                    + self.config.learning_rate
                        * self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "xgboost"
    }
}

impl UncertainRegressor for GbtRegressor {
    /// Sub-ensemble spread: the trees are split round-robin into up to
    /// four folds, each fold's rescaled prediction is an independent
    /// estimate, and the reported uncertainty is the standard deviation
    /// across folds. The mean stays the full ensemble's prediction.
    fn predict_with_uncertainty(&self, x: &Matrix) -> Result<(Vec<f64>, Vec<f64>), PredictError> {
        if self.trees.is_empty() {
            return Err(PredictError::NotFitted);
        }
        check_features(self.n_features, x)?;
        let n_trees = self.trees.len();
        let folds = 4.min(n_trees);
        let means = self.predict(x)?;
        let stds = (0..x.rows())
            .map(|i| {
                let row = x.row(i);
                let mut fold_sums = vec![0.0f64; folds];
                let mut fold_counts = vec![0usize; folds];
                for (t, tree) in self.trees.iter().enumerate() {
                    fold_sums[t % folds] += tree.predict(row);
                    fold_counts[t % folds] += 1;
                }
                // Each fold rescaled as if it were the full ensemble.
                let estimates: Vec<f64> = fold_sums
                    .iter()
                    .zip(&fold_counts)
                    .map(|(s, &c)| {
                        self.base_score
                            + self.config.learning_rate * s * n_trees as f64 / c.max(1) as f64
                    })
                    .collect();
                let mean = estimates.iter().sum::<f64>() / folds as f64;
                let var = estimates
                    .iter()
                    .map(|e| (e - mean) * (e - mean))
                    .sum::<f64>()
                    / folds as f64;
                var.sqrt()
            })
            .collect();
        Ok((means, stds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Loss;

    fn quick(seed: u64) -> GbtConfig {
        GbtConfig {
            n_trees: 80,
            learning_rate: 0.1,
            subsample: 1.0,
            colsample: 1.0,
            seed,
            ..GbtConfig::default()
        }
    }

    #[test]
    fn fits_piecewise_function() {
        let x = Matrix::from_fn(100, 1, |i, _| i as f64 / 10.0);
        let y: Vec<f64> = (0..100)
            .map(|i| {
                if i < 30 {
                    1.0
                } else if i < 70 {
                    -1.0
                } else {
                    0.5
                }
            })
            .collect();
        let mut m = GbtRegressor::new(quick(1));
        m.fit(&x, &y).unwrap();
        let p = m.predict(&x).unwrap();
        assert!(Loss::Mse.compute(&y, &p) < 0.05);
    }

    #[test]
    fn fits_interaction_term() {
        // y = x0 * x1: requires depth >= 2 interactions.
        let x = Matrix::from_fn(200, 2, |i, j| (((i * (j + 13)) % 29) as f64 / 14.5) - 1.0);
        let y: Vec<f64> = (0..200).map(|i| x[(i, 0)] * x[(i, 1)]).collect();
        let mut m = GbtRegressor::new(quick(2));
        m.fit(&x, &y).unwrap();
        let p = m.predict(&x).unwrap();
        let var = simtune_linalg::stats::variance(&y);
        assert!(Loss::Mse.compute(&y, &p) < var * 0.3);
    }

    #[test]
    fn respects_max_depth() {
        let mut cfg = quick(3);
        cfg.max_depth = 1; // stumps
        cfg.n_trees = 5;
        let x = Matrix::from_fn(50, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut m = GbtRegressor::new(cfg);
        m.fit(&x, &y).unwrap();
        for t in &m.trees {
            // A stump has at most 3 nodes.
            assert!(t.nodes.len() <= 3, "stump with {} nodes", t.nodes.len());
        }
    }

    #[test]
    fn l2_regularization_shrinks_leaves() {
        let x = Matrix::from_fn(40, 1, |i, _| (i % 2) as f64);
        let y: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit_first_leaf_mag = |lambda: f64| {
            let mut cfg = quick(4);
            cfg.lambda = lambda;
            cfg.n_trees = 1;
            let mut m = GbtRegressor::new(cfg);
            m.fit(&x, &y).unwrap();
            m.trees[0]
                .nodes
                .iter()
                .filter_map(|n| match n {
                    Node::Leaf { weight } => Some(weight.abs()),
                    _ => None,
                })
                .fold(0.0, f64::max)
        };
        assert!(fit_first_leaf_mag(10.0) < fit_first_leaf_mag(0.0));
    }

    #[test]
    fn min_child_weight_blocks_tiny_splits() {
        let mut cfg = quick(5);
        cfg.min_child_weight = 100.0; // larger than any subset
        cfg.n_trees = 3;
        let x = Matrix::from_fn(30, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let mut m = GbtRegressor::new(cfg);
        m.fit(&x, &y).unwrap();
        for t in &m.trees {
            assert_eq!(t.nodes.len(), 1, "root must stay a leaf");
        }
    }

    #[test]
    fn sub_ensemble_uncertainty_keeps_the_full_mean() {
        let x = Matrix::from_fn(60, 1, |i, _| i as f64 / 6.0);
        let y: Vec<f64> = (0..60).map(|i| (i as f64 / 6.0).sin()).collect();
        let mut m = GbtRegressor::new(quick(7));
        m.fit(&x, &y).unwrap();
        let plain = m.predict(&x).unwrap();
        let (means, stds) = m.predict_with_uncertainty(&x).unwrap();
        assert_eq!(means, plain);
        assert!(stds.iter().all(|s| s.is_finite() && *s >= 0.0));
        // With subsampling on, the folds must actually disagree somewhere.
        let mut cfg = quick(8);
        cfg.subsample = 0.5;
        let mut m2 = GbtRegressor::new(cfg);
        m2.fit(&x, &y).unwrap();
        let (_, stds2) = m2.predict_with_uncertainty(&x).unwrap();
        assert!(stds2.iter().any(|s| *s > 0.0));
    }

    #[test]
    fn soft_threshold_behaviour() {
        assert_eq!(soft_threshold(5.0, 1.0), 4.0);
        assert_eq!(soft_threshold(-5.0, 1.0), -4.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
    }

    #[test]
    fn deterministic_per_seed_and_unfitted_errors() {
        let x = Matrix::from_fn(50, 3, |i, j| ((i * (j + 7)) % 19) as f64);
        let y: Vec<f64> = (0..50).map(|i| (i % 19) as f64).collect();
        let run = |seed| {
            let mut m = GbtRegressor::new(GbtConfig {
                seed,
                n_trees: 30,
                ..GbtConfig::default()
            });
            m.fit(&x, &y).unwrap();
            m.predict(&x).unwrap()
        };
        assert_eq!(run(1), run(1));
        let m = GbtRegressor::new(quick(0));
        assert!(matches!(
            m.predict(&Matrix::zeros(1, 1)),
            Err(PredictError::NotFitted)
        ));
    }
}
