use crate::model::{check_features, check_fit_input};
use crate::{PredictError, Regressor, UncertainRegressor};
use simtune_linalg::Matrix;

/// Multiple linear regression fitted by minimizing the residual sum of
/// squares (ordinary least squares through the normal equations), the
/// paper's simplest predictor: `y = b0 + b1·x1 + … + bn·xn`.
///
/// A tiny ridge term (1e-8) keeps the normal equations solvable when
/// features are collinear — which happens in practice, since the raw and
/// group-normalized feature variants are affinely related within a group.
///
/// # Example
///
/// ```
/// use simtune_linalg::Matrix;
/// use simtune_predict::{LinearRegression, Regressor};
///
/// # fn main() -> Result<(), simtune_predict::PredictError> {
/// let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
/// let mut lr = LinearRegression::new();
/// lr.fit(&x, &[1.0, 3.0, 5.0])?; // y = 2x + 1
/// let p = lr.predict(&Matrix::from_rows(&[vec![10.0]]).unwrap())?;
/// assert!((p[0] - 21.0).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinearRegression {
    /// `[intercept, b1, …, bn]` once fitted.
    coefficients: Option<Vec<f64>>,
    ridge: f64,
    /// Training-residual standard deviation, the model's (constant)
    /// uncertainty estimate.
    residual_std: f64,
}

impl LinearRegression {
    /// OLS with the default stabilizing ridge (1e-8).
    pub fn new() -> Self {
        LinearRegression {
            coefficients: None,
            ridge: 1e-8,
            residual_std: 0.0,
        }
    }

    /// OLS with an explicit ridge coefficient (0 disables).
    pub fn with_ridge(ridge: f64) -> Self {
        LinearRegression {
            coefficients: None,
            ridge,
            residual_std: 0.0,
        }
    }

    /// Fitted coefficients `[intercept, b1, …, bn]`, if fitted.
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.coefficients.as_deref()
    }
}

fn with_bias_column(x: &Matrix) -> Matrix {
    Matrix::from_fn(x.rows(), x.cols() + 1, |i, j| {
        if j == 0 {
            1.0
        } else {
            x[(i, j - 1)]
        }
    })
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), PredictError> {
        check_fit_input(x, y)?;
        let xb = with_bias_column(x);
        // Normal equations: (XᵀX + ridge·I) b = Xᵀ y.
        let mut gram = xb.gram();
        gram.add_diagonal(self.ridge);
        let xty = xb.transpose().mat_vec(y);
        let b = gram.solve(&xty)?;
        self.coefficients = Some(b);
        // Residual spread on the training set: the constant uncertainty
        // a linear model can honestly report.
        let pred = self.predict(x)?;
        let n = y.len() as f64;
        let mse = y
            .iter()
            .zip(&pred)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / n;
        self.residual_std = mse.sqrt();
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>, PredictError> {
        let b = self.coefficients.as_ref().ok_or(PredictError::NotFitted)?;
        check_features(b.len() - 1, x)?;
        Ok((0..x.rows())
            .map(|i| {
                b[0] + x
                    .row(i)
                    .iter()
                    .zip(&b[1..])
                    .map(|(xi, bi)| xi * bi)
                    .sum::<f64>()
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "linreg"
    }
}

impl UncertainRegressor for LinearRegression {
    fn predict_with_uncertainty(&self, x: &Matrix) -> Result<(Vec<f64>, Vec<f64>), PredictError> {
        let means = self.predict(x)?;
        let stds = vec![self.residual_std; means.len()];
        Ok((means, stds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 3 x0 - 2 x1 + 0.5
        let x = Matrix::from_fn(30, 2, |i, j| ((i * 7 + j * 3) % 13) as f64);
        let y: Vec<f64> = (0..30)
            .map(|i| 3.0 * x[(i, 0)] - 2.0 * x[(i, 1)] + 0.5)
            .collect();
        let mut lr = LinearRegression::new();
        lr.fit(&x, &y).unwrap();
        let c = lr.coefficients().unwrap();
        assert!((c[0] - 0.5).abs() < 1e-6);
        assert!((c[1] - 3.0).abs() < 1e-6);
        assert!((c[2] + 2.0).abs() < 1e-6);
    }

    #[test]
    fn handles_collinear_features_via_ridge() {
        // x1 == 2 * x0: rank-deficient without the ridge.
        let x = Matrix::from_fn(20, 2, |i, j| if j == 0 { i as f64 } else { 2.0 * i as f64 });
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut lr = LinearRegression::new();
        lr.fit(&x, &y).unwrap();
        let p = lr.predict(&x).unwrap();
        for (pi, yi) in p.iter().zip(&y) {
            assert!((pi - yi).abs() < 1e-4);
        }
    }

    #[test]
    fn unfitted_prediction_fails() {
        let lr = LinearRegression::new();
        assert!(matches!(
            lr.predict(&Matrix::zeros(1, 1)),
            Err(PredictError::NotFitted)
        ));
    }

    #[test]
    fn feature_mismatch_detected() {
        let mut lr = LinearRegression::new();
        lr.fit(&Matrix::zeros(4, 2), &[0.0; 4]).unwrap();
        assert!(matches!(
            lr.predict(&Matrix::zeros(1, 3)),
            Err(PredictError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn uncertainty_tracks_training_residuals() {
        // Exact linear data → near-zero residual spread; noisy data → larger.
        let x = Matrix::from_fn(30, 1, |i, _| i as f64);
        let exact: Vec<f64> = (0..30).map(|i| 2.0 * i as f64 + 1.0).collect();
        let noisy: Vec<f64> = (0..30)
            .map(|i| 2.0 * i as f64 + if i % 2 == 0 { 3.0 } else { -3.0 })
            .collect();
        let spread = |y: &[f64]| {
            let mut lr = LinearRegression::new();
            lr.fit(&x, y).unwrap();
            lr.predict_with_uncertainty(&x).unwrap().1[0]
        };
        assert!(spread(&exact) < 1e-6);
        assert!(spread(&noisy) > 1.0);
    }

    #[test]
    fn residuals_orthogonal_to_features() {
        // OLS property: Xᵀ(y - ŷ) ≈ 0.
        let x = Matrix::from_fn(40, 3, |i, j| ((i * (j + 2) * 31) % 17) as f64 / 17.0);
        let y: Vec<f64> = (0..40)
            .map(|i| (i as f64).sin() + x[(i, 1)] * 2.0)
            .collect();
        let mut lr = LinearRegression::new();
        lr.fit(&x, &y).unwrap();
        let p = lr.predict(&x).unwrap();
        let resid: Vec<f64> = y.iter().zip(&p).map(|(a, b)| a - b).collect();
        let xt_r = x.transpose().mat_vec(&resid);
        for v in xt_r {
            assert!(v.abs() < 1e-6, "residual correlation {v}");
        }
    }
}
