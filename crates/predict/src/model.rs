use crate::{BayesGpRegressor, DnnRegressor, GbtRegressor, LinearRegression, PredictError};
use simtune_linalg::Matrix;

/// Common interface of all score predictors.
///
/// Implementations are deterministic given their construction seed, so
/// experiment runs are reproducible.
pub trait Regressor {
    /// Fits the model to `x` (one row per sample) and targets `y`.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError`] on empty or inconsistent input and when
    /// numeric optimization fails.
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), PredictError>;

    /// Predicts targets for `x`.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::NotFitted`] before `fit`, and
    /// [`PredictError::DimensionMismatch`] on feature-count mismatch.
    fn predict(&self, x: &Matrix) -> Result<Vec<f64>, PredictError>;

    /// Short predictor label ("linreg", "dnn", "bayes", "xgboost").
    fn name(&self) -> &'static str;
}

/// A [`Regressor`] that also quantifies how sure it is.
///
/// The uncertainty estimate is the model family's natural one: posterior
/// standard deviation for the Gaussian-process models, sub-ensemble
/// spread for the boosted trees, and training-residual spread for the
/// parametric models (linear regression and the DNN). The magnitudes are
/// not calibrated across families — they are meant for *ranking* queries
/// by confidence within one model, which is all the active-learning
/// escalation policy needs.
pub trait UncertainRegressor: Regressor + Send {
    /// Predicts targets for `x` together with a per-row standard
    /// deviation (`(means, stds)`, both `x.rows()` long).
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::NotFitted`] before `fit`, and
    /// [`PredictError::DimensionMismatch`] on feature-count mismatch.
    fn predict_with_uncertainty(&self, x: &Matrix) -> Result<(Vec<f64>, Vec<f64>), PredictError>;
}

/// The paper's four predictor families with their tuned configurations
/// (Section IV-C), as a factory enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// Multiple linear regression, RSS loss.
    LinReg,
    /// Regression DNN: 128-128-64-32-16-1, tanh, MAE, Adam.
    Dnn,
    /// Bayesian-optimized Gaussian process (Constant×RBF+White, MSE).
    Bayes,
    /// XGBoost-style gradient-boosted trees (tuned hyperparameters).
    Xgboost,
}

impl PredictorKind {
    /// All kinds in the column order of the paper's result tables.
    pub fn all() -> [PredictorKind; 4] {
        [
            PredictorKind::LinReg,
            PredictorKind::Dnn,
            PredictorKind::Bayes,
            PredictorKind::Xgboost,
        ]
    }

    /// Table-header label.
    pub fn label(self) -> &'static str {
        match self {
            PredictorKind::LinReg => "LinReg",
            PredictorKind::Dnn => "DNN",
            PredictorKind::Bayes => "Bayes",
            PredictorKind::Xgboost => "XGBoost",
        }
    }

    /// Builds a fresh predictor with the paper's tuned configuration and
    /// the given seed for its stochastic parts.
    pub fn build(self, seed: u64) -> Box<dyn Regressor> {
        match self {
            PredictorKind::LinReg => Box::new(LinearRegression::new()),
            PredictorKind::Dnn => Box::new(DnnRegressor::paper_config(seed)),
            PredictorKind::Bayes => Box::new(BayesGpRegressor::paper_config(seed)),
            PredictorKind::Xgboost => Box::new(GbtRegressor::paper_config(seed)),
        }
    }

    /// Builds a fresh predictor that also reports per-query uncertainty
    /// (the same tuned configuration as [`PredictorKind::build`]).
    pub fn build_uncertain(self, seed: u64) -> Box<dyn UncertainRegressor> {
        match self {
            PredictorKind::LinReg => Box::new(LinearRegression::new()),
            PredictorKind::Dnn => Box::new(DnnRegressor::paper_config(seed)),
            PredictorKind::Bayes => Box::new(BayesGpRegressor::paper_config(seed)),
            PredictorKind::Xgboost => Box::new(GbtRegressor::paper_config(seed)),
        }
    }

    /// Parses a label (case-insensitive).
    pub fn parse(s: &str) -> Option<PredictorKind> {
        match s.to_ascii_lowercase().as_str() {
            "linreg" | "lr" | "linear" => Some(PredictorKind::LinReg),
            "dnn" | "mlp" => Some(PredictorKind::Dnn),
            "bayes" | "gp" => Some(PredictorKind::Bayes),
            "xgboost" | "xgb" | "gbt" => Some(PredictorKind::Xgboost),
            _ => None,
        }
    }
}

impl std::fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Validates fit() preconditions shared by all predictors.
pub(crate) fn check_fit_input(x: &Matrix, y: &[f64]) -> Result<(), PredictError> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(PredictError::EmptyTrainingSet);
    }
    if x.rows() != y.len() {
        return Err(PredictError::DimensionMismatch {
            expected: x.rows(),
            got: y.len(),
            what: "rows vs targets",
        });
    }
    Ok(())
}

/// Validates predict() feature counts shared by all predictors.
pub(crate) fn check_features(fitted: usize, x: &Matrix) -> Result<(), PredictError> {
    if x.cols() != fitted {
        return Err(PredictError::DimensionMismatch {
            expected: fitted,
            got: x.cols(),
            what: "feature count",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_parse_roundtrip() {
        for k in PredictorKind::all() {
            assert_eq!(PredictorKind::parse(k.label()), Some(k));
        }
        assert_eq!(PredictorKind::parse("GBT"), Some(PredictorKind::Xgboost));
        assert_eq!(PredictorKind::parse("nope"), None);
    }

    #[test]
    fn factory_builds_every_kind() {
        for k in PredictorKind::all() {
            let m = k.build(1);
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn uncertain_factory_builds_every_kind() {
        for k in PredictorKind::all() {
            let m = k.build_uncertain(1);
            assert!(!m.name().is_empty());
            assert!(matches!(
                m.predict_with_uncertainty(&Matrix::zeros(1, 2)),
                Err(PredictError::NotFitted)
            ));
        }
    }

    #[test]
    fn fit_input_checks() {
        let x = Matrix::zeros(3, 2);
        assert!(check_fit_input(&x, &[1.0, 2.0, 3.0]).is_ok());
        assert!(matches!(
            check_fit_input(&x, &[1.0]),
            Err(PredictError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            check_fit_input(&Matrix::zeros(0, 0), &[]),
            Err(PredictError::EmptyTrainingSet)
        ));
    }
}
