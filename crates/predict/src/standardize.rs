use simtune_linalg::Matrix;

/// Per-feature z-score standardization, fitted on training data and
/// replayed at prediction time. Constant features map to zero.
///
/// All non-tree predictors standardize inputs internally: the feature
/// vectors mix ratios in `[0, 1]` with group-normalized deviations of
/// arbitrary scale, and both the DNN and the RBF kernel need comparable
/// feature scales to behave.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits means and standard deviations per column.
    ///
    /// # Panics
    ///
    /// Panics if `x` has zero rows.
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "standardizer needs at least one row");
        let (n, d) = x.shape();
        let mut means = vec![0.0; d];
        for i in 0..n {
            for (j, m) in means.iter_mut().enumerate() {
                *m += x[(i, j)];
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        let mut stds = vec![0.0; d];
        for i in 0..n {
            for j in 0..d {
                let dlt = x[(i, j)] - means[j];
                stds[j] += dlt * dlt;
            }
        }
        for s in &mut stds {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: map to zero, don't blow up
            }
        }
        Standardizer { means, stds }
    }

    /// Number of features this standardizer was fitted on.
    pub fn features(&self) -> usize {
        self.means.len()
    }

    /// Applies the transform to a matrix with the fitted feature count.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fit.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.features(), "feature count mismatch");
        Matrix::from_fn(x.rows(), x.cols(), |i, j| {
            (x[(i, j)] - self.means[j]) / self.stds[j]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardized_columns_have_zero_mean_unit_std() {
        let x = Matrix::from_fn(50, 3, |i, j| (i as f64) * (j as f64 + 1.0) + 5.0);
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        for j in 0..3 {
            let col = z.col(j);
            let mean = col.iter().sum::<f64>() / 50.0;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 50.0;
            assert!(mean.abs() < 1e-10);
            assert!((var - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn constant_features_map_to_zero() {
        let x = Matrix::filled(10, 2, 7.0);
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn transform_replays_training_statistics() {
        let train = Matrix::from_fn(20, 1, |i, _| i as f64);
        let s = Standardizer::fit(&train);
        let test = Matrix::from_vec(1, 1, vec![9.5]).unwrap();
        let z = s.transform(&test);
        // Mean of 0..20 is 9.5: maps exactly to 0.
        assert!(z[(0, 0)].abs() < 1e-12);
    }
}
