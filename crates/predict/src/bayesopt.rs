use crate::model::check_fit_input;
use crate::{GpKernel, GpRegressor, Loss, PredictError, Regressor, UncertainRegressor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtune_linalg::Matrix;

/// Configuration of the Bayesian hyperparameter optimization wrapped
/// around the Gaussian-process predictor (the paper's Listing 6: fit a
/// GP per hyperparameter candidate, score `-loss` on a held-out split,
/// and let a Bayesian optimizer propose the next candidate).
#[derive(Debug, Clone, PartialEq)]
pub struct BayesOptConfig {
    /// Random candidates evaluated before the surrogate takes over.
    pub init_points: usize,
    /// Surrogate-guided iterations.
    pub iterations: usize,
    /// Loss scored on the validation split (MSE in the paper).
    pub loss: Loss,
    /// Fraction of the training data held out for scoring.
    pub holdout: f64,
    /// log10 bounds for the constant factor `C`.
    pub log_c: (f64, f64),
    /// log10 bounds for the RBF length scale.
    pub log_length: (f64, f64),
    /// log10 bounds for the white-noise level.
    pub log_noise: (f64, f64),
    /// Cap on the training subset used per candidate fit (Cholesky is
    /// cubic; the paper's group sizes make this necessary on any substrate).
    pub max_fit_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BayesOptConfig {
    fn default() -> Self {
        BayesOptConfig {
            init_points: 6,
            iterations: 15,
            loss: Loss::Mse,
            holdout: 0.25,
            log_c: (-2.0, 2.0),
            log_length: (-1.0, 1.5),
            log_noise: (-6.0, -0.5),
            max_fit_samples: 600,
            seed: 0,
        }
    }
}

/// The paper's "Bayes" predictor: a Gaussian process whose kernel
/// hyperparameters are selected by Bayesian optimization with an
/// expected-improvement acquisition over a GP surrogate of the validation
/// loss, then refitted on the full training set.
///
/// # Example
///
/// ```
/// use simtune_linalg::Matrix;
/// use simtune_predict::{BayesGpRegressor, Regressor};
///
/// # fn main() -> Result<(), simtune_predict::PredictError> {
/// let x = Matrix::from_fn(40, 1, |i, _| i as f64 / 8.0);
/// let y: Vec<f64> = (0..40).map(|i| (i as f64 / 8.0).sin()).collect();
/// let mut m = BayesGpRegressor::paper_config(7);
/// m.fit(&x, &y)?;
/// let p = m.predict(&x)?;
/// assert!((p[10] - y[10]).abs() < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BayesGpRegressor {
    config: BayesOptConfig,
    inner: Option<GpRegressor>,
    best_kernel: Option<GpKernel>,
}

impl BayesGpRegressor {
    /// Paper configuration (MSE loss) with a seed.
    pub fn paper_config(seed: u64) -> Self {
        Self::new(BayesOptConfig {
            seed,
            ..BayesOptConfig::default()
        })
    }

    /// Builds from an explicit configuration.
    pub fn new(config: BayesOptConfig) -> Self {
        BayesGpRegressor {
            config,
            inner: None,
            best_kernel: None,
        }
    }

    /// The kernel chosen by the optimization, if fitted.
    pub fn best_kernel(&self) -> Option<&GpKernel> {
        self.best_kernel.as_ref()
    }

    /// The objective of the paper's Listing 6: fit a GP with `kernel` on
    /// the train split, predict the validation split, return `-loss`.
    fn objective(
        kernel: GpKernel,
        x_train: &Matrix,
        y_train: &[f64],
        x_val: &Matrix,
        y_val: &[f64],
        loss: Loss,
    ) -> f64 {
        let mut gp = GpRegressor::new(kernel);
        match gp.fit(x_train, y_train).and_then(|_| gp.predict(x_val)) {
            Ok(pred) => -loss.compute(y_val, &pred),
            Err(_) => f64::NEG_INFINITY, // numerically infeasible kernel
        }
    }
}

/// A point in log10 hyperparameter space.
type LogPoint = [f64; 3];

fn kernel_of(p: LogPoint) -> GpKernel {
    GpKernel {
        constant: 10f64.powf(p[0]),
        length_scale: 10f64.powf(p[1]),
        noise: 10f64.powf(p[2]),
    }
}

fn sample_point(cfg: &BayesOptConfig, rng: &mut StdRng) -> LogPoint {
    [
        rng.gen_range(cfg.log_c.0..=cfg.log_c.1),
        rng.gen_range(cfg.log_length.0..=cfg.log_length.1),
        rng.gen_range(cfg.log_noise.0..=cfg.log_noise.1),
    ]
}

/// Standard normal pdf/cdf for expected improvement.
fn phi(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

fn big_phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Abramowitz–Stegun erf approximation (|error| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

impl Regressor for BayesGpRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), PredictError> {
        check_fit_input(x, y)?;
        let cfg = self.config.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xBA7E5));

        // Subsample + split train/validation.
        let n = x.rows();
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            idx.swap(i, rng.gen_range(0..=i));
        }
        idx.truncate(cfg.max_fit_samples.max(8).min(n));
        let n_val = ((idx.len() as f64 * cfg.holdout) as usize).clamp(1, idx.len() - 1);
        let (val_idx, train_idx) = idx.split_at(n_val);
        let take = |rows: &[usize]| -> (Matrix, Vec<f64>) {
            let m = Matrix::from_fn(rows.len(), x.cols(), |i, j| x[(rows[i], j)]);
            let t = rows.iter().map(|&r| y[r]).collect();
            (m, t)
        };
        let (x_train, y_train) = take(train_idx);
        let (x_val, y_val) = take(val_idx);

        // Evaluated (point, objective) history.
        let mut history: Vec<(LogPoint, f64)> = Vec::new();
        for _ in 0..cfg.init_points {
            let p = sample_point(&cfg, &mut rng);
            let obj = Self::objective(kernel_of(p), &x_train, &y_train, &x_val, &y_val, cfg.loss);
            history.push((p, obj));
        }

        // Surrogate loop: GP over the history, expected improvement over
        // a random candidate pool.
        for _ in 0..cfg.iterations {
            let finite: Vec<&(LogPoint, f64)> =
                history.iter().filter(|(_, o)| o.is_finite()).collect();
            let next = if finite.len() < 3 {
                sample_point(&cfg, &mut rng)
            } else {
                let hx = Matrix::from_fn(finite.len(), 3, |i, j| finite[i].0[j]);
                let hy: Vec<f64> = finite.iter().map(|(_, o)| *o).collect();
                let mut surrogate = GpRegressor::new(GpKernel {
                    constant: 1.0,
                    length_scale: 1.0,
                    noise: 1e-4,
                });
                if surrogate.fit(&hx, &hy).is_err() {
                    history.push((sample_point(&cfg, &mut rng), f64::NEG_INFINITY));
                    continue;
                }
                let best = hy.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut best_ei = f64::NEG_INFINITY;
                let mut best_p = sample_point(&cfg, &mut rng);
                for _ in 0..256 {
                    let cand = sample_point(&cfg, &mut rng);
                    let cm = Matrix::from_vec(1, 3, cand.to_vec())?;
                    let mu = surrogate.predict(&cm)?[0];
                    let var = surrogate.predict_variance(&cm)?[0];
                    let sigma = var.sqrt().max(1e-9);
                    let z = (mu - best) / sigma;
                    let ei = (mu - best) * big_phi(z) + sigma * phi(z);
                    if ei > best_ei {
                        best_ei = ei;
                        best_p = cand;
                    }
                }
                best_p
            };
            let obj = Self::objective(
                kernel_of(next),
                &x_train,
                &y_train,
                &x_val,
                &y_val,
                cfg.loss,
            );
            history.push((next, obj));
        }

        let (best_p, best_obj) = history
            .iter()
            .filter(|(_, o)| o.is_finite())
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite objectives"))
            .copied()
            .ok_or(PredictError::Diverged)?;
        let _ = best_obj;
        let kernel = kernel_of(best_p);

        // Refit on the full (subsampled) data with the chosen kernel.
        let (x_all, y_all) = take(&idx);
        let mut inner = GpRegressor::new(kernel);
        inner.fit(&x_all, &y_all)?;
        self.best_kernel = Some(kernel);
        self.inner = Some(inner);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>, PredictError> {
        self.inner
            .as_ref()
            .ok_or(PredictError::NotFitted)?
            .predict(x)
    }

    fn name(&self) -> &'static str {
        "bayes"
    }
}

impl UncertainRegressor for BayesGpRegressor {
    /// Posterior mean and standard deviation of the tuned inner GP.
    fn predict_with_uncertainty(&self, x: &Matrix) -> Result<(Vec<f64>, Vec<f64>), PredictError> {
        self.inner
            .as_ref()
            .ok_or(PredictError::NotFitted)?
            .predict_with_uncertainty(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(seed: u64) -> BayesOptConfig {
        BayesOptConfig {
            init_points: 4,
            iterations: 6,
            max_fit_samples: 120,
            seed,
            ..BayesOptConfig::default()
        }
    }

    #[test]
    fn fits_nonlinear_function_better_than_constant() {
        let x = Matrix::from_fn(60, 1, |i, _| i as f64 / 10.0);
        let y: Vec<f64> = (0..60).map(|i| (i as f64 / 10.0).sin()).collect();
        let mut m = BayesGpRegressor::new(quick_config(1));
        m.fit(&x, &y).unwrap();
        let p = m.predict(&x).unwrap();
        let mse = Loss::Mse.compute(&y, &p);
        let var = simtune_linalg::stats::variance(&y);
        assert!(mse < var * 0.2, "mse {mse} vs variance {var}");
        assert!(m.best_kernel().is_some());
    }

    #[test]
    fn deterministic_per_seed() {
        let x = Matrix::from_fn(40, 2, |i, j| ((i * (j + 2)) % 11) as f64);
        let y: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let run = |seed| {
            let mut m = BayesGpRegressor::new(quick_config(seed));
            m.fit(&x, &y).unwrap();
            m.predict(&x).unwrap()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-9);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((big_phi(0.0) - 0.5).abs() < 1e-9);
        assert!(big_phi(5.0) > 0.999);
    }

    #[test]
    fn subsampling_caps_fit_size() {
        // 500 rows but max_fit_samples 50: must not blow up.
        let x = Matrix::from_fn(500, 2, |i, j| ((i + j) % 23) as f64);
        let y: Vec<f64> = (0..500).map(|i| (i % 23) as f64).collect();
        let mut cfg = quick_config(2);
        cfg.max_fit_samples = 50;
        let mut m = BayesGpRegressor::new(cfg);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict(&x).unwrap().len(), 500);
    }
}
