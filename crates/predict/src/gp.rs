use crate::model::{check_features, check_fit_input};
use crate::{PredictError, Regressor, Standardizer, UncertainRegressor};
use simtune_linalg::{Cholesky, Matrix};

/// The paper's Gaussian-process kernel (its Listing 6):
/// `k(x, x') = C · exp(-‖x−x'‖² / 2ℓ²) + σ²·δ(x, x')` —
/// a constant kernel times an RBF plus a white-noise kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpKernel {
    /// Constant (signal variance) factor `C`.
    pub constant: f64,
    /// RBF length scale `ℓ`.
    pub length_scale: f64,
    /// White-noise level `σ²`.
    pub noise: f64,
}

impl Default for GpKernel {
    fn default() -> Self {
        GpKernel {
            constant: 1.0,
            length_scale: 1.0,
            noise: 1e-4,
        }
    }
}

impl GpKernel {
    /// Kernel value between two points (without the white-noise term,
    /// which only applies on the diagonal of the training matrix).
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        self.constant * (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }
}

/// Gaussian-process regression with a fixed kernel.
///
/// Fitting computes the Cholesky factorization of the kernel matrix and
/// the weight vector `α = K⁻¹ y` (targets centered, inputs standardized).
/// [`BayesGpRegressor`](crate::BayesGpRegressor) tunes the kernel
/// hyperparameters on top of this type.
///
/// # Example
///
/// ```
/// use simtune_linalg::Matrix;
/// use simtune_predict::{GpKernel, GpRegressor, Regressor};
///
/// # fn main() -> Result<(), simtune_predict::PredictError> {
/// let x = Matrix::from_fn(20, 1, |i, _| i as f64 / 5.0);
/// let y: Vec<f64> = (0..20).map(|i| (i as f64 / 5.0).sin()).collect();
/// let mut gp = GpRegressor::new(GpKernel { constant: 1.0, length_scale: 0.8, noise: 1e-6 });
/// gp.fit(&x, &y)?;
/// let p = gp.predict(&x)?;
/// assert!((p[3] - y[3]).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GpRegressor {
    kernel: GpKernel,
    state: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    standardizer: Standardizer,
    x_train: Matrix,
    alpha: Vec<f64>,
    y_mean: f64,
    chol: Cholesky,
}

impl GpRegressor {
    /// GP with an explicit kernel.
    pub fn new(kernel: GpKernel) -> Self {
        GpRegressor {
            kernel,
            state: None,
        }
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &GpKernel {
        &self.kernel
    }

    /// Log marginal likelihood of the fitted training data (used to
    /// sanity-check hyperparameter choices).
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::NotFitted`] before `fit`.
    pub fn log_marginal_likelihood(&self, y: &[f64]) -> Result<f64, PredictError> {
        let st = self.state.as_ref().ok_or(PredictError::NotFitted)?;
        let n = st.x_train.rows();
        if y.len() != n {
            return Err(PredictError::DimensionMismatch {
                expected: n,
                got: y.len(),
                what: "targets",
            });
        }
        let centered: Vec<f64> = y.iter().map(|v| v - st.y_mean).collect();
        let fit_term: f64 = centered.iter().zip(&st.alpha).map(|(a, b)| a * b).sum();
        Ok(-0.5 * fit_term
            - 0.5 * st.chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln())
    }

    /// Predictive variance at each row of `x` (diagonal of the posterior
    /// covariance).
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::NotFitted`] before `fit` and
    /// [`PredictError::DimensionMismatch`] on feature mismatch.
    pub fn predict_variance(&self, x: &Matrix) -> Result<Vec<f64>, PredictError> {
        let st = self.state.as_ref().ok_or(PredictError::NotFitted)?;
        check_features(st.standardizer.features(), x)?;
        let xs = st.standardizer.transform(x);
        let mut out = Vec::with_capacity(xs.rows());
        for i in 0..xs.rows() {
            let q = xs.row(i);
            let kstar: Vec<f64> = (0..st.x_train.rows())
                .map(|j| self.kernel.eval(q, st.x_train.row(j)))
                .collect();
            let v = st.chol.solve_lower(&kstar)?;
            let prior = self.kernel.constant + self.kernel.noise;
            let var = prior - v.iter().map(|x| x * x).sum::<f64>();
            out.push(var.max(0.0));
        }
        Ok(out)
    }
}

impl Regressor for GpRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), PredictError> {
        check_fit_input(x, y)?;
        let standardizer = Standardizer::fit(x);
        let xs = standardizer.transform(x);
        let n = xs.rows();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let centered: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        let mut k = Matrix::from_fn(n, n, |i, j| self.kernel.eval(xs.row(i), xs.row(j)));
        // White kernel on the diagonal + numeric jitter.
        k.add_diagonal(self.kernel.noise + 1e-10);
        let chol = k.cholesky()?;
        let alpha = chol.solve(&centered)?;
        self.state = Some(Fitted {
            standardizer,
            x_train: xs,
            alpha,
            y_mean,
            chol,
        });
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>, PredictError> {
        let st = self.state.as_ref().ok_or(PredictError::NotFitted)?;
        check_features(st.standardizer.features(), x)?;
        let xs = st.standardizer.transform(x);
        Ok((0..xs.rows())
            .map(|i| {
                let q = xs.row(i);
                let mut acc = st.y_mean;
                for (j, a) in st.alpha.iter().enumerate() {
                    acc += a * self.kernel.eval(q, st.x_train.row(j));
                }
                acc
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "gp"
    }
}

impl UncertainRegressor for GpRegressor {
    /// Posterior mean and standard deviation (square root of
    /// [`GpRegressor::predict_variance`]).
    fn predict_with_uncertainty(&self, x: &Matrix) -> Result<(Vec<f64>, Vec<f64>), PredictError> {
        let means = self.predict(x)?;
        let stds = self
            .predict_variance(x)?
            .into_iter()
            .map(f64::sqrt)
            .collect();
        Ok((means, stds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Loss;

    #[test]
    fn interpolates_smooth_function() {
        let x = Matrix::from_fn(30, 1, |i, _| i as f64 / 5.0);
        let y: Vec<f64> = (0..30).map(|i| (i as f64 / 5.0).sin()).collect();
        let mut gp = GpRegressor::new(GpKernel {
            constant: 1.0,
            length_scale: 1.0,
            noise: 1e-6,
        });
        gp.fit(&x, &y).unwrap();
        // Predict off-grid points.
        let xq = Matrix::from_fn(10, 1, |i, _| i as f64 / 5.0 + 0.1);
        let p = gp.predict(&xq).unwrap();
        for (i, pi) in p.iter().enumerate() {
            let want = (i as f64 / 5.0 + 0.1).sin();
            assert!((pi - want).abs() < 0.05, "at {i}: {pi} vs {want}");
        }
    }

    #[test]
    fn variance_small_at_train_points_large_far_away() {
        let x = Matrix::from_fn(10, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
        let mut gp = GpRegressor::new(GpKernel {
            constant: 1.0,
            length_scale: 1.0,
            noise: 1e-6,
        });
        gp.fit(&x, &y).unwrap();
        let at_train = gp.predict_variance(&x).unwrap();
        let far = gp
            .predict_variance(&Matrix::from_vec(1, 1, vec![1000.0]).unwrap())
            .unwrap();
        assert!(at_train.iter().all(|&v| v < 1e-3));
        assert!(far[0] > 0.5, "far-away variance {}", far[0]);
    }

    #[test]
    fn noise_kernel_smooths_noisy_targets() {
        // Same inputs, contradictory targets: only a noisy kernel fits.
        let x = Matrix::from_fn(20, 1, |i, _| (i / 2) as f64);
        let y: Vec<f64> = (0..20)
            .map(|i| (i / 2) as f64 + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let mut gp = GpRegressor::new(GpKernel {
            constant: 1.0,
            length_scale: 1.0,
            noise: 0.1,
        });
        gp.fit(&x, &y).unwrap();
        let p = gp.predict(&x).unwrap();
        // Predictions approach the pairwise means, not the raw targets.
        let mae = Loss::Mae.compute(&y, &p);
        assert!(mae > 0.1, "noise must prevent interpolation: {mae}");
        assert!(mae < 0.4);
    }

    #[test]
    fn log_marginal_likelihood_prefers_reasonable_scale() {
        let x = Matrix::from_fn(25, 1, |i, _| i as f64 / 4.0);
        let y: Vec<f64> = (0..25).map(|i| (i as f64 / 4.0).sin()).collect();
        let fit_ll = |ls: f64| {
            let mut gp = GpRegressor::new(GpKernel {
                constant: 1.0,
                length_scale: ls,
                noise: 1e-4,
            });
            gp.fit(&x, &y).unwrap();
            gp.log_marginal_likelihood(&y).unwrap()
        };
        let good = fit_ll(1.0);
        let bad = fit_ll(0.01); // absurdly short length scale
        assert!(good > bad, "ll {good} should beat {bad}");
    }

    #[test]
    fn unfitted_errors() {
        let gp = GpRegressor::new(GpKernel::default());
        assert!(matches!(
            gp.predict(&Matrix::zeros(1, 1)),
            Err(PredictError::NotFitted)
        ));
        assert!(matches!(
            gp.predict_variance(&Matrix::zeros(1, 1)),
            Err(PredictError::NotFitted)
        ));
    }
}
