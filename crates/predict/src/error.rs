use simtune_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Errors raised while fitting or evaluating predictors.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictError {
    /// Fitting requires at least one sample and one feature.
    EmptyTrainingSet,
    /// `x.rows() != y.len()`, or prediction features disagree with the
    /// fitted feature count.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        got: usize,
        /// Context ("rows vs targets", "feature count").
        what: &'static str,
    },
    /// The model has not been fitted yet.
    NotFitted,
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
    /// Training diverged (NaN in weights or loss).
    Diverged,
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::EmptyTrainingSet => write!(f, "training set is empty"),
            PredictError::DimensionMismatch {
                expected,
                got,
                what,
            } => write!(
                f,
                "dimension mismatch ({what}): expected {expected}, got {got}"
            ),
            PredictError::NotFitted => write!(f, "model has not been fitted"),
            PredictError::Linalg(e) => write!(f, "linear algebra failed: {e}"),
            PredictError::Diverged => write!(f, "training diverged (NaN encountered)"),
        }
    }
}

impl Error for PredictError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PredictError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for PredictError {
    fn from(e: LinalgError) -> Self {
        PredictError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_context() {
        let e = PredictError::DimensionMismatch {
            expected: 3,
            got: 5,
            what: "feature count",
        };
        assert!(e.to_string().contains("feature count"));
        assert!(PredictError::NotFitted.to_string().contains("fitted"));
    }
}
