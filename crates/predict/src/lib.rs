//! Score predictors, from scratch: the paper's four model families.
//!
//! Section III-D of the paper trains and compares multiple predictors
//! that map instruction-accurate simulator statistics to performance
//! scores: Multiple Linear Regression, a regression DNN, a Gaussian
//! process whose kernel hyperparameters are chosen by Bayesian
//! optimization, and XGBoost. This crate implements all four (and their
//! loss functions and the grid-search used to tune XGBoost) on top of
//! `simtune-linalg`, with no external ML dependencies.
//!
//! The tuned configurations from Section IV-C are the defaults:
//!
//! | predictor | configuration |
//! |---|---|
//! | [`LinearRegression`] | RSS loss (ordinary least squares) |
//! | [`DnnRegressor`] | 6 dense layers (128, 128, 64, 32, 16, 1), tanh hidden, linear output, MAE loss, Adam |
//! | [`BayesGpRegressor`] | `Constant × RBF + White` kernel, hyperparameters maximizing −MSE via Bayesian optimization |
//! | [`GbtRegressor`] | colsample 0.6, lr 0.05, depth 3, α 0, λ 0.1, 300 trees, min-child-weight 1, subsample 0.8, MSE |
//!
//! # Example
//!
//! ```
//! use simtune_linalg::Matrix;
//! use simtune_predict::{PredictorKind, Regressor};
//!
//! # fn main() -> Result<(), simtune_predict::PredictError> {
//! // y = 2 x0 - x1 + 1, learnable by every predictor.
//! let x = Matrix::from_fn(64, 2, |i, j| ((i * (j + 3)) % 17) as f64 / 17.0);
//! let y: Vec<f64> = (0..64).map(|i| 2.0 * x[(i, 0)] - x[(i, 1)] + 1.0).collect();
//! let mut model = PredictorKind::LinReg.build(42);
//! model.fit(&x, &y)?;
//! let pred = model.predict(&x)?;
//! assert!((pred[0] - y[0]).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

mod bayesopt;
mod dnn;
mod error;
mod gbt;
mod gp;
mod gridsearch;
mod linreg;
mod loss;
mod model;
mod standardize;

pub use bayesopt::{BayesGpRegressor, BayesOptConfig};
pub use dnn::{DnnConfig, DnnRegressor};
pub use error::PredictError;
pub use gbt::{GbtConfig, GbtRegressor};
pub use gp::{GpKernel, GpRegressor};
pub use gridsearch::{grid_search_gbt, GbtGrid};
pub use linreg::LinearRegression;
pub use loss::Loss;
pub use model::{PredictorKind, Regressor, UncertainRegressor};
pub use standardize::Standardizer;
