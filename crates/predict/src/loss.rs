/// Loss functions used to train and tune the predictors (paper
/// Section III-D: MSE, MAE and RSS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Loss {
    /// Mean squared error.
    #[default]
    Mse,
    /// Mean absolute error.
    Mae,
    /// Residual sum of squares (unnormalized MSE).
    Rss,
}

impl Loss {
    /// Evaluates the loss between targets and predictions.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or are empty.
    pub fn compute(self, y_true: &[f64], y_pred: &[f64]) -> f64 {
        assert_eq!(y_true.len(), y_pred.len(), "loss: length mismatch");
        assert!(!y_true.is_empty(), "loss of empty slices");
        let n = y_true.len() as f64;
        match self {
            Loss::Mse => {
                y_true
                    .iter()
                    .zip(y_pred)
                    .map(|(t, p)| (t - p) * (t - p))
                    .sum::<f64>()
                    / n
            }
            Loss::Mae => {
                y_true
                    .iter()
                    .zip(y_pred)
                    .map(|(t, p)| (t - p).abs())
                    .sum::<f64>()
                    / n
            }
            Loss::Rss => y_true
                .iter()
                .zip(y_pred)
                .map(|(t, p)| (t - p) * (t - p))
                .sum::<f64>(),
        }
    }

    /// Short lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Loss::Mse => "mse",
            Loss::Mae => "mae",
            Loss::Rss => "rss",
        }
    }
}

impl std::fmt::Display for Loss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 1.0];
        assert!((Loss::Mse.compute(&t, &p) - 5.0 / 3.0).abs() < 1e-12);
        assert!((Loss::Mae.compute(&t, &p) - 1.0).abs() < 1e-12);
        assert!((Loss::Rss.compute(&t, &p) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_for_perfect_predictions() {
        let t = [1.0, -2.0];
        for loss in [Loss::Mse, Loss::Mae, Loss::Rss] {
            assert_eq!(loss.compute(&t, &t), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        Loss::Mse.compute(&[1.0], &[1.0, 2.0]);
    }
}
