use crate::{GbtConfig, GbtRegressor, Loss, PredictError, Regressor};
use simtune_linalg::Matrix;

/// Hyperparameter grid for tuning [`GbtRegressor`], mirroring the grid
/// search the paper applied to XGBoost (Section IV-C, citing grid search
/// as the tuning method for its many hyperparameters).
#[derive(Debug, Clone)]
pub struct GbtGrid {
    /// Learning rates to try.
    pub learning_rates: Vec<f64>,
    /// Maximum depths to try.
    pub max_depths: Vec<usize>,
    /// L2 regularization strengths to try.
    pub lambdas: Vec<f64>,
    /// Column subsample ratios to try.
    pub colsamples: Vec<f64>,
    /// Tree counts to try.
    pub n_trees: Vec<usize>,
}

impl Default for GbtGrid {
    fn default() -> Self {
        GbtGrid {
            learning_rates: vec![0.05, 0.1],
            max_depths: vec![2, 3, 4],
            lambdas: vec![0.0, 0.1, 1.0],
            colsamples: vec![0.6, 1.0],
            n_trees: vec![150, 300],
        }
    }
}

impl GbtGrid {
    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.learning_rates.len()
            * self.max_depths.len()
            * self.lambdas.len()
            * self.colsamples.len()
            * self.n_trees.len()
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Exhaustive grid search for the best GBT configuration under holdout
/// validation: fits each grid point on `(x_train, y_train)`, scores
/// `loss` on `(x_val, y_val)`, returns the winning configuration and its
/// validation loss.
///
/// # Errors
///
/// Propagates fit errors; returns [`PredictError::EmptyTrainingSet`] for
/// an empty grid.
///
/// # Example
///
/// ```
/// use simtune_linalg::Matrix;
/// use simtune_predict::{grid_search_gbt, GbtGrid, Loss};
///
/// # fn main() -> Result<(), simtune_predict::PredictError> {
/// let x = Matrix::from_fn(60, 1, |i, _| i as f64);
/// let y: Vec<f64> = (0..60).map(|i| if i < 30 { 0.0 } else { 1.0 }).collect();
/// let grid = GbtGrid { n_trees: vec![20], ..GbtGrid::default() };
/// let (cfg, loss) = grid_search_gbt(&grid, &x, &y, &x, &y, Loss::Mse, 1)?;
/// assert!(loss < 0.05);
/// assert!(grid.max_depths.contains(&cfg.max_depth));
/// # Ok(())
/// # }
/// ```
pub fn grid_search_gbt(
    grid: &GbtGrid,
    x_train: &Matrix,
    y_train: &[f64],
    x_val: &Matrix,
    y_val: &[f64],
    loss: Loss,
    seed: u64,
) -> Result<(GbtConfig, f64), PredictError> {
    let mut best: Option<(GbtConfig, f64)> = None;
    for &lr in &grid.learning_rates {
        for &depth in &grid.max_depths {
            for &lambda in &grid.lambdas {
                for &colsample in &grid.colsamples {
                    for &trees in &grid.n_trees {
                        let cfg = GbtConfig {
                            learning_rate: lr,
                            max_depth: depth,
                            lambda,
                            colsample,
                            n_trees: trees,
                            seed,
                            ..GbtConfig::default()
                        };
                        let mut model = GbtRegressor::new(cfg.clone());
                        model.fit(x_train, y_train)?;
                        let pred = model.predict(x_val)?;
                        let l = loss.compute(y_val, &pred);
                        if best.as_ref().map(|(_, bl)| l < *bl).unwrap_or(true) {
                            best = Some((cfg, l));
                        }
                    }
                }
            }
        }
    }
    best.ok_or(PredictError::EmptyTrainingSet)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_len_is_product() {
        let g = GbtGrid::default();
        assert_eq!(g.len(), 2 * 3 * 3 * 2 * 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn picks_depth_that_fits_interactions() {
        // y = XOR-ish of two binary features: depth-1 stumps cannot fit,
        // depth >= 2 can.
        let x = Matrix::from_fn(80, 2, |i, j| ((i >> j) & 1) as f64);
        let y: Vec<f64> = (0..80).map(|i| ((i & 1) ^ ((i >> 1) & 1)) as f64).collect();
        let grid = GbtGrid {
            learning_rates: vec![0.3],
            max_depths: vec![1, 3],
            lambdas: vec![0.0],
            colsamples: vec![1.0],
            n_trees: vec![50],
        };
        let (cfg, loss) = grid_search_gbt(&grid, &x, &y, &x, &y, Loss::Mse, 0).unwrap();
        assert_eq!(cfg.max_depth, 3, "xor needs interactions");
        assert!(loss < 0.05);
    }

    #[test]
    fn empty_grid_is_an_error() {
        let grid = GbtGrid {
            learning_rates: vec![],
            ..GbtGrid::default()
        };
        let x = Matrix::zeros(4, 1);
        let err = grid_search_gbt(&grid, &x, &[0.0; 4], &x, &[0.0; 4], Loss::Mse, 0);
        assert!(matches!(err, Err(PredictError::EmptyTrainingSet)));
    }
}
