use crate::model::{check_features, check_fit_input};
use crate::{Loss, PredictError, Regressor, Standardizer, UncertainRegressor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtune_linalg::Matrix;

/// Configuration of the regression DNN.
///
/// The default is the paper's tuned architecture (Section IV-C): six
/// dense layers with 128, 128, 64, 32, 16 and 1 neurons, tanh hidden
/// activations, a linear output, MAE loss and the Adam optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct DnnConfig {
    /// Hidden layer widths (the output layer of width 1 is implicit).
    pub hidden: Vec<usize>,
    /// Training loss (MAE in the paper's tuned configuration).
    pub loss: Loss,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Full passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Weight-initialization and shuffling seed.
    pub seed: u64,
}

impl Default for DnnConfig {
    fn default() -> Self {
        DnnConfig {
            hidden: vec![128, 128, 64, 32, 16],
            loss: Loss::Mae,
            learning_rate: 1e-3,
            epochs: 80,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// One dense layer with Adam state.
#[derive(Debug, Clone)]
struct Dense {
    w: Matrix,   // out x in
    b: Vec<f64>, // out
    // Adam moments.
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        // Xavier/Glorot uniform initialization for tanh.
        let limit = (6.0 / (inputs + outputs) as f64).sqrt();
        let w = Matrix::from_fn(outputs, inputs, |_, _| rng.gen_range(-limit..limit));
        Dense {
            mw: Matrix::zeros(outputs, inputs),
            vw: Matrix::zeros(outputs, inputs),
            mb: vec![0.0; outputs],
            vb: vec![0.0; outputs],
            b: vec![0.0; outputs],
            w,
        }
    }
}

/// Regression DNN with from-scratch backpropagation.
///
/// Inputs are z-score standardized internally. Training is deterministic
/// for a given seed.
#[derive(Debug, Clone)]
pub struct DnnRegressor {
    config: DnnConfig,
    layers: Vec<Dense>,
    standardizer: Option<Standardizer>,
    adam_t: u64,
    /// Training-residual standard deviation, the network's (constant)
    /// uncertainty estimate.
    residual_std: f64,
}

impl DnnRegressor {
    /// Builds the paper's tuned architecture with a seed.
    pub fn paper_config(seed: u64) -> Self {
        Self::new(DnnConfig {
            seed,
            ..DnnConfig::default()
        })
    }

    /// Builds a DNN from an explicit configuration.
    pub fn new(config: DnnConfig) -> Self {
        DnnRegressor {
            config,
            layers: Vec::new(),
            standardizer: None,
            adam_t: 0,
            residual_std: 0.0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DnnConfig {
        &self.config
    }

    /// Forward pass for one sample; returns per-layer activations
    /// (`acts[0]` is the input, `acts.last()` the scalar output).
    fn forward(&self, input: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.to_vec());
        for (li, layer) in self.layers.iter().enumerate() {
            let prev = &acts[li];
            let last = li == self.layers.len() - 1;
            let mut out = Vec::with_capacity(layer.b.len());
            for o in 0..layer.b.len() {
                let z = simtune_linalg::dot(layer.w.row(o), prev) + layer.b[o];
                out.push(if last { z } else { z.tanh() });
            }
            acts.push(out);
        }
        acts
    }

    /// Backward pass for one sample, accumulating gradients.
    fn backward(&self, acts: &[Vec<f64>], target: f64, gw: &mut [Matrix], gb: &mut [Vec<f64>]) {
        let out = acts.last().expect("activations")[0];
        // dL/dout for the configured loss.
        let mut delta: Vec<f64> = vec![match self.config.loss {
            Loss::Mae => (out - target).signum(),
            Loss::Mse | Loss::Rss => 2.0 * (out - target),
        }];
        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let prev = &acts[li];
            // Gradients of this layer.
            for (o, &d) in delta.iter().enumerate() {
                gb[li][o] += d;
                let grow = gw[li].row_mut(o);
                for (j, &p) in prev.iter().enumerate() {
                    grow[j] += d * p;
                }
            }
            if li == 0 {
                break;
            }
            // Propagate: delta_prev = Wᵀ delta ⊙ tanh'(prev).
            let mut next = vec![0.0; prev.len()];
            for (o, &d) in delta.iter().enumerate() {
                let row = layer.w.row(o);
                for (j, n) in next.iter_mut().enumerate() {
                    *n += row[j] * d;
                }
            }
            for (j, n) in next.iter_mut().enumerate() {
                // prev[j] = tanh(z): tanh' = 1 - tanh².
                *n *= 1.0 - prev[j] * prev[j];
            }
            delta = next;
        }
    }

    fn adam_step(&mut self, gw: &[Matrix], gb: &[Vec<f64>], batch: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.adam_t += 1;
        let t = self.adam_t as f64;
        let lr = self.config.learning_rate * (1.0 - B2.powf(t)).sqrt() / (1.0 - B1.powf(t));
        let scale = 1.0 / batch as f64;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for o in 0..layer.b.len() {
                for j in 0..layer.w.cols() {
                    let g = gw[li][(o, j)] * scale;
                    let m = &mut layer.mw[(o, j)];
                    *m = B1 * *m + (1.0 - B1) * g;
                    let v = &mut layer.vw[(o, j)];
                    *v = B2 * *v + (1.0 - B2) * g * g;
                    layer.w[(o, j)] -= lr * layer.mw[(o, j)] / (layer.vw[(o, j)].sqrt() + EPS);
                }
                let g = gb[li][o] * scale;
                layer.mb[o] = B1 * layer.mb[o] + (1.0 - B1) * g;
                layer.vb[o] = B2 * layer.vb[o] + (1.0 - B2) * g * g;
                layer.b[o] -= lr * layer.mb[o] / (layer.vb[o].sqrt() + EPS);
            }
        }
    }
}

impl Regressor for DnnRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), PredictError> {
        check_fit_input(x, y)?;
        let std = Standardizer::fit(x);
        let xs = std.transform(x);
        self.standardizer = Some(std);

        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(0xD44));
        let mut dims = vec![x.cols()];
        dims.extend(&self.config.hidden);
        dims.push(1);
        self.layers = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        self.adam_t = 0;

        let n = xs.rows();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..self.config.epochs {
            // Fisher-Yates shuffle.
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(self.config.batch_size.max(1)) {
                let mut gw: Vec<Matrix> = self
                    .layers
                    .iter()
                    .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
                    .collect();
                let mut gb: Vec<Vec<f64>> =
                    self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
                for &i in chunk {
                    let acts = self.forward(xs.row(i));
                    self.backward(&acts, y[i], &mut gw, &mut gb);
                }
                self.adam_step(&gw, &gb, chunk.len());
            }
        }
        // Divergence check.
        if self
            .layers
            .iter()
            .any(|l| l.w.as_slice().iter().any(|v| !v.is_finite()))
        {
            return Err(PredictError::Diverged);
        }
        // Residual spread over the (already standardized) training set.
        let mse = (0..n)
            .map(|i| {
                let out = self.forward(xs.row(i)).last().expect("output")[0];
                (out - y[i]) * (out - y[i])
            })
            .sum::<f64>()
            / n as f64;
        self.residual_std = mse.sqrt();
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>, PredictError> {
        let std = self.standardizer.as_ref().ok_or(PredictError::NotFitted)?;
        check_features(std.features(), x)?;
        let xs = std.transform(x);
        Ok((0..xs.rows())
            .map(|i| self.forward(xs.row(i)).last().expect("output")[0])
            .collect())
    }

    fn name(&self) -> &'static str {
        "dnn"
    }
}

impl UncertainRegressor for DnnRegressor {
    fn predict_with_uncertainty(&self, x: &Matrix) -> Result<(Vec<f64>, Vec<f64>), PredictError> {
        let means = self.predict(x)?;
        let stds = vec![self.residual_std; means.len()];
        Ok((means, stds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> DnnConfig {
        DnnConfig {
            hidden: vec![16, 8],
            loss: Loss::Mse,
            learning_rate: 5e-3,
            epochs: 300,
            batch_size: 16,
            seed,
        }
    }

    #[test]
    fn learns_linear_function() {
        let x = Matrix::from_fn(64, 2, |i, j| ((i * (3 + j)) % 16) as f64 / 8.0 - 1.0);
        let y: Vec<f64> = (0..64).map(|i| x[(i, 0)] - 0.5 * x[(i, 1)]).collect();
        let mut dnn = DnnRegressor::new(small_config(1));
        dnn.fit(&x, &y).unwrap();
        let p = dnn.predict(&x).unwrap();
        let mse = Loss::Mse.compute(&y, &p);
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn learns_nonlinear_function() {
        // y = x0² - the reason the paper needs more than LinReg.
        let x = Matrix::from_fn(80, 1, |i, _| i as f64 / 40.0 - 1.0);
        let y: Vec<f64> = (0..80).map(|i| x[(i, 0)] * x[(i, 0)]).collect();
        let mut dnn = DnnRegressor::new(small_config(2));
        dnn.fit(&x, &y).unwrap();
        let p = dnn.predict(&x).unwrap();
        let mse = Loss::Mse.compute(&y, &p);
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn deterministic_per_seed() {
        let x = Matrix::from_fn(32, 2, |i, j| (i + j) as f64 / 10.0);
        let y: Vec<f64> = (0..32).map(|i| (i % 5) as f64).collect();
        let fit = |seed| {
            let mut m = DnnRegressor::new(small_config(seed));
            m.fit(&x, &y).unwrap();
            m.predict(&x).unwrap()
        };
        assert_eq!(fit(7), fit(7));
        assert_ne!(fit(7), fit(8));
    }

    #[test]
    fn paper_architecture_has_six_layers() {
        let mut dnn = DnnRegressor::paper_config(0);
        let x = Matrix::from_fn(8, 3, |i, j| (i * j) as f64);
        let y = vec![0.0; 8];
        // Shrink training so the test stays fast.
        dnn.config.epochs = 1;
        dnn.fit(&x, &y).unwrap();
        assert_eq!(dnn.layers.len(), 6);
        assert_eq!(dnn.layers[0].w.rows(), 128);
        assert_eq!(dnn.layers[5].w.rows(), 1);
    }

    #[test]
    fn uncertainty_is_finite_and_shared_across_rows() {
        let x = Matrix::from_fn(32, 2, |i, j| (i + j) as f64 / 10.0);
        let y: Vec<f64> = (0..32).map(|i| (i % 5) as f64).collect();
        let mut dnn = DnnRegressor::new(small_config(3));
        dnn.fit(&x, &y).unwrap();
        let (means, stds) = dnn.predict_with_uncertainty(&x).unwrap();
        assert_eq!(means.len(), stds.len());
        assert!(stds.iter().all(|s| s.is_finite() && *s >= 0.0));
        assert!(stds.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn unfitted_prediction_fails() {
        let dnn = DnnRegressor::new(small_config(0));
        assert!(matches!(
            dnn.predict(&Matrix::zeros(1, 2)),
            Err(PredictError::NotFitted)
        ));
    }
}
