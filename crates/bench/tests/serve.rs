//! End-to-end coverage of the serve protocol's unified `fidelity`
//! field: opening tenants at a named tier, escalated tunes with a
//! spec-named exploration tier, the deprecated per-field escalation
//! form (still accepted, answered with a note), and grammar errors as
//! handler failures.

use simtune_bench::serve::{roundtrip, Request, Server};
use simtune_core::SimService;

fn req(op: &str) -> Request {
    Request {
        id: 11,
        op: op.into(),
        ..Request::default()
    }
}

fn server() -> Server {
    Server::new(SimService::builder().n_parallel(2).build())
}

fn open_req(tenant: &str, fidelity: Option<&str>) -> Request {
    Request {
        tenant: Some(tenant.into()),
        workload: Some("matmul".into()),
        dim: Some(6),
        impls: Some(10),
        seed: Some(42),
        fidelity: fidelity.map(Into::into),
        ..req("open")
    }
}

#[test]
fn open_accepts_a_fidelity_spec_and_echoes_the_tier() {
    let mut server = server();
    let resp = roundtrip(
        &mut server,
        &open_req("pipe", Some("pipelined:btb=64,ras=4")),
    )
    .unwrap();
    assert!(resp.ok, "open failed: {:?}", resp.error);
    let msg = resp.message.unwrap();
    assert!(msg.contains("pipelined:btb=64,ras=4"), "{msg}");

    // Omitting the field keeps the historical accurate default.
    let resp = roundtrip(&mut server, &open_req("plain", None)).unwrap();
    assert!(resp.ok);
    assert!(resp.message.unwrap().contains("at accurate"));
}

#[test]
fn malformed_fidelity_is_a_handler_error_with_the_grammar() {
    let mut server = server();
    let resp = roundtrip(&mut server, &open_req("bad", Some("warp-speed"))).unwrap();
    assert!(!resp.ok);
    let err = resp.error.unwrap();
    assert!(err.contains("expected"), "{err}");
    // The name was never claimed, so a corrected open succeeds.
    assert!(
        roundtrip(&mut server, &open_req("bad", Some("accurate")))
            .unwrap()
            .ok
    );
}

#[test]
fn tune_with_fidelity_runs_spec_tier_escalation_without_a_note() {
    let mut server = server();
    assert!(roundtrip(&mut server, &open_req("t", None)).unwrap().ok);
    let tune = Request {
        tenant: Some("t".into()),
        n_trials: Some(8),
        batch_size: Some(4),
        seed: Some(1),
        strategy: Some("random".into()),
        fidelity: Some("pipelined".into()),
        ..req("tune")
    };
    let resp = roundtrip(&mut server, &tune).unwrap();
    assert!(resp.ok, "tune failed: {:?}", resp.error);
    assert!(resp.best_score.unwrap().is_finite());
    assert_eq!(resp.trials, Some(8));
    // Spec-named top-k escalation is not the learned tier: no predictor
    // counters, and no deprecation note — this IS the preferred form.
    assert!(resp.escalations.is_none());
    assert!(resp.message.is_none(), "{:?}", resp.message);

    // Same seed on the fast-count tier also completes.
    let fast = Request {
        fidelity: Some("fast-count".into()),
        ..tune
    };
    let resp = roundtrip(&mut server, &fast).unwrap();
    assert!(resp.ok, "fast-count tune failed: {:?}", resp.error);
}

#[test]
fn per_field_escalation_still_works_but_carries_a_deprecation_note() {
    let mut server = server();
    assert!(roundtrip(&mut server, &open_req("old", None)).unwrap().ok);
    let tune = Request {
        tenant: Some("old".into()),
        n_trials: Some(8),
        batch_size: Some(4),
        seed: Some(1),
        strategy: Some("random".into()),
        escalation_budget: Some(6),
        escalation_confidence: Some(1.0),
        ..req("tune")
    };
    let resp = roundtrip(&mut server, &tune).unwrap();
    assert!(resp.ok, "legacy escalated tune failed: {:?}", resp.error);
    assert!(resp.escalations.is_some(), "uncertainty tier still runs");
    let msg = resp.message.expect("ok:true response carries the note");
    assert!(msg.contains("deprecated"), "{msg}");
    assert!(msg.contains("fidelity"), "{msg}");

    // Adding the spec alongside the knobs silences the note: the
    // request is then fully in the new form.
    let both = Request {
        fidelity: Some("fast-count".into()),
        ..tune
    };
    let resp = roundtrip(&mut server, &both).unwrap();
    assert!(resp.ok, "{:?}", resp.error);
    assert!(resp.message.is_none());
    assert!(resp.escalations.is_some());
}

#[test]
fn old_wire_frames_without_the_fidelity_member_still_parse() {
    // A pre-spec client omits the `fidelity` member entirely; the
    // vendored serde normally rejects missing members, so the field
    // must be explicitly defaulted for wire compatibility.
    let mut server = server();
    let json = r#"{"id":5,"op":"ping","tenant":null,"arch":null,"workload":null,
        "dim":null,"impls":null,"n_trials":null,"batch_size":null,"seed":null,
        "strategy":null,"path":null,"escalation_budget":null,"escalation_confidence":null}"#;
    let req: Request = serde_json::from_str(json).expect("pre-spec frame parses");
    assert!(req.fidelity.is_none());
    let (resp, done) = server.handle(&req);
    assert!(resp.ok);
    assert!(!done);
}
