//! Criterion bench: cost of one execution-phase tuning step — generate
//! a candidate, build it, simulate it, extract features and score it —
//! the unit of work the paper parallelizes over simulator instances.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simtune_core::{
    collect_group_data, raw_sample, CollectOptions, FeatureConfig, KernelBuilder, ScorePredictor,
    SimSession, WindowKind, WindowNormalizer,
};
use simtune_hw::TargetSpec;
use simtune_isa::{simulate, RunLimits};
use simtune_predict::PredictorKind;
use simtune_tensor::{matmul, SketchGenerator};

fn tuning_step(c: &mut Criterion) {
    let def = matmul(16, 16, 16);
    let spec = TargetSpec::riscv_u74();
    // A small trained predictor to score with.
    let data = collect_group_data(
        &def,
        &spec,
        0,
        &CollectOptions {
            n_impls: 24,
            n_parallel: 4,
            seed: 3,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        },
    )
    .expect("collects");
    let mut predictor = ScorePredictor::new(PredictorKind::Xgboost, "riscv", "matmul", 1);
    predictor
        .train(std::slice::from_ref(&data))
        .expect("trains");

    let generator = SketchGenerator::new(&def, spec.isa.clone());
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let mut rng = StdRng::seed_from_u64(7);

    let mut group = c.benchmark_group("tuning");
    group.sample_size(20);
    group.bench_function("one_candidate_end_to_end", |b| {
        let mut normalizer = WindowNormalizer::new(WindowKind::Dynamic);
        b.iter(|| {
            let params = generator.random(&mut rng);
            let schedule = generator.schedule(&params);
            let Ok(exe) = builder.build(&schedule, "bench") else {
                return;
            };
            let stats = simulate(&exe, &spec.hierarchy, RunLimits::default())
                .expect("runs")
                .stats;
            let score = predictor
                .score_streaming(&stats, &mut normalizer)
                .expect("scores");
            black_box(score);
        });
    });
    group.bench_function("feature_extraction_only", |b| {
        let stats = &data.stats[0];
        b.iter(|| black_box(raw_sample(stats, &FeatureConfig::default())));
    });
    group.bench_function("parallel_batch_of_8", |b| {
        let schedules: Vec<_> = (0..8)
            .map(|_| generator.schedule(&generator.random(&mut rng)))
            .collect();
        let exes: Vec<_> = builder
            .build_batch(&schedules)
            .into_iter()
            .flatten()
            .collect();
        let session = SimSession::builder()
            .accurate(&spec.hierarchy)
            .n_parallel(8)
            .build()
            .expect("backend configured");
        b.iter(|| black_box(session.run_stats(&exes)));
    });
    group.finish();
}

criterion_group!(benches, tuning_step);
criterion_main!(benches);
