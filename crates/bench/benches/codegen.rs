//! Criterion bench: the builder path — schedule application, lowering
//! and code generation. This bounds how fast candidate batches can be
//! prepared for the simulator pool.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simtune_tensor::{
    build_executable, conv2d_bias_relu, lower, Conv2dShape, Schedule, SketchGenerator, TargetIsa,
};

fn conv_def() -> simtune_tensor::ComputeDef {
    conv2d_bias_relu(&Conv2dShape {
        n: 1,
        h: 28,
        w: 28,
        co: 16,
        ci: 8,
        kh: 3,
        kw: 3,
        stride: (1, 1),
        pad: (1, 1),
    })
}

fn lowering(c: &mut Criterion) {
    let def = conv_def();
    let target = TargetIsa::x86_ryzen_5800x();
    let schedule = Schedule::default_for(&def);
    c.bench_function("lower_conv2d_default", |b| {
        b.iter(|| black_box(lower(&def, &schedule, &target).expect("lowers")));
    });
}

fn full_build(c: &mut Criterion) {
    let def = conv_def();
    let target = TargetIsa::x86_ryzen_5800x();
    let generator = SketchGenerator::new(&def, target.clone());
    let mut rng = StdRng::seed_from_u64(1);
    let schedules: Vec<Schedule> = (0..16)
        .map(|_| generator.schedule(&generator.random(&mut rng)))
        .filter(|s| s.apply(&def, &target).is_ok())
        .collect();
    c.bench_function("build_conv2d_sketch_batch", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let s = &schedules[i % schedules.len()];
            i += 1;
            black_box(build_executable(&def, s, &target, 1, "bench").expect("builds"))
        });
    });
}

fn sketch_sampling(c: &mut Criterion) {
    let def = conv_def();
    let generator = SketchGenerator::new(&def, TargetIsa::arm_cortex_a72());
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("sketch_random_sample", |b| {
        b.iter(|| black_box(generator.random(&mut rng)));
    });
}

criterion_group!(benches, lowering, full_build, sketch_sampling);
criterion_main!(benches);
