//! Criterion bench: what each rung of the replay ladder buys.
//!
//! * `interp` vs `decoded` vs `threaded` — per-run cost of the
//!   re-decoding interpreter, the pre-decoded µop array, and the
//!   threaded-code form (pre-bound handler pointers with pre-resolved
//!   successors), on the paper's matmul workload.
//! * `decode_once` / `lower_once` — the one-time lowering costs being
//!   amortized.
//! * `batch4_lanes` — four same-program trials replayed as one SoA
//!   batch; compare its per-iteration time against 4x `decoded`.
//! * `memo_cold` vs `memo_warm` — a full backend execution on a memo
//!   miss against answering the same candidate from the [`SimCache`].

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simtune_core::{KernelBuilder, SimCache, SimSession};
use simtune_hw::TargetSpec;
use simtune_isa::{
    AtomicCpu, BatchEngine, BatchLane, DecodedEngine, DecodedProgram, ExecEngine, InterpEngine,
    Memory, NoopHook, RunLimits, ThreadedEngine, ThreadedProgram,
};
use simtune_tensor::{matmul, Schedule};
use std::sync::Arc;

fn decode_overhead(c: &mut Criterion) {
    let def = matmul(16, 16, 16);
    let spec = TargetSpec::riscv_u74();
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let exe = builder
        .build(&Schedule::default_for(&def), "mm16")
        .expect("default schedule builds");
    let limits = RunLimits::default();
    let decoded = exe.decode().expect("decodes");

    let mut group = c.benchmark_group("decode_overhead");
    group.bench_function("interp", |b| {
        let engine = InterpEngine::new(&exe.program);
        b.iter(|| {
            let mut cpu = AtomicCpu::new(&exe.target);
            let mut mem = Memory::new();
            let mut hier = simtune_cache::CacheHierarchy::new(spec.hierarchy.clone());
            black_box(
                engine
                    .run_with_hook(&mut cpu, &mut mem, &mut hier, limits, &mut NoopHook)
                    .expect("runs"),
            )
        });
    });
    group.bench_function("decoded", |b| {
        let engine = DecodedEngine::new(&decoded);
        b.iter(|| {
            let mut cpu = AtomicCpu::new(&exe.target);
            let mut mem = Memory::new();
            let mut hier = simtune_cache::CacheHierarchy::new(spec.hierarchy.clone());
            black_box(
                engine
                    .run_with_hook(&mut cpu, &mut mem, &mut hier, limits, &mut NoopHook)
                    .expect("runs"),
            )
        });
    });
    group.bench_function("threaded", |b| {
        let threaded = ThreadedProgram::lower(&decoded);
        let engine = ThreadedEngine::new(&threaded);
        b.iter(|| {
            let mut cpu = AtomicCpu::new(&exe.target);
            let mut mem = Memory::new();
            let mut hier = simtune_cache::CacheHierarchy::new(spec.hierarchy.clone());
            black_box(
                engine
                    .run_with_hook(&mut cpu, &mut mem, &mut hier, limits, &mut NoopHook)
                    .expect("runs"),
            )
        });
    });
    group.bench_function("decode_once", |b| {
        b.iter(|| black_box(DecodedProgram::decode(&exe.program, &exe.target).expect("decodes")));
    });
    group.bench_function("lower_once", |b| {
        b.iter(|| black_box(ThreadedProgram::lower(&decoded)));
    });
    // Four same-program lanes in one SoA loop: one iteration does 4
    // trials' work, so divide the reported time by 4 before comparing
    // against `decoded`.
    group.bench_function("batch4_lanes", |b| {
        let engine = BatchEngine::new(&decoded);
        b.iter(|| {
            let mut cpus: Vec<AtomicCpu> = (0..4).map(|_| AtomicCpu::new(&exe.target)).collect();
            let mut mems: Vec<Memory> = (0..4).map(|_| Memory::new()).collect();
            let mut hiers: Vec<simtune_cache::CacheHierarchy> = (0..4)
                .map(|_| simtune_cache::CacheHierarchy::new(spec.hierarchy.clone()))
                .collect();
            let mut hooks: Vec<NoopHook> = (0..4).map(|_| NoopHook).collect();
            let mut lanes: Vec<BatchLane<'_, NoopHook>> = cpus
                .iter_mut()
                .zip(mems.iter_mut())
                .zip(hiers.iter_mut())
                .zip(hooks.iter_mut())
                .map(|(((cpu, mem), hier), hook)| BatchLane {
                    cpu,
                    mem,
                    hier,
                    hook,
                })
                .collect();
            black_box(engine.run_lanes(&mut lanes, limits))
        });
    });

    // Memo layer: a miss pays one full accurate execution; a warm hit
    // pays a fingerprint + hash-map probe.
    group.bench_function("memo_cold", |b| {
        b.iter(|| {
            let session = SimSession::builder()
                .accurate(&spec.hierarchy)
                .n_parallel(1)
                .memo_cache(Arc::new(SimCache::new()))
                .build()
                .expect("builds");
            black_box(session.run(std::slice::from_ref(&exe)))
        });
    });
    group.bench_function("memo_warm", |b| {
        let cache = Arc::new(SimCache::new());
        let session = SimSession::builder()
            .accurate(&spec.hierarchy)
            .n_parallel(1)
            .memo_cache(cache)
            .build()
            .expect("builds");
        session.run(std::slice::from_ref(&exe)); // prime
        b.iter(|| black_box(session.run(std::slice::from_ref(&exe))));
    });
    group.finish();
}

criterion_group!(benches, decode_overhead);
criterion_main!(benches);
