//! Criterion bench: host cost of the three bundled fidelity tiers on
//! one matmul candidate. The gap between `accurate` and `fast-count` is
//! the speed-for-fidelity headroom the backend API exposes. `sampled`
//! pays a counting pre-pass plus the accurate prefix, so on a kernel
//! this small it costs about as much as `accurate`; its win appears on
//! larger candidates where the cache-modeled fraction dominates.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simtune_core::{AccurateBackend, FastCountBackend, KernelBuilder, SampledBackend, SimBackend};
use simtune_hw::TargetSpec;
use simtune_isa::RunLimits;
use simtune_tensor::{matmul, Schedule};

fn backend_overhead(c: &mut Criterion) {
    let def = matmul(16, 16, 16);
    let spec = TargetSpec::riscv_u74();
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let exe = builder
        .build(&Schedule::default_for(&def), "mm16")
        .expect("default schedule builds");
    let limits = RunLimits::default();

    let backends: Vec<Box<dyn SimBackend>> = vec![
        Box::new(AccurateBackend::new(spec.hierarchy.clone())),
        Box::new(FastCountBackend::matching(&spec.hierarchy)),
        Box::new(
            SampledBackend::new(spec.hierarchy.clone(), 0.25)
                .expect("valid fraction")
                .with_min_insts(1),
        ),
    ];

    let mut group = c.benchmark_group("backend_overhead");
    for backend in &backends {
        group.bench_function(backend.name(), |b| {
            b.iter(|| black_box(backend.run_one(&exe, &limits).expect("runs")));
        });
    }
    group.finish();
}

criterion_group!(benches, backend_overhead);
criterion_main!(benches);
