//! Criterion bench: fit and predict cost of the four predictor
//! families on feature matrices shaped like the paper's (hundreds of
//! samples, ~50 features).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simtune_linalg::Matrix;
use simtune_predict::{DnnConfig, DnnRegressor, PredictorKind, Regressor};

fn synthetic(n: usize, d: usize) -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(n, d, |i, j| {
        (((i * 31 + j * 17) % 101) as f64 / 101.0) - 0.5
    });
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let r = x.row(i);
            r[0] * 2.0 - r[1] + r[2] * r[3] * 3.0 + (r[4] * 5.0).sin() * 0.2
        })
        .collect();
    (x, y)
}

fn fit_benchmarks(c: &mut Criterion) {
    let (x, y) = synthetic(300, 45);
    let mut group = c.benchmark_group("predictor_fit_300x45");
    group.sample_size(10);
    for kind in [
        PredictorKind::LinReg,
        PredictorKind::Bayes,
        PredictorKind::Xgboost,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| {
                let mut m = kind.build(1);
                m.fit(&x, &y).expect("fits");
                black_box(m.predict(&x).expect("predicts"))
            });
        });
    }
    // The paper DNN at full depth is too slow for a tight bench loop;
    // use a shortened schedule that still exercises the same code.
    group.bench_function("DNN(10 epochs)", |b| {
        b.iter(|| {
            let mut m = DnnRegressor::new(DnnConfig {
                epochs: 10,
                ..DnnConfig::default()
            });
            m.fit(&x, &y).expect("fits");
            black_box(m.predict(&x).expect("predicts"))
        });
    });
    group.finish();
}

fn predict_benchmarks(c: &mut Criterion) {
    let (x, y) = synthetic(300, 45);
    let mut group = c.benchmark_group("predictor_predict_300x45");
    for kind in [
        PredictorKind::LinReg,
        PredictorKind::Bayes,
        PredictorKind::Xgboost,
    ] {
        let mut m = kind.build(1);
        m.fit(&x, &y).expect("fits");
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            b.iter(|| black_box(m.predict(&x).expect("predicts")));
        });
    }
    group.finish();
}

criterion_group!(benches, fit_benchmarks, predict_benchmarks);
criterion_main!(benches);
