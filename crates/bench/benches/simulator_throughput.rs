//! Criterion bench: end-to-end instruction throughput of the
//! instruction-accurate simulator (instructions per second determine
//! `t_simulator` in Equation 4) and of the timing model on top of it.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use simtune_hw::{measure_base_seconds, TargetSpec};
use simtune_isa::{simulate, RunLimits, TargetIsa};
use simtune_tensor::{build_executable, matmul, Schedule};

fn kernel_exe(target: &TargetIsa) -> simtune_isa::Executable {
    let def = matmul(16, 16, 16);
    build_executable(&def, &Schedule::default_for(&def), target, 1, "bench").expect("builds")
}

fn atomic_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_atomic");
    for spec in TargetSpec::paper_targets() {
        let exe = kernel_exe(&spec.isa);
        // Instruction count of one run, for ns/inst readouts.
        let insts = simulate(&exe, &spec.hierarchy, RunLimits::default())
            .expect("runs")
            .stats
            .inst_mix
            .total();
        group.throughput(Throughput::Elements(insts));
        group.bench_function(format!("matmul16_{}", spec.isa.name), |b| {
            b.iter(|| {
                black_box(
                    simulate(&exe, &spec.hierarchy, RunLimits::default())
                        .expect("runs")
                        .stats
                        .inst_mix
                        .total(),
                )
            });
        });
    }
    group.finish();
}

fn timing_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_timing");
    for spec in TargetSpec::paper_targets() {
        let exe = kernel_exe(&spec.isa);
        group.bench_function(format!("matmul16_{}", spec.isa.name), |b| {
            b.iter(|| black_box(measure_base_seconds(&exe, &spec).expect("runs")));
        });
    }
    group.finish();
}

criterion_group!(benches, atomic_simulation, timing_simulation);
criterion_main!(benches);
