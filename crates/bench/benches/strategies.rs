//! Criterion bench: search-strategy comparison at a fixed simulation
//! budget.
//!
//! Every strategy tunes the same matmul kernel with the same trained
//! predictor, the same seed and the same trial budget, so differences
//! in wall-clock come from the strategy's own bookkeeping (population
//! maintenance, neighborhood walks, enumeration) plus any variation in
//! which candidates it chooses to simulate. Read together with
//! `strategy_sweep`'s convergence table this shows the full trade:
//! per-batch overhead here, candidate quality there.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simtune_core::{
    collect_group_data, tune_with_predictor, CollectOptions, ScorePredictor, StrategySpec,
    TuneOptions,
};
use simtune_hw::TargetSpec;
use simtune_predict::PredictorKind;
use simtune_tensor::matmul;

fn strategies_at_fixed_budget(c: &mut Criterion) {
    let def = matmul(16, 16, 16);
    let spec = TargetSpec::riscv_u74();
    let data = collect_group_data(
        &def,
        &spec,
        0,
        &CollectOptions {
            n_impls: 24,
            n_parallel: 4,
            seed: 3,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        },
    )
    .expect("collects");
    let mut predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
    predictor
        .train(std::slice::from_ref(&data))
        .expect("trains");

    let mut group = c.benchmark_group("strategies_16_trials");
    group.sample_size(10);
    for strategy in StrategySpec::all() {
        let opts = TuneOptions {
            n_trials: 16,
            batch_size: 8,
            n_parallel: 4,
            seed: 7,
            strategy: strategy.clone(),
            ..TuneOptions::default()
        };
        group.bench_function(strategy.label(), |b| {
            b.iter(|| {
                let result = tune_with_predictor(&def, &spec, &predictor, &opts).expect("tunes");
                black_box(result.best_index);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, strategies_at_fixed_budget);
criterion_main!(benches);
