//! Criterion bench: raw access throughput of the cache model — the
//! hot path of every simulation (each instruction triggers at least an
//! I-fetch access).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use simtune_cache::{
    AccessKind, Cache, CacheConfig, CacheHierarchy, HierarchyConfig, ReplacementPolicy,
};

fn single_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_single");
    group.throughput(Throughput::Elements(1024));
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::TreePlru] {
        group.bench_function(format!("l1d_{policy}_sequential"), |b| {
            let cfg = CacheConfig::new("L1D", 32 * 1024, 64, 8, 64, policy).expect("valid");
            let mut cache = Cache::new(cfg);
            b.iter(|| {
                for i in 0..1024u64 {
                    black_box(cache.access(i * 64, AccessKind::Read));
                }
            });
        });
    }
    group.bench_function("l1d_lru_hit_loop", |b| {
        let cfg =
            CacheConfig::new("L1D", 32 * 1024, 64, 8, 64, ReplacementPolicy::Lru).expect("valid");
        let mut cache = Cache::new(cfg);
        // Warm: a 4 KiB working set, all hits afterwards.
        for i in 0..64u64 {
            cache.access(i * 64, AccessKind::Read);
        }
        b.iter(|| {
            for i in 0..1024u64 {
                black_box(cache.access((i % 64) * 64, AccessKind::Read));
            }
        });
    });
    group.finish();
}

fn hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_hierarchy");
    group.throughput(Throughput::Elements(1024));
    for preset in ["x86", "arm", "riscv"] {
        group.bench_function(format!("{preset}_streaming_reads"), |b| {
            let cfg = match preset {
                "x86" => HierarchyConfig::x86_ryzen_5800x(),
                "arm" => HierarchyConfig::arm_cortex_a72(),
                _ => HierarchyConfig::riscv_u74(),
            };
            let mut h = CacheHierarchy::new(cfg);
            let mut addr = 0u64;
            b.iter(|| {
                for _ in 0..1024 {
                    black_box(h.data_read(addr));
                    addr = addr.wrapping_add(64);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, single_cache, hierarchy);
criterion_main!(benches);
