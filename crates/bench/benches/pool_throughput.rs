//! Criterion bench: persistent worker pool vs. the historical
//! per-batch scoped-thread executor.
//!
//! The tuning loops hand the session thousands of small batches per
//! sweep. The old executor spawned and joined `n_parallel` scoped
//! threads *per batch*, so the spawn/join cost was paid on every one of
//! them; the persistent pool pays it once per session and feeds workers
//! through a chunked deque. The `scoped_baseline` functions below
//! reproduce the old executor verbatim (atomic index, one results
//! mutex, fresh `thread::scope` per batch) so the comparison isolates
//! exactly the harness cost the pool removes — both sides run the same
//! fast-count backend on the same candidates.
//!
//! Expected shape: at batch sizes >= 8 the pool wins and the gap widens
//! as per-trial simulation gets cheaper (tiny kernels) because the
//! fixed spawn/join overhead stops being amortized.
//!
//! The `engine_*` functions compare replay engines on the same session
//! shape: `engine_decoded` replays each trial solo, `engine_threaded`
//! swaps in threaded-code dispatch, and `engine_batch` groups the
//! batch's same-program trials into one SoA replay — the >= 20 %
//! same-program throughput win the raw-speed tentpole claims.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simtune_core::{EngineKind, FastCountBackend, KernelBuilder, SimBackend, SimSession};
use simtune_hw::TargetSpec;
use simtune_isa::{Executable, RunLimits};
use simtune_tensor::{matmul, Schedule};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const N_PARALLEL: usize = 4;

/// The pre-pool executor, reproduced for comparison: spawn a scope of
/// workers per batch, share one results mutex, join everything before
/// returning.
fn scoped_baseline(backend: &FastCountBackend, exes: &[Executable], limits: &RunLimits) {
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<u64>>> = Mutex::new(vec![None; exes.len()]);
    let workers = N_PARALLEL.min(exes.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= exes.len() {
                    break;
                }
                let decoded = exes[i].decode().expect("decodes");
                let report = backend
                    .run_one_decoded(&exes[i], &decoded, limits)
                    .expect("runs");
                results.lock().expect("results")[i] = Some(report.stats.inst_mix.total());
            });
        }
    });
    black_box(results.into_inner().expect("results"));
}

fn pool_throughput(c: &mut Criterion) {
    // Small kernel on purpose: a sweep's harness overhead matters most
    // when per-trial simulation is cheap (memo hits, fast-count tiers),
    // which is exactly the regime the paper's throughput argument needs.
    let def = matmul(4, 4, 4);
    let spec = TargetSpec::riscv_u74();
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let schedule = Schedule::default_for(&def);
    let limits = RunLimits::default();
    let backend = FastCountBackend::matching(&spec.hierarchy);

    for batch_size in [8usize, 32] {
        let exes: Vec<Executable> = (0..batch_size)
            .map(|i| builder.build(&schedule, &format!("mm{i}")).expect("builds"))
            .collect();

        let mut group = c.benchmark_group(format!("pool_throughput/batch{batch_size}"));
        // One session for the whole measurement: workers are spawned
        // once, every iteration reuses them — the steady state of a
        // tuning sweep.
        let session = SimSession::builder()
            .fast_count(&spec.hierarchy)
            .n_parallel(N_PARALLEL)
            .build()
            .expect("builds session");
        group.bench_function("persistent_pool", |b| {
            b.iter(|| black_box(session.run(&exes)));
        });
        group.bench_function("scoped_per_batch", |b| {
            b.iter(|| scoped_baseline(&backend, &exes, &limits));
        });
        // The async path the pipelined loops use: next batch submitted
        // before the previous is drained, so producer-side work hides
        // in the pool's shadow.
        group.bench_function("pool_submit_overlapped", |b| {
            b.iter(|| {
                let first = session.submit(exes.clone());
                let second = session.submit(exes.clone());
                black_box(first.wait());
                black_box(second.wait());
            });
        });
        // Replay-engine ladder on the identical batch (all trials share
        // one program, the SoA grouping's best case and the common case
        // inside a tuning sweep's duplicate-heavy batches).
        for engine in [EngineKind::Decoded, EngineKind::Threaded, EngineKind::Batch] {
            let session = SimSession::builder()
                .fast_count(&spec.hierarchy)
                .n_parallel(N_PARALLEL)
                .engine(engine)
                .build()
                .expect("builds session");
            group.bench_function(format!("engine_{engine}"), |b| {
                b.iter(|| black_box(session.run(&exes)));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, pool_throughput);
criterion_main!(benches);
