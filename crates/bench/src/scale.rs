//! Workload scaling (DESIGN.md §7): the paper's Table II shapes and
//! proportionally reduced variants that preserve the memory-access
//! structure while fitting a laptop compute budget.

use simtune_tensor::Conv2dShape;

/// Experiment scale selecting the Conv2D group shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Table II shapes, unmodified (the published experiment).
    Paper,
    /// Spatial dims / 2, channels / 2.
    Half,
    /// Spatial dims / 4, channels / 4 (default; minutes on a laptop).
    #[default]
    Quarter,
    /// Spatial dims / 8, channels / 8 (CI-sized smoke runs).
    Smoke,
}

impl Scale {
    /// Parses a scale label.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "paper" => Some(Scale::Paper),
            "half" => Some(Scale::Half),
            "quarter" => Some(Scale::Quarter),
            "smoke" => Some(Scale::Smoke),
            _ => None,
        }
    }

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Half => "half",
            Scale::Quarter => "quarter",
            Scale::Smoke => "smoke",
        }
    }

    /// `(spatial divisor, channel divisor)`.
    pub fn divisors(self) -> (usize, usize) {
        match self {
            Scale::Paper => (1, 1),
            Scale::Half => (2, 2),
            Scale::Quarter => (4, 4),
            Scale::Smoke => (8, 8),
        }
    }

    /// The five Conv2D+Bias+ReLU groups at this scale.
    pub fn conv_groups(self) -> Vec<Conv2dShape> {
        let (sd, cd) = self.divisors();
        Conv2dShape::paper_groups()
            .into_iter()
            .map(|g| {
                if sd == 1 && cd == 1 {
                    g
                } else {
                    g.scaled(sd, cd)
                }
            })
            .collect()
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_identity() {
        assert_eq!(Scale::Paper.conv_groups(), Conv2dShape::paper_groups());
    }

    #[test]
    fn scaled_groups_shrink_monotonically() {
        let paper: u64 = Scale::Paper.conv_groups().iter().map(|g| g.macs()).sum();
        let quarter: u64 = Scale::Quarter.conv_groups().iter().map(|g| g.macs()).sum();
        let smoke: u64 = Scale::Smoke.conv_groups().iter().map(|g| g.macs()).sum();
        assert!(paper > quarter && quarter > smoke);
    }

    #[test]
    fn parse_roundtrip() {
        for s in [Scale::Paper, Scale::Half, Scale::Quarter, Scale::Smoke] {
            assert_eq!(Scale::parse(s.label()), Some(s));
        }
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn all_scaled_groups_stay_valid() {
        for scale in [Scale::Half, Scale::Quarter, Scale::Smoke] {
            for g in scale.conv_groups() {
                simtune_tensor::conv2d_bias_relu(&g)
                    .validate()
                    .expect("scaled group validates");
            }
        }
    }
}
