//! Dataset collection shared by the experiment binaries.

use crate::{load_groups, store_groups, Args, Scale};
use simtune_core::{collect_group_data, CollectOptions, CoreError, GroupData};
use simtune_hw::TargetSpec;
use simtune_tensor::conv2d_bias_relu;
use std::path::PathBuf;
use std::time::Instant;

/// Fully resolved configuration of one collection run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Target label ("x86", "arm", "riscv").
    pub arch: String,
    /// Workload scale.
    pub scale: Scale,
    /// Implementations per group.
    pub impls: usize,
    /// Parallel simulator instances.
    pub n_parallel: usize,
    /// Base seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Builds one per requested architecture from parsed CLI args.
    pub fn from_args(args: &Args) -> Vec<ExperimentConfig> {
        args.archs
            .iter()
            .map(|arch| ExperimentConfig {
                arch: arch.clone(),
                scale: args.scale,
                impls: args.impls,
                n_parallel: args.n_parallel,
                seed: args.seed,
            })
            .collect()
    }
}

/// Cache-file location for one configuration.
pub fn dataset_cache_path(cfg: &ExperimentConfig) -> PathBuf {
    PathBuf::from("target/simtune-datasets").join(format!(
        "conv2d_{}_{}_{}impls_seed{}.json",
        cfg.arch,
        cfg.scale.label(),
        cfg.impls,
        cfg.seed
    ))
}

/// Collects (or loads from cache) the five Conv2D group datasets for one
/// architecture: the training-phase data of the paper's Fig. 4.
///
/// # Errors
///
/// Propagates collection failures; cache I/O problems fall back to
/// recollection.
pub fn collect_arch_datasets(
    cfg: &ExperimentConfig,
    refresh: bool,
) -> Result<Vec<GroupData>, CoreError> {
    let path = dataset_cache_path(cfg);
    if !refresh {
        if let Ok(Some(groups)) = load_groups(&path) {
            eprintln!(
                "[{}] loaded cached datasets from {}",
                cfg.arch,
                path.display()
            );
            return Ok(groups);
        }
    }
    let spec = TargetSpec::by_name(&cfg.arch)
        .ok_or_else(|| CoreError::Pipeline(format!("unknown arch {}", cfg.arch)))?;
    let shapes = cfg.scale.conv_groups();
    let mut groups = Vec::with_capacity(shapes.len());
    for (gid, shape) in shapes.iter().enumerate() {
        let def = conv2d_bias_relu(shape);
        let started = Instant::now();
        let data = collect_group_data(
            &def,
            &spec,
            gid,
            &CollectOptions {
                n_impls: cfg.impls,
                n_parallel: cfg.n_parallel,
                seed: cfg.seed,
                max_attempts_factor: 30,
                ..CollectOptions::default()
            },
        )?;
        eprintln!(
            "[{}] group {gid}: {} impls collected in {:.1}s \
             (t_ref {:.3}ms..{:.3}ms, {:.0}M MACs)",
            cfg.arch,
            data.len(),
            started.elapsed().as_secs_f64(),
            data.t_ref.iter().cloned().fold(f64::INFINITY, f64::min) * 1e3,
            data.t_ref.iter().cloned().fold(0.0, f64::max) * 1e3,
            shape.macs() as f64 / 1e6,
        );
        groups.push(data);
    }
    if let Err(e) = store_groups(&path, &groups) {
        eprintln!("[{}] warning: could not cache datasets: {e}", cfg.arch);
    }
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_expansion_and_cache_path() {
        let args = Args::default();
        let cfgs = ExperimentConfig::from_args(&args);
        assert_eq!(cfgs.len(), 3);
        let p = dataset_cache_path(&cfgs[0]);
        assert!(p.to_string_lossy().contains("x86"));
        assert!(p.to_string_lossy().contains("quarter"));
    }
}
