//! Protocol and request handling for `simtune_serve`, the
//! tuning-as-a-service front end over [`simtune_core::SimService`].
//!
//! # Wire format
//!
//! Length-prefixed JSON over any byte stream (stdin/stdout or a unix
//! socket): each frame is a big-endian `u32` byte length followed by
//! exactly that many bytes of JSON. Requests and responses are complete
//! [`Request`] / [`Response`] objects — every field is present in every
//! frame, with `null` for the fields an operation does not use (the
//! vendored serde rejects missing members by design).
//!
//! # Operations
//!
//! | `op` | uses | effect |
//! |---|---|---|
//! | `ping` | — | liveness check |
//! | `open` | `tenant`, `arch`, `workload`, `dim`, `impls`, `seed`, `fidelity` | open a named tenant, collect a training set and fit its score predictor |
//! | `tune` | `tenant`, `n_trials`, `batch_size`, `seed`, `strategy`, `fidelity`, `escalation_budget`, `escalation_confidence` | run one predictor-guided tuning loop on the tenant's session |
//!
//! # Fidelity selection
//!
//! `open` and `tune` take one optional `fidelity` string in the
//! [`FidelitySpec`] grammar (`accurate`, `fast-count`,
//! `sampled:fraction=F`, `pipelined:btb=N,ras=N`). On `open` it names
//! the tier the tenant's session simulates at (default `accurate`); on
//! `tune` it names the exploration tier of a fidelity-escalated run —
//! cheap-tier exploration, top-k accurate finalists.
//!
//! # Escalation-policy block
//!
//! A `tune` request that sets `escalation_budget` and/or
//! `escalation_confidence` runs under the learned fidelity tier instead
//! of all-accurate simulation: candidates are explored on a
//! `PredictedBackend` and only uncertainty-selected ones escalate to the
//! accurate simulator (`EscalationPolicy::Uncertainty`; the winner is
//! always re-verified accurately). The response then echoes the run's
//! `PredictorStats` through `escalations`, `avoided_simulations` and
//! `mean_abs_rank_error`; all three are `null` for plain tunes.
//! Selecting an escalated tune through these per-field knobs alone
//! (without the unified `fidelity` spec) is the deprecated pre-spec
//! form; it still parses, and the `ok: true` response carries a
//! deprecation note in `message`.
//! | `stats` | `tenant` (optional) | per-tenant counters, or service-wide cache totals |
//! | `save_cache` | `path` | persist the shared cache snapshot (atomic) |
//! | `load_cache` | `path` | warm the shared cache (degrades to cold on corrupt files) |
//! | `close` | `tenant` | release a tenant name |
//! | `shutdown` | — | acknowledge, then end the serve loop |
//!
//! Handler errors (unknown tenant, bad strategy, …) come back as
//! `ok: false` with `error` set; the loop keeps serving. Only transport
//! failures terminate it.

use serde::{Deserialize, Serialize};
use simtune_core::{
    collect_group_data, CollectOptions, EscalationOptions, EscalationPolicy, FidelitySpec,
    ScorePredictor, SimService, TenantSession, TuneOptions, UncertaintyPolicy,
};
use simtune_hw::TargetSpec;
use simtune_predict::PredictorKind;
use simtune_tensor::{conv2d_bias_relu, matmul, ComputeDef};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;

/// Upper bound on one frame's payload; anything larger is treated as a
/// corrupt stream rather than an allocation request.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// One request frame. Unused fields are `null` on the wire.
/// `Deserialize` is hand-written (below) so that `fidelity` — added
/// after the v1 protocol shipped — may be absent from old clients'
/// frames; every other member is required.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Request {
    /// Caller-chosen correlation id, echoed on the response.
    pub id: u64,
    /// Operation name (see the module docs).
    pub op: String,
    /// Tenant name (`open`/`tune`/`stats`/`close`).
    pub tenant: Option<String>,
    /// Target architecture for `open` (`x86|arm|riscv`; default riscv).
    pub arch: Option<String>,
    /// Workload for `open` (`matmul|conv2d`; default matmul).
    pub workload: Option<String>,
    /// Square matmul dimension for `open` (default 8).
    pub dim: Option<u64>,
    /// Training-set size for `open` (default 16).
    pub impls: Option<u64>,
    /// Trial budget for `tune` (default 8).
    pub n_trials: Option<u64>,
    /// Batch size for `tune` (default 4).
    pub batch_size: Option<u64>,
    /// Seed for `open`/`tune` (default 42).
    pub seed: Option<u64>,
    /// Search strategy for `tune`
    /// (`random|grid|hill|evolutionary|annealing`; default random).
    pub strategy: Option<String>,
    /// Snapshot path (`save_cache`/`load_cache`).
    pub path: Option<String>,
    /// Fidelity tier in the unified [`FidelitySpec`] grammar, e.g.
    /// `"pipelined:btb=512,ras=8"`. On `open`, the tenant session's
    /// backend (default `accurate`); on `tune`, the exploration tier of
    /// a fidelity-escalated run.
    pub fidelity: Option<String>,
    /// Escalation-policy block, part 1: cap on accurate simulations the
    /// uncertainty sweep may spend (`tune`; winner verification is
    /// exempt). Setting this (or `escalation_confidence`) switches the
    /// tune to the learned fidelity tier.
    pub escalation_budget: Option<u64>,
    /// Escalation-policy block, part 2: confidence-band width in
    /// posterior standard deviations — a candidate escalates when
    /// `mean - confidence * std` beats the incumbent best (`tune`;
    /// default 1.0, must be finite and non-negative).
    pub escalation_confidence: Option<f64>,
}

impl serde::Deserialize for Request {
    fn deserialize(p: &mut serde::de::Parser<'_>) -> Result<Self, serde::de::Error> {
        let mut obj = serde::de::ObjectReader::parse(p)?;
        let value = Request {
            id: obj.field("id")?,
            op: obj.field("op")?,
            tenant: obj.field("tenant")?,
            arch: obj.field("arch")?,
            workload: obj.field("workload")?,
            dim: obj.field("dim")?,
            impls: obj.field("impls")?,
            n_trials: obj.field("n_trials")?,
            batch_size: obj.field("batch_size")?,
            seed: obj.field("seed")?,
            strategy: obj.field("strategy")?,
            path: obj.field("path")?,
            // Pre-spec clients omit the member entirely.
            fidelity: obj.field_or_default("fidelity")?,
            escalation_budget: obj.field("escalation_budget")?,
            escalation_confidence: obj.field("escalation_confidence")?,
        };
        obj.end()?;
        Ok(value)
    }
}

/// One response frame. Fields irrelevant to the operation are `null`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Response {
    /// Correlation id of the request.
    pub id: u64,
    /// Echo of the request's `op`.
    pub op: String,
    /// False when `error` explains a handler failure.
    pub ok: bool,
    /// Handler failure description (`ok == false`).
    pub error: Option<String>,
    /// Human-oriented detail (snapshot outcomes etc.).
    pub message: Option<String>,
    /// Best score found (`tune`).
    pub best_score: Option<f64>,
    /// Trials evaluated (`tune`) or executed by the pool (`stats`).
    pub trials: Option<u64>,
    /// Simulations submitted (`tune`).
    pub simulations: Option<u64>,
    /// Memo hits (per tenant for `tune`/tenant `stats`; service-wide
    /// otherwise).
    pub memo_hits: Option<u64>,
    /// Memo misses (same scope as `memo_hits`).
    pub memo_misses: Option<u64>,
    /// Cache entries touched: resident (`stats`), written
    /// (`save_cache`) or restored (`load_cache`).
    pub entries: Option<u64>,
    /// Open tenants (`stats` without a tenant).
    pub tenants: Option<u64>,
    /// Accurate simulations the escalated tune spent (escalated `tune`,
    /// and tenant `stats` after one; `null` otherwise).
    pub escalations: Option<u64>,
    /// Candidates settled from the learned tier without an accurate
    /// simulation (escalated `tune` / tenant `stats`).
    pub avoided_simulations: Option<u64>,
    /// Normalized mean |predicted rank − accurate rank| over the
    /// escalated pairs, 0 = perfect ordering (escalated `tune` /
    /// tenant `stats`).
    pub mean_abs_rank_error: Option<f64>,
}

impl Response {
    fn to_req(req: &Request) -> Response {
        Response {
            id: req.id,
            op: req.op.clone(),
            ok: true,
            ..Response::default()
        }
    }

    fn fail(req: &Request, error: impl Into<String>) -> Response {
        Response {
            ok: false,
            error: Some(error.into()),
            ..Response::to_req(req)
        }
    }
}

/// Writes one length-prefixed JSON frame.
///
/// # Errors
///
/// Propagates transport errors; rejects oversized payloads.
pub fn write_frame(w: &mut impl Write, json: &str) -> io::Result<()> {
    let len = u32::try_from(json.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME_BYTES)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(json.as_bytes())?;
    w.flush()
}

/// Reads one length-prefixed JSON frame; `Ok(None)` on clean EOF at a
/// frame boundary.
///
/// # Errors
///
/// Propagates transport errors; a length prefix above
/// [`MAX_FRAME_BYTES`] or non-UTF-8 payload is [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_bytes = [0u8; 4];
    // Distinguish clean EOF (no bytes at all) from a torn header.
    match r.read(&mut len_bytes)? {
        0 => return Ok(None),
        n if n < 4 => r.read_exact(&mut len_bytes[n..])?,
        _ => {}
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Parses a request's optional `fidelity` field; a malformed spec is a
/// handler error whose message carries the grammar. The error side is
/// boxed: a `Response` is an order of magnitude larger than the `Ok`
/// payload, and the happy path shouldn't carry it by value.
fn parse_fidelity(req: &Request) -> Result<Option<FidelitySpec>, Box<Response>> {
    match req.fidelity.as_deref() {
        None => Ok(None),
        Some(s) => s
            .parse::<FidelitySpec>()
            .map(Some)
            .map_err(|e| Box::new(Response::fail(req, e.to_string()))),
    }
}

/// One open tenant: its service session plus the workload definition
/// and trained predictor its `tune` requests run against.
struct TenantState {
    session: TenantSession,
    spec: TargetSpec,
    def: ComputeDef,
    predictor: ScorePredictor,
}

/// The server's whole state: the multi-tenant service and the per-name
/// tenant table.
pub struct Server {
    service: SimService,
    tenants: HashMap<String, TenantState>,
}

impl Server {
    /// Wraps a service (typically `SimService::builder()...build()`).
    pub fn new(service: SimService) -> Server {
        Server {
            service,
            tenants: HashMap::new(),
        }
    }

    /// The underlying service (snapshot persistence at boot/shutdown).
    pub fn service(&self) -> &SimService {
        &self.service
    }

    /// Handles one request; the second value is `true` after `shutdown`.
    pub fn handle(&mut self, req: &Request) -> (Response, bool) {
        let resp = match req.op.as_str() {
            "ping" => Response::to_req(req),
            "open" => self.open(req),
            "tune" => self.tune(req),
            "stats" => self.stats(req),
            "save_cache" => self.save_cache(req),
            "load_cache" => self.load_cache(req),
            "close" => self.close(req),
            "shutdown" => Response {
                message: Some("shutting down".into()),
                ..Response::to_req(req)
            },
            other => Response::fail(req, format!("unknown op {other:?}")),
        };
        (resp, req.op == "shutdown")
    }

    fn open(&mut self, req: &Request) -> Response {
        let Some(name) = req.tenant.as_deref() else {
            return Response::fail(req, "open needs a tenant name");
        };
        if self.tenants.contains_key(name) {
            return Response::fail(req, format!("tenant {name:?} is already open"));
        }
        let arch = req.arch.as_deref().unwrap_or("riscv");
        let Some(spec) = TargetSpec::by_name(arch) else {
            return Response::fail(req, format!("unknown arch {arch:?}"));
        };
        let workload = req.workload.as_deref().unwrap_or("matmul");
        let def = match workload {
            "matmul" => {
                let dim = req.dim.unwrap_or(8).clamp(2, 64) as usize;
                matmul(dim, dim, dim)
            }
            "conv2d" => conv2d_bias_relu(&crate::Scale::Smoke.conv_groups()[1]),
            other => return Response::fail(req, format!("unknown workload {other:?}")),
        };
        let seed = req.seed.unwrap_or(42);
        let impls = req.impls.unwrap_or(16).clamp(8, 200) as usize;
        let fidelity = match parse_fidelity(req) {
            Ok(f) => f.unwrap_or_default(),
            Err(resp) => return *resp,
        };
        let session = match self.service.open_fidelity(name, &fidelity, &spec.hierarchy) {
            Ok(s) => s,
            Err(e) => return Response::fail(req, e.to_string()),
        };
        // Training collection runs outside the shared pool (it owns its
        // own short-lived sessions) but feeds the shared cache, so the
        // samples it simulates warm every tenant.
        let collected = collect_group_data(
            &def,
            &spec,
            0,
            &CollectOptions {
                n_impls: impls,
                n_parallel: self.service.n_parallel(),
                seed,
                max_attempts_factor: 40,
                memo_cache: Some(self.service.cache().clone()),
            },
        );
        let data = match collected {
            Ok(d) => d,
            Err(e) => return Response::fail(req, format!("collection failed: {e}")),
        };
        let mut predictor = ScorePredictor::new(PredictorKind::Xgboost, arch, workload, 0);
        if let Err(e) = predictor.train(std::slice::from_ref(&data)) {
            return Response::fail(req, format!("training failed: {e}"));
        }
        self.tenants.insert(
            name.to_string(),
            TenantState {
                session,
                spec,
                def,
                predictor,
            },
        );
        Response {
            message: Some(format!(
                "tenant {name:?} open on {arch}/{workload} at {fidelity}"
            )),
            tenants: Some(self.tenants.len() as u64),
            ..Response::to_req(req)
        }
    }

    fn tune(&mut self, req: &Request) -> Response {
        let Some(name) = req.tenant.as_deref() else {
            return Response::fail(req, "tune needs a tenant name");
        };
        let Some(t) = self.tenants.get(name) else {
            return Response::fail(req, format!("tenant {name:?} is not open"));
        };
        let strategy = match req.strategy.as_deref().unwrap_or("random").parse() {
            Ok(s) => s,
            Err(e) => return Response::fail(req, format!("{e}")),
        };
        let opts = TuneOptions {
            n_trials: req.n_trials.unwrap_or(8).clamp(1, 10_000) as usize,
            batch_size: req.batch_size.unwrap_or(4).clamp(1, 256) as usize,
            seed: req.seed.unwrap_or(42),
            strategy,
            ..TuneOptions::default()
        };
        // The unified `fidelity` spec names the exploration tier of an
        // escalated tune; the per-field escalation knobs switch on the
        // learned (uncertainty) tier and are the deprecated pre-spec
        // way to request escalation on their own. A plain request keeps
        // the all-accurate loop.
        let explore = match parse_fidelity(req) {
            Ok(f) => f,
            Err(resp) => return *resp,
        };
        let uncertainty = req.escalation_budget.is_some() || req.escalation_confidence.is_some();
        let deprecation = (uncertainty && explore.is_none()).then(|| {
            "note: selecting escalation through per-field knobs alone is deprecated; \
             prefer the unified `fidelity` spec string"
                .to_string()
        });
        let result = if uncertainty || explore.is_some() {
            let esc = EscalationOptions {
                explore,
                policy: if uncertainty {
                    EscalationPolicy::Uncertainty(UncertaintyPolicy {
                        confidence: req.escalation_confidence.unwrap_or(1.0),
                        budget: req.escalation_budget.map(|b| b as usize),
                        ..UncertaintyPolicy::default()
                    })
                } else {
                    EscalationPolicy::TopK
                },
                ..EscalationOptions::default()
            };
            t.session
                .tune_escalated(&t.def, &t.spec, &t.predictor, &opts, &esc)
                .map(|out| out.result)
        } else {
            t.session.tune(&t.def, &t.spec, &t.predictor, &opts)
        };
        match result {
            Ok(result) => {
                let stats = t.session.stats();
                let ps = result.predictor;
                Response {
                    best_score: Some(result.best().score),
                    trials: Some(result.history.len() as u64),
                    simulations: Some(result.simulations as u64),
                    memo_hits: Some(stats.memo.hits),
                    memo_misses: Some(stats.memo.misses),
                    escalations: ps.map(|p| p.escalations),
                    avoided_simulations: ps.map(|p| p.avoided_simulations),
                    mean_abs_rank_error: ps.map(|p| p.mean_abs_rank_error),
                    message: deprecation,
                    ..Response::to_req(req)
                }
            }
            Err(e) => Response::fail(req, format!("tuning failed: {e}")),
        }
    }

    fn stats(&self, req: &Request) -> Response {
        match req.tenant.as_deref() {
            Some(name) => match self.tenants.get(name) {
                Some(t) => {
                    let s = t.session.stats();
                    Response {
                        memo_hits: Some(s.memo.hits),
                        memo_misses: Some(s.memo.misses),
                        trials: Some(s.pool.trials),
                        escalations: Some(s.predictor.escalations),
                        avoided_simulations: Some(s.predictor.avoided_simulations),
                        mean_abs_rank_error: Some(s.predictor.mean_abs_rank_error),
                        ..Response::to_req(req)
                    }
                }
                None => Response::fail(req, format!("tenant {name:?} is not open")),
            },
            None => {
                let cache = self.service.cache();
                let s = cache.stats();
                Response {
                    memo_hits: Some(s.hits),
                    memo_misses: Some(s.misses),
                    entries: Some(cache.len() as u64),
                    trials: Some(self.service.pool_stats().trials),
                    tenants: Some(self.tenants.len() as u64),
                    ..Response::to_req(req)
                }
            }
        }
    }

    fn save_cache(&self, req: &Request) -> Response {
        let Some(path) = req.path.as_deref() else {
            return Response::fail(req, "save_cache needs a path");
        };
        match self.service.save_snapshot(Path::new(path)) {
            Ok(n) => Response {
                entries: Some(n as u64),
                message: Some(format!("snapshot written to {path}")),
                ..Response::to_req(req)
            },
            Err(e) => Response::fail(req, format!("snapshot write failed: {e}")),
        }
    }

    fn load_cache(&self, req: &Request) -> Response {
        use simtune_core::SnapshotLoad;
        let Some(path) = req.path.as_deref() else {
            return Response::fail(req, "load_cache needs a path");
        };
        match self.service.load_snapshot(Path::new(path)) {
            Ok(SnapshotLoad::Loaded(n)) => Response {
                entries: Some(n as u64),
                message: Some(format!("restored {n} entries")),
                ..Response::to_req(req)
            },
            // Degraded outcomes are still ok: the service runs cold.
            Ok(SnapshotLoad::Missing) => Response {
                entries: Some(0),
                message: Some("no snapshot found; cold start".into()),
                ..Response::to_req(req)
            },
            Ok(SnapshotLoad::Rejected(reason)) => Response {
                entries: Some(0),
                message: Some(format!("snapshot rejected ({reason}); cold start")),
                ..Response::to_req(req)
            },
            Err(e) => Response::fail(req, format!("snapshot read failed: {e}")),
        }
    }

    fn close(&mut self, req: &Request) -> Response {
        let Some(name) = req.tenant.as_deref() else {
            return Response::fail(req, "close needs a tenant name");
        };
        match self.tenants.remove(name) {
            Some(_) => Response {
                tenants: Some(self.tenants.len() as u64),
                ..Response::to_req(req)
            },
            None => Response::fail(req, format!("tenant {name:?} is not open")),
        }
    }
}

/// Serves framed requests from `r`, writing framed responses to `w`,
/// until `shutdown`, clean EOF, or a transport error. Returns `true`
/// when the loop ended because the peer asked to shut down (socket
/// front ends use this to stop accepting; EOF just ends one
/// connection).
///
/// A frame that fails to parse as a [`Request`] produces an `ok: false`
/// response with `id: 0` and keeps the loop alive — a confused client
/// should not take the service down.
///
/// # Errors
///
/// Propagates transport errors from the underlying stream.
pub fn serve_loop(r: &mut impl Read, w: &mut impl Write, server: &mut Server) -> io::Result<bool> {
    while let Some(json) = read_frame(r)? {
        let (resp, done) = match serde_json::from_str::<Request>(&json) {
            Ok(req) => server.handle(&req),
            Err(e) => (
                Response {
                    id: 0,
                    op: "error".into(),
                    ok: false,
                    error: Some(format!("bad request: {e}")),
                    ..Response::default()
                },
                false,
            ),
        };
        let out = serde_json::to_string(&resp).map_err(io::Error::from)?;
        write_frame(w, &out)?;
        if done {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Convenience used by tests and simple clients: one request in, one
/// response out, over in-memory buffers.
///
/// # Errors
///
/// Propagates serialization and transport errors.
pub fn roundtrip(server: &mut Server, req: &Request) -> io::Result<Response> {
    let mut input = Vec::new();
    write_frame(
        &mut input,
        &serde_json::to_string(req).map_err(io::Error::from)?,
    )?;
    let mut output = Vec::new();
    serve_loop(&mut io::Cursor::new(input), &mut output, server)?;
    let json = read_frame(&mut io::Cursor::new(output))?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no response frame"))?;
    serde_json::from_str(&json).map_err(io::Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(op: &str) -> Request {
        Request {
            id: 7,
            op: op.into(),
            ..Request::default()
        }
    }

    #[test]
    fn frames_roundtrip_and_reject_garbage() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"x\":1}").unwrap();
        write_frame(&mut buf, "second").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "{\"x\":1}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "second");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        // A bogus length prefix is InvalidData, not an allocation.
        let mut r = io::Cursor::new(u32::MAX.to_be_bytes().to_vec());
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn request_json_roundtrips_with_nulls() {
        let r = Request {
            id: 3,
            op: "open".into(),
            tenant: Some("ci".into()),
            dim: Some(6),
            ..Request::default()
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, 3);
        assert_eq!(back.tenant.as_deref(), Some("ci"));
        assert_eq!(back.dim, Some(6));
        assert!(back.path.is_none());
    }

    #[test]
    fn unknown_ops_and_bad_frames_do_not_kill_the_loop() {
        let mut server = Server::new(simtune_core::SimService::builder().n_parallel(1).build());
        let resp = roundtrip(&mut server, &req("frobnicate")).unwrap();
        assert!(!resp.ok);
        assert!(resp.error.unwrap().contains("unknown op"));
        // A malformed frame yields an error response, then the next
        // request still works.
        let mut input = Vec::new();
        write_frame(&mut input, "this is not json").unwrap();
        write_frame(&mut input, &serde_json::to_string(&req("ping")).unwrap()).unwrap();
        let mut output = Vec::new();
        serve_loop(&mut io::Cursor::new(input), &mut output, &mut server).unwrap();
        let mut out = io::Cursor::new(output);
        let first: Response =
            serde_json::from_str(&read_frame(&mut out).unwrap().unwrap()).unwrap();
        assert!(!first.ok);
        let second: Response =
            serde_json::from_str(&read_frame(&mut out).unwrap().unwrap()).unwrap();
        assert!(second.ok);
        assert_eq!(second.op, "ping");
    }

    #[test]
    fn escalated_tune_echoes_predictor_stats() {
        let mut server = Server::new(simtune_core::SimService::builder().n_parallel(2).build());
        let open = Request {
            tenant: Some("esc".into()),
            workload: Some("matmul".into()),
            dim: Some(6),
            impls: Some(10),
            seed: Some(42),
            ..req("open")
        };
        assert!(roundtrip(&mut server, &open).unwrap().ok);
        let tune = Request {
            tenant: Some("esc".into()),
            n_trials: Some(12),
            batch_size: Some(4),
            seed: Some(1),
            strategy: Some("random".into()),
            escalation_budget: Some(8),
            escalation_confidence: Some(1.0),
            ..req("tune")
        };
        let resp = roundtrip(&mut server, &tune).unwrap();
        assert!(resp.ok, "escalated tune failed: {:?}", resp.error);
        assert!(resp.best_score.unwrap().is_finite());
        assert_eq!(resp.trials, Some(12));
        let escalations = resp.escalations.expect("escalated tune echoes stats");
        assert!(escalations > 0, "some candidates must escalate");
        assert!(resp.avoided_simulations.is_some());
        let rank_err = resp.mean_abs_rank_error.unwrap();
        assert!((0.0..=1.0).contains(&rank_err), "rank error {rank_err}");
        // Plain tunes keep the predictor fields null...
        let plain = Request {
            escalation_budget: None,
            escalation_confidence: None,
            ..tune.clone()
        };
        let resp2 = roundtrip(&mut server, &plain).unwrap();
        assert!(resp2.ok);
        assert!(resp2.escalations.is_none());
        // ...while tenant stats keep the accumulated counters.
        let stats = Request {
            tenant: Some("esc".into()),
            ..req("stats")
        };
        let s = roundtrip(&mut server, &stats).unwrap();
        assert_eq!(s.escalations, Some(escalations));
        // A NaN confidence is a handler error, not a crash. (Handled
        // directly: JSON has no NaN literal, so a framed roundtrip
        // would turn it into null.)
        let bad = Request {
            escalation_confidence: Some(f64::NAN),
            ..tune
        };
        let (resp3, _) = server.handle(&bad);
        assert!(!resp3.ok);
        assert!(resp3.error.unwrap().contains("confidence"));
    }

    #[test]
    fn end_to_end_open_tune_stats_snapshot_shutdown() {
        let snap =
            std::env::temp_dir().join(format!("simtune_serve_e2e_{}.json", std::process::id()));
        let mut server = Server::new(simtune_core::SimService::builder().n_parallel(2).build());
        let open = Request {
            tenant: Some("ci".into()),
            workload: Some("matmul".into()),
            dim: Some(6),
            impls: Some(10),
            seed: Some(42),
            ..req("open")
        };
        let resp = roundtrip(&mut server, &open).unwrap();
        assert!(resp.ok, "open failed: {:?}", resp.error);
        // Duplicate open is a handler error, not a crash.
        assert!(!roundtrip(&mut server, &open).unwrap().ok);

        let tune = Request {
            tenant: Some("ci".into()),
            n_trials: Some(6),
            batch_size: Some(3),
            seed: Some(1),
            strategy: Some("random".into()),
            ..req("tune")
        };
        let first = roundtrip(&mut server, &tune).unwrap();
        assert!(first.ok, "tune failed: {:?}", first.error);
        assert_eq!(first.trials, Some(6));
        assert!(first.best_score.unwrap().is_finite());
        // Same tune again: the shared cache answers every submission.
        let second = roundtrip(&mut server, &tune).unwrap();
        assert!(second.ok);
        assert_eq!(second.best_score, first.best_score, "deterministic replay");
        assert!(
            second.memo_hits.unwrap() > first.memo_hits.unwrap(),
            "warm rerun must hit the cache"
        );

        let stats = roundtrip(&mut server, &req("stats")).unwrap();
        assert!(stats.ok);
        assert_eq!(stats.tenants, Some(1));
        assert!(stats.entries.unwrap() > 0);

        let save = Request {
            path: Some(snap.to_string_lossy().into_owned()),
            ..req("save_cache")
        };
        let saved = roundtrip(&mut server, &save).unwrap();
        assert!(saved.ok);
        assert!(saved.entries.unwrap() > 0);
        let load = Request {
            path: Some(snap.to_string_lossy().into_owned()),
            ..req("load_cache")
        };
        let loaded = roundtrip(&mut server, &load).unwrap();
        assert!(loaded.ok);
        assert_eq!(loaded.entries, saved.entries);

        let closed = roundtrip(
            &mut server,
            &Request {
                tenant: Some("ci".into()),
                ..req("close")
            },
        )
        .unwrap();
        assert!(closed.ok);
        assert_eq!(closed.tenants, Some(0));

        let bye = roundtrip(&mut server, &req("shutdown")).unwrap();
        assert!(bye.ok);
        std::fs::remove_file(&snap).ok();
    }
}
