//! Table, CSV and ASCII-plot formatting for experiment reports.

use simtune_core::PredictionMetrics;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Formats one architecture's result table in the layout of the paper's
/// Tables III–V: one row per group, one four-metric column block per
/// predictor.
///
/// # Panics
///
/// Panics if the blocks have inconsistent group counts.
pub fn format_metric_table(
    title: &str,
    predictor_names: &[&str],
    per_predictor: &[Vec<PredictionMetrics>],
) -> String {
    assert_eq!(predictor_names.len(), per_predictor.len());
    let groups = per_predictor.first().map(|v| v.len()).unwrap_or(0);
    assert!(per_predictor.iter().all(|v| v.len() == groups));

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:>3} ", "ID");
    for name in predictor_names {
        let _ = write!(out, "| {:^31} ", name);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:>3} ", "");
    for _ in predictor_names {
        let _ = write!(
            out,
            "| {:>7}{:>8}{:>8}{:>8} ",
            "Etop1", "Qlow", "Qhigh", "Rtop1"
        );
    }
    let _ = writeln!(out);
    let width = 4 + predictor_names.len() * 34;
    let _ = writeln!(out, "{}", "-".repeat(width));
    for g in 0..groups {
        let _ = write!(out, "{g:>3} ");
        for block in per_predictor {
            let m = &block[g];
            let _ = write!(
                out,
                "| {:>6.1} {:>7.1} {:>7.1} {:>7.1} ",
                m.e_top1, m.q_low, m.q_high, m.r_top1
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// Writes rows as CSV with a header line.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut out = String::new();
    let _ = writeln!(out, "{}", header.join(","));
    for row in rows {
        let _ = writeln!(out, "{}", row.join(","));
    }
    fs::write(path, out)
}

/// Renders one or two series as a rough ASCII plot (used for the
/// Figure 5 curves in terminal output). Series are scaled together.
pub fn ascii_plot(title: &str, series: &[(&str, &[f64])], height: usize, width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let all: Vec<f64> = series.iter().flat_map(|(_, v)| v.iter().copied()).collect();
    if all.is_empty() {
        return out;
    }
    let lo = all.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = all.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let marks = ['*', '+', 'o', 'x'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, values)) in series.iter().enumerate() {
        let n = values.len();
        for (i, &v) in values.iter().enumerate() {
            let x = if n <= 1 { 0 } else { i * (width - 1) / (n - 1) };
            let yf = (v - lo) / span;
            let y = ((1.0 - yf) * (height - 1) as f64).round() as usize;
            // Overlap shows the later series' mark.
            grid[y.min(height - 1)][x] = marks[si % marks.len()];
        }
    }
    for row in grid {
        let _ = writeln!(out, "|{}", row.into_iter().collect::<String>());
    }
    let _ = writeln!(out, "+{}", "-".repeat(width));
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} {}", marks[si % marks.len()], name);
    }
    let _ = writeln!(out, "  y: [{lo:.3e}, {hi:.3e}]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(v: f64) -> PredictionMetrics {
        PredictionMetrics {
            e_top1: v,
            q_low: v + 1.0,
            q_high: v + 2.0,
            r_top1: v + 3.0,
        }
    }

    #[test]
    fn table_contains_all_cells() {
        let t = format_metric_table(
            "TABLE TEST",
            &["LinReg", "DNN"],
            &[
                vec![metric(1.0), metric(2.0)],
                vec![metric(3.0), metric(4.0)],
            ],
        );
        assert!(t.contains("TABLE TEST"));
        assert!(t.contains("LinReg"));
        assert!(t.contains("Rtop1"));
        // Group rows 0 and 1 exist.
        assert!(t.lines().any(|l| l.trim_start().starts_with("0 ")));
        assert!(t.lines().any(|l| l.trim_start().starts_with("1 ")));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("simtune_fmt_test");
        let path = dir.join("x.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 3);
        assert!(content.starts_with("a,b"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ascii_plot_renders_series() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        let p = ascii_plot("demo", &[("up", &a), ("down", &b)], 8, 20);
        assert!(p.contains("demo"));
        assert!(p.contains('*'));
        assert!(p.contains('+'));
        assert!(p.contains("y: ["));
    }
}
