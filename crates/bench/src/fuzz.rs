//! Time-budgeted differential fuzz sessions over the torture corpus —
//! the engine behind the `torture_fuzz` binary and the long-fuzz CI
//! lane.
//!
//! A session cycles the named scenario corpus
//! ([`TortureConfig::corpus`]) round-robin, derives one fresh seed per
//! case, and pushes each `(config, seed)` identity through the full
//! differential matrix ([`DiffHarness::run_case`]: every engine ×
//! backend tier × `n_parallel`). Every case is appended to a JSONL
//! *seed journal* as it completes, so a crashed or killed session loses
//! at most the in-flight case and any failure replays from its journal
//! line alone. Divergent cases are shrunk to a locally minimal program
//! (`simtune_isa::shrink_program` driven by the same matrix) and
//! written as assembly repro files; the session summary is one JSON
//! document ([`FUZZ_SCHEMA`]) with throughput and per-scenario
//! coverage — the artifact CI uploads and gates on.
//!
//! `--fidelity <spec>` adds a focus lane: each case is additionally
//! replayed on the named [`FidelitySpec`] tier across every engine and
//! must report bit-identically (cycles included) — the lane the
//! nightly matrix points at the pipelined timing tier.

use serde::{Deserialize, Serialize};
use simtune_core::diffharness::DiffHarness;
use simtune_core::{FidelitySpec, SimBackend};
use simtune_isa::{EngineKind, RunLimits, TortureConfig};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema tag of the JSON summary `torture_fuzz` emits.
///
/// v2: summaries record the optional `--fidelity` focus tier whose
/// per-case engine-invariance check rode along with the matrix.
pub const FUZZ_SCHEMA: &str = "simtune-torture-fuzz-v2";

/// Options of one fuzz session.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Wall-clock budget; the session finishes the in-flight case and
    /// stops once the budget is exhausted.
    pub budget: Duration,
    /// First seed; case `i` uses `start_seed + i`.
    pub start_seed: u64,
    /// Restrict to one named scenario (default: whole corpus).
    pub scenario: Option<String>,
    /// Append one JSONL [`JournalEntry`] per case here.
    pub journal: Option<PathBuf>,
    /// Write shrunken `.s` repro files for divergent cases here.
    pub repro_dir: Option<PathBuf>,
    /// Focus tier: additionally replay every case on this
    /// [`FidelitySpec`]'s backend across all engines and require
    /// bit-identical reports — cycles included — against the interp
    /// run (e.g. `pipelined:btb=512,ras=8` in the nightly matrix).
    pub fidelity: Option<FidelitySpec>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            budget: Duration::from_secs(60),
            start_seed: 1,
            scenario: None,
            journal: None,
            repro_dir: None,
            fidelity: None,
        }
    }
}

/// One journaled case: everything needed to replay it
/// (`torture_fuzz --replay <scenario>:<seed>`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Scenario preset the config came from.
    pub scenario: String,
    /// Generator seed.
    pub seed: u64,
    /// Comparisons performed for this case.
    pub combos: u32,
    /// True when the reference run faulted (fault-injection scenarios).
    pub faulted: bool,
    /// Number of divergences (0 = pass).
    pub divergences: usize,
}

/// A divergent case, with its mismatches and (when shrinking succeeded)
/// the minimal repro.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureReport {
    /// Replay identity.
    pub scenario: String,
    /// Replay identity.
    pub seed: u64,
    /// Human-readable mismatch lines (`combo/field: expected vs got`).
    pub divergences: Vec<String>,
    /// Instruction count of the original failing program.
    pub original_len: usize,
    /// Instruction count after shrinking (equal to `original_len` when
    /// shrinking could not reduce it).
    pub shrunk_len: usize,
    /// Path of the written `.s` repro, when a repro dir was configured.
    pub repro_path: Option<String>,
}

/// Per-scenario coverage counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioCoverage {
    /// Scenario name.
    pub scenario: String,
    /// Cases run.
    pub cases: u64,
    /// Cases whose reference run faulted (error-agreement checks).
    pub faulted: u64,
    /// Cases with at least one divergence.
    pub divergent: u64,
}

/// The whole session outcome, serialized as the CI artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuzzSummary {
    /// Schema tag ([`FUZZ_SCHEMA`]).
    pub schema: String,
    /// Digest of the `--fidelity` focus tier whose engine-invariance
    /// check rode along, `null` for plain matrix sessions.
    pub fidelity: Option<String>,
    /// Configured wall-clock budget in seconds.
    pub budget_seconds: f64,
    /// Actual wall-clock time spent.
    pub elapsed_seconds: f64,
    /// First seed of the session (`seed = start_seed + case index`).
    pub start_seed: u64,
    /// Total cases (= programs generated and diffed).
    pub cases: u64,
    /// Total engine/backend/parallelism comparisons across all cases.
    pub combos: u64,
    /// Cases per wall-clock second.
    pub programs_per_second: f64,
    /// Coverage per scenario class, corpus order.
    pub scenarios: Vec<ScenarioCoverage>,
    /// Every divergent case, shrunk where possible.
    pub failures: Vec<FailureReport>,
    /// True iff no case diverged.
    pub pass: bool,
}

/// Runs one fuzz session to completion. IO failures on the journal or
/// repro dir abort the session with an error string (the binary exits
/// nonzero) rather than silently dropping evidence.
///
/// # Errors
///
/// Returns a message when an unknown scenario is requested or journal /
/// repro files cannot be written.
pub fn run_fuzz(opts: &FuzzOptions) -> Result<FuzzSummary, String> {
    let corpus: Vec<(&'static str, TortureConfig)> = match &opts.scenario {
        None => TortureConfig::corpus(),
        Some(name) => {
            let cfg =
                TortureConfig::by_name(name).ok_or_else(|| format!("unknown scenario {name:?}"))?;
            // Leak is bounded: one short name per process invocation.
            vec![(&*Box::leak(name.clone().into_boxed_str()), cfg)]
        }
    };
    let mut journal = match &opts.journal {
        Some(path) => Some(open_journal(path)?),
        None => None,
    };
    if let Some(dir) = &opts.repro_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }

    let harness = DiffHarness::tiny();
    let focus: Option<(String, Arc<dyn SimBackend>)> = match &opts.fidelity {
        None => None,
        Some(spec) => Some((
            spec.digest(),
            spec.build(harness.hierarchy())
                .map_err(|e| format!("--fidelity: {e}"))?,
        )),
    };
    let mut coverage: Vec<ScenarioCoverage> = corpus
        .iter()
        .map(|(name, _)| ScenarioCoverage {
            scenario: name.to_string(),
            cases: 0,
            faulted: 0,
            divergent: 0,
        })
        .collect();
    let mut failures = Vec::new();
    let mut cases = 0u64;
    let mut combos = 0u64;
    let start = Instant::now();
    while start.elapsed() < opts.budget {
        let idx = (cases % corpus.len() as u64) as usize;
        let (scenario, config) = &corpus[idx];
        let seed = opts.start_seed.wrapping_add(cases);
        let out = harness.run_case(scenario, config, seed);
        cases += 1;
        combos += u64::from(out.combos);
        let cov = &mut coverage[idx];
        cov.cases += 1;
        cov.faulted += u64::from(out.faulted);
        if let Some(w) = journal.as_mut() {
            let entry = JournalEntry {
                scenario: scenario.to_string(),
                seed,
                combos: out.combos,
                faulted: out.faulted,
                divergences: out.divergences.len(),
            };
            append_jsonl(w, &entry)?;
        }
        if !out.divergences.is_empty() {
            cov.divergent += 1;
            eprintln!(
                "[fuzz] DIVERGENCE scenario={scenario} seed={seed:#x} ({} mismatches) — shrinking",
                out.divergences.len()
            );
            failures.push(report_failure(
                &harness,
                scenario,
                config,
                seed,
                &out.divergences,
                opts,
            )?);
        }
        if let Some((digest, backend)) = &focus {
            // Same (program, data) identity run_case used, replayed on
            // the focus tier across every engine.
            let exe = DiffHarness::make_executable(scenario, config, seed, seed ^ 0x5EED_DA7A);
            let mismatches = engine_invariance(digest, backend.as_ref(), &exe);
            combos += (EngineKind::ALL.len() - 1) as u64;
            if !mismatches.is_empty() {
                coverage[idx].divergent += 1;
                eprintln!(
                    "[fuzz] FIDELITY DIVERGENCE scenario={scenario} seed={seed:#x} \
                     ({} mismatches on {digest})",
                    mismatches.len()
                );
                failures.push(FailureReport {
                    scenario: scenario.to_string(),
                    seed,
                    divergences: mismatches,
                    original_len: exe.program.len(),
                    shrunk_len: exe.program.len(),
                    repro_path: None,
                });
            }
        }
    }

    let elapsed = start.elapsed().as_secs_f64();
    Ok(FuzzSummary {
        schema: FUZZ_SCHEMA.into(),
        fidelity: focus.as_ref().map(|(digest, _)| digest.clone()),
        budget_seconds: opts.budget.as_secs_f64(),
        elapsed_seconds: elapsed,
        start_seed: opts.start_seed,
        cases,
        combos,
        programs_per_second: cases as f64 / elapsed.max(1e-9),
        scenarios: coverage,
        pass: failures.is_empty(),
        failures,
    })
}

/// Replays one journaled `(scenario, seed)` identity through the full
/// matrix, exactly as the fuzz loop ran it.
///
/// # Errors
///
/// Returns a message for an unknown scenario name.
pub fn replay_case(
    scenario: &str,
    seed: u64,
) -> Result<simtune_core::diffharness::CaseOutcome, String> {
    let config =
        TortureConfig::by_name(scenario).ok_or_else(|| format!("unknown scenario {scenario:?}"))?;
    Ok(DiffHarness::tiny().run_case(scenario, &config, seed))
}

/// Replays `exe` on the focus backend across every engine and returns
/// human-readable mismatch lines against its own interp run: the
/// tier's reports — cycles included — must not depend on the engine.
fn engine_invariance(
    digest: &str,
    backend: &dyn SimBackend,
    exe: &simtune_isa::Executable,
) -> Vec<String> {
    let limits = RunLimits::default();
    let Ok(decoded) = exe.decode() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let reference = backend.run_one_decoded_on(exe, &decoded, &limits, EngineKind::Interp);
    for engine in EngineKind::ALL {
        if engine == EngineKind::Interp {
            continue;
        }
        let got = backend.run_one_decoded_on(exe, &decoded, &limits, engine);
        let combo = format!("fidelity:{digest}×engine:{}", engine.label());
        match (&reference, &got) {
            (Ok(w), Ok(g)) => {
                if w.stats.inst_mix != g.stats.inst_mix {
                    out.push(format!(
                        "{combo}/inst_mix: {:?} vs {:?}",
                        w.stats.inst_mix, g.stats.inst_mix
                    ));
                }
                if w.stats.cache != g.stats.cache {
                    out.push(format!(
                        "{combo}/cache: {:?} vs {:?}",
                        w.stats.cache, g.stats.cache
                    ));
                }
                if w.cycles != g.cycles {
                    out.push(format!("{combo}/cycles: {:?} vs {:?}", w.cycles, g.cycles));
                }
            }
            (Err(w), Err(g)) => {
                if w != g {
                    out.push(format!("{combo}/error: {w:?} vs {g:?}"));
                }
            }
            (Err(w), Ok(_)) => out.push(format!("{combo}/error: {w:?} vs completed")),
            (Ok(_), Err(g)) => out.push(format!("{combo}/error: completed vs {g:?}")),
        }
    }
    out
}

/// Shrinks a divergent case and writes its repro artifact.
fn report_failure(
    harness: &DiffHarness,
    scenario: &str,
    config: &TortureConfig,
    seed: u64,
    divergences: &[simtune_core::diffharness::Divergence],
    opts: &FuzzOptions,
) -> Result<FailureReport, String> {
    let original = simtune_isa::torture_program_with(config, seed);
    let shrunk = harness
        .shrink_case(scenario, config, seed)
        .unwrap_or_else(|| original.clone());
    let repro_path = match &opts.repro_dir {
        None => None,
        Some(dir) => {
            let path = dir.join(format!("{scenario}-{seed:#x}.s"));
            write_repro(&path, scenario, config, seed, divergences, &shrunk)?;
            Some(path.display().to_string())
        }
    };
    Ok(FailureReport {
        scenario: scenario.to_string(),
        seed,
        divergences: divergences.iter().map(|d| d.to_string()).collect(),
        original_len: original.len(),
        shrunk_len: shrunk.len(),
        repro_path,
    })
}

/// Repro file: replay identity + mismatches as comments, then the
/// shrunken program's disassembly (parseable by
/// `simtune_isa::parse_program`).
fn write_repro(
    path: &Path,
    scenario: &str,
    config: &TortureConfig,
    seed: u64,
    divergences: &[simtune_core::diffharness::Divergence],
    shrunk: &simtune_isa::Program,
) -> Result<(), String> {
    let mut text = String::new();
    text.push_str(&format!(
        "; torture repro — scenario={scenario} seed={seed:#x}\n"
    ));
    text.push_str(&format!("; config: {config:?}\n"));
    text.push_str(&format!(
        "; replay: torture_fuzz --replay {scenario}:{seed}\n"
    ));
    for d in divergences {
        text.push_str(&format!("; {d}\n"));
    }
    text.push_str(&shrunk.disassemble());
    std::fs::write(path, text).map_err(|e| format!("write {}: {e}", path.display()))
}

// Unbuffered on purpose: one small write per case keeps every finished
// case durable even if the session is killed mid-run.
fn open_journal(path: &Path) -> Result<std::fs::File, String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    std::fs::File::create(path).map_err(|e| format!("open journal {}: {e}", path.display()))
}

fn append_jsonl<W: Write>(w: &mut W, entry: &JournalEntry) -> Result<(), String> {
    let line = serde_json::to_string(entry).map_err(|e| format!("serialize journal: {e}"))?;
    writeln!(w, "{line}").map_err(|e| format!("append journal: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_session_covers_the_corpus_and_passes() {
        let dir = std::env::temp_dir().join(format!("simtune-fuzz-{}", std::process::id()));
        let journal = dir.join("journal.jsonl");
        let summary = run_fuzz(&FuzzOptions {
            budget: Duration::from_millis(1500),
            start_seed: 100,
            journal: Some(journal.clone()),
            repro_dir: Some(dir.join("repros")),
            ..FuzzOptions::default()
        })
        .expect("session runs");
        assert!(
            summary.pass,
            "bundled tiers must not diverge: {:#?}",
            summary.failures
        );
        assert!(summary.cases > 0 && summary.combos > summary.cases);
        assert!(summary.programs_per_second > 0.0);
        // Round-robin coverage: the first scenarios of the corpus ran.
        assert!(summary.scenarios[0].cases > 0);
        // Journal replays: one valid JSONL line per case.
        let text = std::fs::read_to_string(&journal).expect("journal written");
        let lines: Vec<JournalEntry> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("valid JSONL"))
            .collect();
        assert_eq!(lines.len() as u64, summary.cases);
        let first = &lines[0];
        assert_eq!(first.seed, 100);
        assert_eq!(first.scenario, summary.scenarios[0].scenario);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_scenario_sessions_restrict_the_corpus() {
        let summary = run_fuzz(&FuzzOptions {
            budget: Duration::from_millis(300),
            start_seed: 7,
            scenario: Some("tiny".into()),
            ..FuzzOptions::default()
        })
        .expect("session runs");
        assert_eq!(summary.scenarios.len(), 1);
        assert_eq!(summary.scenarios[0].scenario, "tiny");
        assert!(summary.pass);
        assert!(run_fuzz(&FuzzOptions {
            scenario: Some("no-such".into()),
            ..FuzzOptions::default()
        })
        .is_err());
    }

    #[test]
    fn fidelity_focus_lane_rides_along_and_stays_invariant() {
        let summary = run_fuzz(&FuzzOptions {
            budget: Duration::from_millis(800),
            start_seed: 55,
            fidelity: Some("pipelined:btb=64,ras=4".parse().unwrap()),
            ..FuzzOptions::default()
        })
        .expect("session runs");
        assert!(
            summary.pass,
            "pipelined tier diverged across engines: {:#?}",
            summary.failures
        );
        assert_eq!(summary.fidelity.as_deref(), Some("pipelined:btb=64,ras=4"));
        // Three extra engine comparisons per case rode along.
        assert!(summary.combos >= summary.cases * 3);
    }

    #[test]
    fn replay_reproduces_a_journaled_case() {
        let out = replay_case("baseline", 100).expect("known scenario");
        assert_eq!(out.seed, 100);
        assert!(out.passed());
        assert!(replay_case("no-such", 1).is_err());
    }
}
