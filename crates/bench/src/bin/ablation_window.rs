//! Ablation for Section III-E: exact group means vs static windows of
//! several sizes vs the dynamic window, measured as the rank agreement
//! (Spearman) between window-normalized scores and exact-mean scores,
//! plus the resulting R_top1.
//!
//! The paper states that "the batch size, and thus the window size w, is
//! typically large enough that no accuracy loss ... was observed"; this
//! binary quantifies that claim on the reproduction.

use simtune_bench::{collect_arch_datasets, Args, ExperimentConfig};
use simtune_core::{
    prediction_metrics, split_train_test, FeatureConfig, GroupData, ScorePredictor, WindowKind,
};
use simtune_linalg::stats::spearman;
use simtune_predict::PredictorKind;

fn main() {
    let args = Args::from_env();
    for cfg in ExperimentConfig::from_args(&args) {
        let groups = match collect_arch_datasets(&cfg, args.refresh) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("[{}] collection failed: {e}", cfg.arch);
                continue;
            }
        };
        // Train once on the training parts of all groups.
        let splits: Vec<(Vec<usize>, Vec<usize>)> = groups
            .iter()
            .map(|g| split_train_test(g.len(), args.test_count.min(g.len() - 1), args.seed))
            .collect();
        let train: Vec<GroupData> = groups
            .iter()
            .zip(&splits)
            .map(|(g, (tr, _))| g.subset(tr))
            .collect();
        let mut predictor = ScorePredictor::new(
            PredictorKind::Xgboost,
            &cfg.arch,
            "conv2d_bias_relu",
            args.seed,
        )
        .with_feature_config(FeatureConfig::default());
        if let Err(e) = predictor.train(&train) {
            eprintln!("[{}] training failed: {e}", cfg.arch);
            continue;
        }

        println!(
            "\nWindow ablation [{}] (XGBoost, scale={}, test={}/group):",
            cfg.arch, cfg.scale, args.test_count
        );
        println!(
            "{:>14} | {:>10} | {:>10} | {:>10}",
            "window", "rho(exact)", "mean Rtop1", "mean Etop1"
        );
        println!("{}", "-".repeat(55));
        let windows: Vec<(String, WindowKind)> = vec![
            ("exact".into(), WindowKind::Exact),
            ("static(8)".into(), WindowKind::Static(8)),
            ("static(16)".into(), WindowKind::Static(16)),
            ("static(32)".into(), WindowKind::Static(32)),
            ("dynamic".into(), WindowKind::Dynamic),
        ];
        for (label, window) in windows {
            let mut rhos = Vec::new();
            let mut r1 = Vec::new();
            let mut e1 = Vec::new();
            for (g, (_, test_idx)) in groups.iter().zip(&splits) {
                let test = g.subset(test_idx);
                let exact = predictor.score_group(&test.stats).expect("trained");
                let windowed = predictor
                    .score_with_window(&test.stats, window)
                    .expect("trained");
                rhos.push(spearman(&exact, &windowed));
                let m = prediction_metrics(&test.t_ref, &windowed);
                r1.push(m.r_top1);
                e1.push(m.e_top1);
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            println!(
                "{:>14} | {:>10.4} | {:>9.1}% | {:>9.2}%",
                label,
                mean(&rhos),
                mean(&r1),
                mean(&e1)
            );
        }
    }
}
