//! Regenerates the paper's Figure 5: sorted run-time predictions for the
//! test set of group 3, with the Bayesian predictor trained (a)–(c)
//! *including* group 3 vs (d)–(f) *excluding* group 3, for each CPU
//! architecture.
//!
//! Outputs ASCII plots to stdout and, with `--out DIR`, one CSV per
//! (architecture, variant) containing the `t_ref` and `t_pred` series.
//!
//! ```text
//! cargo run --release -p simtune-bench --bin figure5 -- \
//!     --arch all --scale quarter --impls 120 --test 30 --out results/
//! ```

use simtune_bench::{ascii_plot, collect_arch_datasets, write_csv, Args, ExperimentConfig};
use simtune_core::{holdout_group_curves, split_train_test, GroupData};
use simtune_predict::PredictorKind;
use std::path::Path;

const EVAL_GROUP: usize = 3;

fn main() {
    let args = Args::from_env();
    for cfg in ExperimentConfig::from_args(&args) {
        let groups = match collect_arch_datasets(&cfg, args.refresh) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("[{}] collection failed: {e}", cfg.arch);
                continue;
            }
        };
        if groups.len() <= EVAL_GROUP {
            eprintln!("[{}] need at least {} groups", cfg.arch, EVAL_GROUP + 1);
            continue;
        }
        let eval_group = &groups[EVAL_GROUP];
        let (_, test_idx) = split_train_test(
            eval_group.len(),
            args.test_count.min(eval_group.len() - 1),
            args.seed,
        );

        // (a)-(c): group 3 included in training (its training part).
        let included: Vec<GroupData> = groups
            .iter()
            .map(|g| {
                if g.group_id == EVAL_GROUP {
                    let train: Vec<usize> =
                        (0..g.len()).filter(|i| !test_idx.contains(i)).collect();
                    g.subset(&train)
                } else {
                    g.clone()
                }
            })
            .collect();
        // (d)-(f): group 3 not included at all.
        let excluded: Vec<GroupData> = groups
            .iter()
            .filter(|g| g.group_id != EVAL_GROUP)
            .cloned()
            .collect();

        for (variant, training) in [("included", &included), ("excluded", &excluded)] {
            match holdout_group_curves(
                PredictorKind::Bayes,
                training,
                eval_group,
                &test_idx,
                &cfg.arch,
                "conv2d_bias_relu",
                args.seed,
            ) {
                Ok(curves) => {
                    let title = format!(
                        "Figure 5 [{}, group {EVAL_GROUP} {variant} in training] \
                         sorted t_ref (*) vs prediction-ordered t_ref (+)",
                        cfg.arch
                    );
                    println!(
                        "{}",
                        ascii_plot(
                            &title,
                            &[
                                ("t_ref (sorted)", &curves.sorted_ref),
                                ("t_pred (prediction-ordered)", &curves.prediction_ordered),
                            ],
                            16,
                            72,
                        )
                    );
                    if let Some(dir) = &args.out_dir {
                        let rows: Vec<Vec<String>> = curves
                            .sorted_ref
                            .iter()
                            .zip(&curves.prediction_ordered)
                            .enumerate()
                            .map(|(i, (r, p))| {
                                vec![i.to_string(), format!("{r:.6e}"), format!("{p:.6e}")]
                            })
                            .collect();
                        let path =
                            Path::new(dir).join(format!("figure5_{}_{}.csv", cfg.arch, variant));
                        match write_csv(&path, &["sample", "t_ref", "t_pred"], &rows) {
                            Ok(()) => eprintln!("wrote {}", path.display()),
                            Err(e) => eprintln!("csv write failed: {e}"),
                        }
                    }
                }
                Err(e) => eprintln!("[{}] {variant} failed: {e}", cfg.arch),
            }
        }
    }
}
