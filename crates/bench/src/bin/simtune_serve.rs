//! Tuning-as-a-service entry point: frames [`simtune_bench::serve`]
//! over stdin/stdout (default) or a unix socket.
//!
//! ```text
//! simtune_serve [--parallel N] [--cache PATH] [--socket PATH]
//! ```
//!
//! * `--parallel N` — worker threads in the shared pool (default: the
//!   service's own heuristic).
//! * `--cache PATH` — warm the shared [`simtune_core::SimCache`] from a
//!   snapshot at boot (a missing or corrupt snapshot degrades to a cold
//!   start) and write it back on clean shutdown.
//! * `--socket PATH` — listen on a unix domain socket instead of
//!   stdin/stdout; clients are served one at a time, each connection
//!   runs the framed loop until its `shutdown` request or EOF.
//!
//! In socket mode a client's `shutdown` ends that connection *and* the
//! process (after the cache write-back), so orchestration scripts can
//! tear the service down over the same protocol they tune with.

use simtune_bench::serve::{serve_loop, Server};
use simtune_core::{SimService, SnapshotLoad};
use std::io;
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    parallel: Option<usize>,
    cache: Option<PathBuf>,
    socket: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!("usage: simtune_serve [--parallel N] [--cache PATH] [--socket PATH]");
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        parallel: None,
        cache: None,
        socket: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--parallel" => match value("--parallel").parse() {
                Ok(n) if n >= 1 => opts.parallel = Some(n),
                _ => usage(),
            },
            "--cache" => opts.cache = Some(PathBuf::from(value("--cache"))),
            "--socket" => opts.socket = Some(PathBuf::from(value("--socket"))),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

fn build_service(opts: &Opts) -> SimService {
    let mut builder = SimService::builder();
    if let Some(n) = opts.parallel {
        builder = builder.n_parallel(n);
    }
    let service = builder.build();
    if let Some(path) = &opts.cache {
        match service.load_snapshot(path) {
            Ok(SnapshotLoad::Loaded(n)) => {
                eprintln!(
                    "simtune_serve: warmed cache with {n} entries from {}",
                    path.display()
                );
            }
            Ok(SnapshotLoad::Missing) => {
                eprintln!(
                    "simtune_serve: no snapshot at {}; cold start",
                    path.display()
                );
            }
            // load_snapshot already logged the rejection reason.
            Ok(SnapshotLoad::Rejected(_)) => {}
            Err(e) => {
                eprintln!("simtune_serve: snapshot read failed ({e}); cold start");
            }
        }
    }
    service
}

fn save_back(server: &Server, opts: &Opts) {
    if let Some(path) = &opts.cache {
        match server.service().save_snapshot(path) {
            Ok(n) => eprintln!(
                "simtune_serve: saved {n} cache entries to {}",
                path.display()
            ),
            Err(e) => eprintln!("simtune_serve: snapshot write failed: {e}"),
        }
    }
}

fn serve_stdio(server: &mut Server) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_loop(&mut stdin.lock(), &mut stdout.lock(), server).map(|_| ())
}

fn serve_socket(server: &mut Server, path: &PathBuf) -> io::Result<()> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a previous run would make bind fail.
    std::fs::remove_file(path).ok();
    let listener = UnixListener::bind(path)?;
    eprintln!("simtune_serve: listening on {}", path.display());
    let result = loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) => break Err(e),
        };
        let mut reader = stream.try_clone()?;
        let mut writer = stream;
        match serve_loop(&mut reader, &mut writer, server) {
            // `true` means the peer sent `shutdown`: stop accepting.
            // Plain EOF (`false`) just ends this connection.
            Ok(true) => break Ok(()),
            Ok(false) => {}
            Err(e) => eprintln!("simtune_serve: connection error: {e}"),
        }
    };
    std::fs::remove_file(path).ok();
    result
}

fn main() -> ExitCode {
    let opts = parse_opts();
    let mut server = Server::new(build_service(&opts));
    let result = match &opts.socket {
        Some(path) => serve_socket(&mut server, path),
        None => serve_stdio(&mut server),
    };
    save_back(&server, &opts);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("simtune_serve: {e}");
            ExitCode::FAILURE
        }
    }
}
