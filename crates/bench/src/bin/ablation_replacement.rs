//! Replacement-policy ablation (DESIGN.md experiment index): the target
//! hardware's caches behave like LRU, but what happens when the
//! *instruction-accurate simulator* models a different policy? The
//! statistics drift away from the target's true behavior and prediction
//! quality should degrade gracefully — quantifying how sensitive the
//! approach is to cache-model fidelity.
//!
//! Reference times come from the unmodified target model; only the
//! simulator's replacement policy varies.

use rand::rngs::StdRng;
use rand::SeedableRng;
use simtune_bench::{Args, ExperimentConfig};
use simtune_cache::ReplacementPolicy;
use simtune_core::{
    evaluate_predictor, FeatureConfig, GroupData, HardwareRunner, KernelBuilder, SimSession,
};
use simtune_hw::TargetSpec;
use simtune_predict::PredictorKind;
use simtune_tensor::{conv2d_bias_relu, SketchGenerator};
use std::collections::HashSet;

fn main() {
    let args = Args::from_env();
    for cfg in ExperimentConfig::from_args(&args) {
        let Some(spec) = TargetSpec::by_name(&cfg.arch) else {
            eprintln!("unknown arch {}", cfg.arch);
            continue;
        };
        // Use a subset of groups to keep the 4x collection affordable.
        let shapes = cfg.scale.conv_groups();
        let selected = [1usize, 3usize];

        println!(
            "\nReplacement-policy ablation [{}] (XGBoost, groups {:?}, {} impls):",
            cfg.arch, selected, cfg.impls
        );
        println!(
            "{:>8} | {:>11} | {:>10}",
            "policy", "mean Etop1", "max Rtop1"
        );
        println!("{}", "-".repeat(37));

        for policy in ReplacementPolicy::all() {
            let mut groups: Vec<GroupData> = Vec::new();
            for &gid in &selected {
                let def = conv2d_bias_relu(&shapes[gid]);
                let generator = SketchGenerator::new(&def, spec.isa.clone());
                let mut rng = StdRng::seed_from_u64(cfg.seed + gid as u64 * 7919);
                let mut seen = HashSet::new();
                let mut schedules = Vec::new();
                let mut attempts = 0;
                while schedules.len() < cfg.impls && attempts < cfg.impls * 30 {
                    attempts += 1;
                    let p = generator.random(&mut rng);
                    if !seen.insert(format!("{p:?}")) {
                        continue;
                    }
                    let s = generator.schedule(&p);
                    if s.apply(&def, &spec.isa).is_ok() {
                        schedules.push(s);
                    }
                }
                let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
                let exes: Vec<_> = builder
                    .build_batch(&schedules)
                    .into_iter()
                    .flatten()
                    .collect();
                // Simulator with the ablated policy; target stays LRU.
                let sim = SimSession::builder()
                    .accurate(&spec.hierarchy.with_policy(policy))
                    .n_parallel(cfg.n_parallel)
                    .build()
                    .expect("backend configured");
                let stats = sim.run_stats(&exes);
                let hw = HardwareRunner::new(spec.clone());
                let measurements = hw.run(&exes);
                let mut data = GroupData {
                    group_id: gid,
                    ..GroupData::default()
                };
                for (s, m) in stats.into_iter().zip(measurements) {
                    let (Ok(s), Ok(m)) = (s, m) else { continue };
                    data.stats.push(s);
                    data.t_ref.push(m.t_ref);
                }
                groups.push(data);
            }
            match evaluate_predictor(
                PredictorKind::Xgboost,
                &groups,
                &cfg.arch,
                "conv2d_bias_relu",
                args.test_count,
                args.rounds.min(5),
                args.seed,
                FeatureConfig::default(),
            ) {
                Ok(report) => println!(
                    "{:>8} | {:>10.2}% | {:>9.1}%",
                    policy.label(),
                    report.mean_e_top1(),
                    report.max_r_top1()
                ),
                Err(e) => println!("{:>8} | failed: {e}", policy.label()),
            }
        }
    }
}
