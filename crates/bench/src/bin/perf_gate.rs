//! CI perf-regression gate: compares a fresh `BENCH_5.json` (written by
//! `strategy_sweep --json`) against the committed
//! `ci/bench-baseline.json` and exits non-zero when sweep throughput
//! regressed beyond the allowed fraction.
//!
//! ```text
//! cargo run --release --bin perf_gate -- \
//!     --current BENCH_5.json --baseline ci/bench-baseline.json --max-regression 0.25
//! ```
//!
//! The baseline file holds one JSON document per line — one entry per
//! gated fidelity (`accurate`, `pipelined:btb=512,ras=8`, ...). The
//! gate picks the line whose `fidelity` matches the current sweep and
//! errors when no entry covers it, so adding a fidelity to the CI
//! sweep without regenerating the baseline fails loudly.
//!
//! `--warm` switches to the warm-start comparison: `--current` is a
//! resweep over a reloaded cache snapshot, `--baseline` the cold sweep
//! that wrote it, and the gate demands a near-perfect memo hit rate
//! plus a throughput win instead of mere non-regression:
//!
//! ```text
//! cargo run --release --bin perf_gate -- \
//!     --warm --current BENCH_5_WARM.json --baseline BENCH_5.json \
//!     --min-hit-rate 0.99 --min-speedup 1.05
//! ```
//!
//! Scores are *not* gated here: the fixed-seed sweep is bit-deterministic
//! and its results are locked down by `crates/core/tests/pool_determinism.rs`;
//! this gate only watches the harness's speed.

use simtune_bench::{gate, warm_gate, PerfSummary};
use std::process::ExitCode;

struct GateArgs {
    current: String,
    baseline: String,
    max_regression: f64,
    warm: bool,
    min_hit_rate: f64,
    min_speedup: f64,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> GateArgs {
    let mut current = None;
    let mut baseline = None;
    let mut max_regression = 0.25;
    let mut warm = false;
    let mut min_hit_rate = 0.99;
    let mut min_speedup = 1.05;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut need = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--current" => current = Some(need("--current")),
            "--baseline" => baseline = Some(need("--baseline")),
            "--max-regression" => {
                max_regression = need("--max-regression")
                    .parse()
                    .expect("--max-regression fraction in (0, 1)");
            }
            "--warm" => warm = true,
            "--min-hit-rate" => {
                min_hit_rate = need("--min-hit-rate")
                    .parse()
                    .expect("--min-hit-rate fraction in [0, 1]");
            }
            "--min-speedup" => {
                min_speedup = need("--min-speedup")
                    .parse()
                    .expect("--min-speedup factor >= 1");
            }
            other => panic!(
                "unknown flag {other} (expected --current/--baseline/--max-regression/--warm/--min-hit-rate/--min-speedup)"
            ),
        }
    }
    GateArgs {
        current: current.expect("--current <BENCH_5.json> is required"),
        baseline: baseline.expect("--baseline <ci/bench-baseline.json> is required"),
        max_regression,
        warm,
        min_hit_rate,
        min_speedup,
    }
}

fn load(path: &str) -> Result<PerfSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    PerfSummary::from_json(text.trim()).map_err(|e| format!("parsing {path}: {e}"))
}

/// Loads the baseline entry matching the current sweep's fidelity. The
/// baseline is JSONL — one `PerfSummary` per gated fidelity.
fn load_baseline(path: &str, current: &PerfSummary) -> Result<PerfSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut entries = Vec::new();
    for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
        entries.push(PerfSummary::from_json(line).map_err(|e| format!("parsing {path}: {e}"))?);
    }
    let n = entries.len();
    entries
        .into_iter()
        .find(|b| b.fidelity == current.fidelity)
        .ok_or_else(|| {
            format!(
                "no baseline entry for fidelity {:?} in {path} ({n} entries); \
                 regenerate it with the provenance command of an existing entry \
                 plus the new --fidelity value",
                current.fidelity
            )
        })
}

fn print_summaries(current: &PerfSummary, baseline: &PerfSummary) {
    println!(
        "  current : {:>8.1} trials/sec, memo hit rate {:>5.1} % ({} trials)",
        current.totals.trials_per_sec,
        current.totals.memo_hit_rate * 100.0,
        current.totals.trials
    );
    println!(
        "  baseline: {:>8.1} trials/sec, memo hit rate {:>5.1} % ({} trials)",
        baseline.totals.trials_per_sec,
        baseline.totals.memo_hit_rate * 100.0,
        baseline.totals.trials
    );
    for s in &current.strategies {
        println!(
            "  {:>13}: {:>8.1} trials/sec, best {:.4}, stages p/b/s/s = {:?} ms",
            s.name,
            s.trials_per_sec,
            s.best_score,
            s.stage_nanos.map(|n| n / 1_000_000)
        );
    }
}

fn run(args: &GateArgs) -> Result<bool, String> {
    let current = load(&args.current)?;
    let baseline = load_baseline(&args.baseline, &current)?;
    let passes = if args.warm {
        let report = warm_gate(&current, &baseline, args.min_hit_rate, args.min_speedup)?;
        println!("perf gate: {}", report.verdict());
        report.passes()
    } else {
        let report = gate(&current, &baseline, args.max_regression)?;
        println!("perf gate: {}", report.verdict());
        report.passes()
    };
    print_summaries(&current, &baseline);
    Ok(passes)
}

fn main() -> ExitCode {
    let args = parse_args(std::env::args().skip(1));
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            if args.warm {
                eprintln!(
                    "perf gate FAILED: the warm-start resweep did not replay from the snapshot \
                     (hit rate < {:.2} or speedup < {:.2}x)",
                    args.min_hit_rate, args.min_speedup
                );
                eprintln!(
                    "the snapshot, cold and warm JSON documents are uploaded as CI artifacts"
                );
            } else {
                eprintln!(
                    "perf gate FAILED: throughput regressed more than {:.0} % vs the committed baseline",
                    args.max_regression * 100.0
                );
                eprintln!("if the regression is intended, regenerate ci/bench-baseline.json (see that file's provenance line)");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("perf gate error: {e}");
            ExitCode::FAILURE
        }
    }
}
