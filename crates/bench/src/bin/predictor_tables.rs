//! Regenerates the paper's Tables III, IV and V: prediction results per
//! CPU architecture, per predictor, per Conv2D group.
//!
//! Protocol (paper Section IV-C): implementations per group are split
//! into train/test `--rounds` times with random selections; one
//! predictor per architecture is trained on the training parts of all
//! groups; metrics are medians over the rounds.
//!
//! ```text
//! cargo run --release -p simtune-bench --bin predictor_tables -- \
//!     --arch all --scale quarter --impls 120 --test 30 --rounds 10
//! ```

use simtune_bench::{
    collect_arch_datasets, format_metric_table, write_csv, Args, ExperimentConfig,
};
use simtune_core::{evaluate_predictor, FeatureConfig};
use simtune_predict::PredictorKind;
use std::path::Path;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let table_names = [("x86", "III"), ("arm", "IV"), ("riscv", "V")];
    for cfg in ExperimentConfig::from_args(&args) {
        let started = Instant::now();
        let groups = match collect_arch_datasets(&cfg, args.refresh) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("[{}] collection failed: {e}", cfg.arch);
                continue;
            }
        };
        let mut blocks = Vec::new();
        let mut names = Vec::new();
        for kind in PredictorKind::all() {
            let t0 = Instant::now();
            match evaluate_predictor(
                kind,
                &groups,
                &cfg.arch,
                "conv2d_bias_relu",
                args.test_count,
                args.rounds,
                args.seed,
                FeatureConfig::default(),
            ) {
                Ok(report) => {
                    eprintln!(
                        "[{}] {kind}: mean E_top1 {:.2}%, max R_top1 {:.1}% ({:.1}s)",
                        cfg.arch,
                        report.mean_e_top1(),
                        report.max_r_top1(),
                        t0.elapsed().as_secs_f64()
                    );
                    names.push(kind.label());
                    blocks.push(report.per_group);
                }
                Err(e) => eprintln!("[{}] {kind} failed: {e}", cfg.arch),
            }
        }
        let table_no = table_names
            .iter()
            .find(|(a, _)| *a == cfg.arch)
            .map(|(_, t)| *t)
            .unwrap_or("?");
        let title = format!(
            "TABLE {table_no}: Prediction results for {}-based CPU \
             (scale={}, impls={}, test={}, rounds={})",
            cfg.arch, cfg.scale, cfg.impls, args.test_count, args.rounds
        );
        println!("{}", format_metric_table(&title, &names, &blocks));
        println!("total wall time: {:.1}s\n", started.elapsed().as_secs_f64());

        if let Some(dir) = &args.out_dir {
            let mut rows = Vec::new();
            for (name, block) in names.iter().zip(&blocks) {
                for (gid, m) in block.iter().enumerate() {
                    rows.push(vec![
                        cfg.arch.clone(),
                        name.to_string(),
                        gid.to_string(),
                        format!("{:.4}", m.e_top1),
                        format!("{:.4}", m.q_low),
                        format!("{:.4}", m.q_high),
                        format!("{:.4}", m.r_top1),
                    ]);
                }
            }
            let path = Path::new(dir).join(format!("table_{}.csv", cfg.arch));
            if let Err(e) = write_csv(
                &path,
                &[
                    "arch",
                    "predictor",
                    "group",
                    "e_top1",
                    "q_low",
                    "q_high",
                    "r_top1",
                ],
                &rows,
            ) {
                eprintln!("csv write failed: {e}");
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
    }
}
