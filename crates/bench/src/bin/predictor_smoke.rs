//! CI smoke gate for the learned fidelity tier (`PredictedBackend` +
//! `EscalationPolicy::Uncertainty`).
//!
//! One fixed-seed experiment on the paper's smoke-scale Conv2D group,
//! three tuning modes over the same strategy, seed and trial budget:
//!
//! 1. **accurate-only** — every trial simulates accurately (the
//!    paper's baseline; `n_trials` accurate simulations);
//! 2. **static top-k** — cheap exploration, the fixed top-k finalists
//!    re-simulate accurately (`EscalationPolicy::TopK`);
//! 3. **uncertainty** — the learned tier with a tight escalation
//!    budget (`EscalationPolicy::Uncertainty`).
//!
//! The gate passes only when:
//!
//! * the offline score predictor ranks a held-out slice of the training
//!   group with Spearman ≥ 0.8 (predictor-accuracy probe);
//! * the uncertainty tune spends **strictly fewer** accurate
//!   simulations than both baselines;
//! * its winner's noise-free target runtime
//!   (`simtune_hw::measure_base_seconds` — deterministic ground truth,
//!   independent of any score-normalization stream) is within 5 % of
//!   the accurate-only winner's.
//!
//! Stdout is one JSON document (the `BENCH_PREDICTOR.json` CI
//! artifact); failures additionally print to stderr and exit nonzero.

use serde::{Deserialize, Serialize};
use simtune_bench::Scale;
use simtune_core::{
    collect_group_data, tune_with_fidelity_escalation, tune_with_predictor, CollectOptions,
    EscalationOptions, EscalationPolicy, GroupData, KernelBuilder, ScorePredictor, StrategySpec,
    TuneOptions, TuneRecord, UncertaintyPolicy,
};
use simtune_hw::{measure_base_seconds, TargetSpec};
use simtune_linalg::stats::spearman;
use simtune_predict::PredictorKind;
use simtune_tensor::conv2d_bias_relu;

/// Schema tag of the JSON document this binary emits.
pub const SMOKE_SCHEMA: &str = "simtune-predictor-smoke-v1";

/// One tuning mode's outcome (accurate simulations spent + winner
/// runtime under the common noise-free timing model).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ModeReport {
    /// Mode label (`accurate` / `topk` / `predicted`).
    mode: String,
    /// Accurate simulations the mode spent.
    accurate_sims: u64,
    /// The winner's noise-free target runtime in seconds (directly
    /// comparable across modes; lower = better).
    winner_seconds: f64,
}

/// The whole gate outcome, serialized as `BENCH_PREDICTOR.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SmokeReport {
    /// Schema tag ([`SMOKE_SCHEMA`]).
    schema: String,
    /// Target architecture.
    arch: String,
    /// Seed shared by every mode.
    seed: u64,
    /// Trial budget shared by every mode.
    n_trials: u64,
    /// Held-out Spearman of the offline score predictor.
    spearman: f64,
    /// Per-mode accurate-simulation spend and winner runtime.
    modes: Vec<ModeReport>,
    /// Learned-tier counters from the uncertainty run.
    escalation_rate: f64,
    /// Candidates the model settled without accurate simulation.
    avoided_simulations: u64,
    /// Normalized rank displacement of the online model.
    mean_abs_rank_error: f64,
    /// True when every gate condition held.
    pass: bool,
}

/// Splits one collected group into train/held-out halves by index.
fn split(data: &GroupData, train: usize) -> (GroupData, GroupData) {
    let cut = train.min(data.len());
    let part = |lo: usize, hi: usize| GroupData {
        group_id: data.group_id,
        stats: data.stats[lo..hi].to_vec(),
        t_ref: data.t_ref[lo..hi].to_vec(),
        base_seconds: data.base_seconds[lo..hi].to_vec(),
        sim_seconds: data.sim_seconds[lo..hi].to_vec(),
        descriptions: data.descriptions[lo..hi].to_vec(),
    };
    (part(0, cut), part(cut, data.len()))
}

fn main() {
    let arch = "riscv";
    let seed = 42u64;
    let n_trials = 48usize;
    let spec = TargetSpec::by_name(arch).expect("known arch");
    let shape = Scale::Smoke.conv_groups()[1];
    let def = conv2d_bias_relu(&shape);

    // Offline predictor + held-out Spearman probe.
    eprintln!("[smoke] collecting training group...");
    let data = collect_group_data(
        &def,
        &spec,
        1,
        &CollectOptions {
            n_impls: 32,
            n_parallel: 2,
            seed,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        },
    )
    .expect("collection");
    let (train, held) = split(&data, 24);
    let mut predictor = ScorePredictor::new(PredictorKind::Xgboost, arch, "conv2d_bias_relu", 1);
    predictor
        .train(std::slice::from_ref(&train))
        .expect("training");
    let predicted = predictor.score_group(&held.stats).expect("held-out scores");
    let rho = spearman(&predicted, &held.t_ref);
    eprintln!(
        "[smoke] held-out Spearman over {} impls: {rho:.3}",
        held.len()
    );

    // Three modes, identical strategy/seed/budget.
    let opts = TuneOptions {
        n_trials,
        batch_size: 12,
        n_parallel: 2,
        seed,
        strategy: StrategySpec::Evolutionary,
        ..TuneOptions::default()
    };
    eprintln!("[smoke] mode 1/3: accurate-only ({n_trials} trials)...");
    let accurate = tune_with_predictor(&def, &spec, &predictor, &opts).expect("accurate tune");
    eprintln!("[smoke] mode 2/3: static top-k...");
    let topk = tune_with_fidelity_escalation(
        &def,
        &spec,
        &predictor,
        &opts,
        &EscalationOptions::default(),
    )
    .expect("top-k tune");
    eprintln!("[smoke] mode 3/3: uncertainty escalation...");
    let unc = tune_with_fidelity_escalation(
        &def,
        &spec,
        &predictor,
        &opts,
        &EscalationOptions {
            policy: EscalationPolicy::Uncertainty(UncertaintyPolicy {
                min_train: 4,
                refit_every: 4,
                budget: Some(6),
                ..UncertaintyPolicy::default()
            }),
            ..EscalationOptions::default()
        },
    )
    .expect("uncertainty tune");
    let ps = unc.result.predictor.expect("uncertainty runs report stats");

    // Winner quality, apples to apples: rebuild all three winners and
    // compare their deterministic, noise-free target runtimes. Each
    // mode's own best *scores* come from different normalizer streams
    // and are not directly comparable.
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let winners: Vec<&TuneRecord> = vec![accurate.best(), topk.result.best(), unc.result.best()];
    let seconds: Vec<f64> = winners
        .iter()
        .enumerate()
        .map(|(i, rec)| {
            let exe = builder
                .build(&rec.schedule, &format!("winner{i}"))
                .expect("winner builds");
            measure_base_seconds(&exe, &spec).expect("winner measures")
        })
        .collect();
    let (acc_best, topk_best, unc_best) = (seconds[0], seconds[1], seconds[2]);

    let acc_sims = accurate.simulations as u64;
    let topk_sims = topk.accurate_runs as u64;
    let unc_sims = unc.accurate_runs as u64;
    // Within 5 % of the accurate-only winner's runtime.
    let quality_ok = unc_best <= acc_best * 1.05;
    let savings_ok = unc_sims < topk_sims && unc_sims < acc_sims;
    let spearman_ok = rho >= 0.8;
    let pass = quality_ok && savings_ok && spearman_ok;

    let report = SmokeReport {
        schema: SMOKE_SCHEMA.into(),
        arch: arch.into(),
        seed,
        n_trials: n_trials as u64,
        spearman: rho,
        modes: vec![
            ModeReport {
                mode: "accurate".into(),
                accurate_sims: acc_sims,
                winner_seconds: acc_best,
            },
            ModeReport {
                mode: "topk".into(),
                accurate_sims: topk_sims,
                winner_seconds: topk_best,
            },
            ModeReport {
                mode: "predicted".into(),
                accurate_sims: unc_sims,
                winner_seconds: unc_best,
            },
        ],
        escalation_rate: unc_sims as f64 / unc.result.history.len().max(1) as f64,
        avoided_simulations: ps.avoided_simulations,
        mean_abs_rank_error: ps.mean_abs_rank_error,
        pass,
    };
    println!("{}", serde_json::to_string(&report).expect("serializes"));

    eprintln!(
        "[smoke] accurate sims: accurate-only {acc_sims}, topk {topk_sims}, uncertainty {unc_sims}"
    );
    eprintln!(
        "[smoke] winner runtimes (s): accurate-only {acc_best:.3e}, topk {topk_best:.3e}, uncertainty {unc_best:.3e}"
    );
    if !spearman_ok {
        eprintln!("[smoke] FAIL: held-out Spearman {rho:.3} < 0.8");
    }
    if !savings_ok {
        eprintln!(
            "[smoke] FAIL: uncertainty must spend strictly fewer accurate sims than both baselines"
        );
    }
    if !quality_ok {
        eprintln!(
            "[smoke] FAIL: uncertainty winner {unc_best:.3e}s outside the 5 % band of {acc_best:.3e}s"
        );
    }
    if !pass {
        std::process::exit(1);
    }
    eprintln!("[smoke] PASS");
}
