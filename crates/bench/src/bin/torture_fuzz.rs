//! Differential torture fuzzer — the standing gate every engine and
//! backend tier must pass.
//!
//! Runs a time-budgeted fuzz session over the named torture scenario
//! corpus: each case generates one program from a journaled
//! `(config, seed)` identity and diffs it across every replay engine ×
//! backend fidelity × `n_parallel` combination
//! (`simtune_core::diffharness`). Divergent cases are delta-debugged to
//! a minimal repro and written as `.s` artifacts; stdout is one JSON
//! summary (schema `simtune-torture-fuzz-v2`) with throughput and
//! per-scenario coverage. Exit status is nonzero iff any case diverged
//! (or the session itself failed), so CI can gate on it directly.
//!
//! ```text
//! torture_fuzz [--seconds N] [--start-seed N] [--scenario NAME]
//!              [--fidelity SPEC] [--journal PATH] [--repro-dir PATH]
//! torture_fuzz --replay SCENARIO:SEED
//! torture_fuzz --list-scenarios
//! ```
//!
//! `--fidelity <spec>` (any `simtune_core::FidelitySpec` string, e.g.
//! `pipelined` or `pipelined:btb=64,ras=4`) adds a focus lane: every
//! case is also replayed on that tier across all engines and must
//! report bit-identically, cycles included — the nightly long-fuzz
//! matrix runs one lane per tier this way.
//!
//! `--replay` re-runs one journaled case verbosely (the workflow for a
//! failure found by the long-fuzz lane: copy the `scenario:seed` from
//! the journal or repro header, replay locally, then shrink under a
//! debugger). Seeds accept decimal or `0x`-prefixed hex.

use simtune_bench::fuzz::{replay_case, run_fuzz, FuzzOptions};
use simtune_isa::TortureConfig;
use std::process::exit;
use std::time::Duration;

fn parse_seed(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: torture_fuzz [--seconds N] [--start-seed N] [--scenario NAME] \
         [--fidelity SPEC] [--journal PATH] [--repro-dir PATH] \
         | --replay SCENARIO:SEED | --list-scenarios"
    );
    exit(2);
}

fn main() {
    let mut opts = FuzzOptions::default();
    let mut replay: Option<(String, u64)> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--seconds" => {
                let v = value("--seconds");
                opts.budget = Duration::from_secs_f64(v.parse().unwrap_or_else(|_| {
                    eprintln!("--seconds: invalid number {v:?}");
                    exit(2);
                }));
            }
            "--start-seed" => {
                let v = value("--start-seed");
                opts.start_seed = parse_seed(&v).unwrap_or_else(|| {
                    eprintln!("--start-seed: invalid seed {v:?}");
                    exit(2);
                });
            }
            "--scenario" => opts.scenario = Some(value("--scenario")),
            "--fidelity" => {
                let v = value("--fidelity");
                opts.fidelity = Some(v.parse().unwrap_or_else(|e| {
                    eprintln!("--fidelity: {e}");
                    exit(2);
                }));
            }
            "--journal" => opts.journal = Some(value("--journal").into()),
            "--repro-dir" => opts.repro_dir = Some(value("--repro-dir").into()),
            "--replay" => {
                let v = value("--replay");
                let (scenario, seed) = v.rsplit_once(':').unwrap_or_else(|| {
                    eprintln!("--replay expects SCENARIO:SEED, got {v:?}");
                    exit(2);
                });
                let seed = parse_seed(seed).unwrap_or_else(|| {
                    eprintln!("--replay: invalid seed {seed:?}");
                    exit(2);
                });
                replay = Some((scenario.to_string(), seed));
            }
            "--list-scenarios" => {
                for name in TortureConfig::scenario_names() {
                    println!("{name}");
                }
                return;
            }
            _ => usage(),
        }
    }

    if let Some((scenario, seed)) = replay {
        let out = replay_case(&scenario, seed).unwrap_or_else(|e| {
            eprintln!("[fuzz] {e}");
            exit(2);
        });
        eprintln!(
            "[fuzz] replayed {scenario}:{seed:#x}: {} combos, faulted={}, {} divergences",
            out.combos,
            out.faulted,
            out.divergences.len()
        );
        for d in &out.divergences {
            println!("{d}");
        }
        exit(if out.passed() { 0 } else { 1 });
    }

    eprintln!(
        "[fuzz] session: {:.0}s budget, start seed {:#x}, scenario {}, focus tier {}",
        opts.budget.as_secs_f64(),
        opts.start_seed,
        opts.scenario.as_deref().unwrap_or("<whole corpus>"),
        opts.fidelity
            .as_ref()
            .map_or("<none>".into(), |f| f.digest()),
    );
    let summary = run_fuzz(&opts).unwrap_or_else(|e| {
        eprintln!("[fuzz] session failed: {e}");
        exit(2);
    });
    eprintln!(
        "[fuzz] {} cases ({:.1}/s), {} combos, {} divergent",
        summary.cases,
        summary.programs_per_second,
        summary.combos,
        summary.failures.len()
    );
    println!(
        "{}",
        serde_json::to_string(&summary).expect("summary serializes")
    );
    exit(if summary.pass { 0 } else { 1 });
}
