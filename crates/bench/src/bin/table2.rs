//! Regenerates the paper's Table II: shapes of the Conv2D+Bias+ReLU
//! groups, plus the scaled variants used by the default experiment
//! scale (DESIGN.md §7).

use simtune_bench::Scale;

fn print_groups(title: &str, scale: Scale) {
    println!("{title}");
    println!(
        "{:>5} {:>3} {:>5} {:>5} {:>5} {:>5} {:>3} {:>3} {:>7} {:>7} {:>9}",
        "group", "N", "H", "W", "CO", "CI", "KH", "KW", "stride", "pad", "MMACs"
    );
    for (i, g) in scale.conv_groups().iter().enumerate() {
        println!(
            "{:>5} {:>3} {:>5} {:>5} {:>5} {:>5} {:>3} {:>3} {:>7} {:>7} {:>9.2}",
            i,
            g.n,
            g.h,
            g.w,
            g.co,
            g.ci,
            g.kh,
            g.kw,
            format!("({},{})", g.stride.0, g.stride.1),
            format!("({},{})", g.pad.0, g.pad.1),
            g.macs() as f64 / 1e6
        );
    }
    println!();
}

fn main() {
    print_groups(
        "TABLE II: Shapes of the used Conv2D+Bias+ReLU kernels (paper scale)",
        Scale::Paper,
    );
    for scale in [Scale::Half, Scale::Quarter, Scale::Smoke] {
        print_groups(&format!("Scaled variant: --scale {scale}"), scale);
    }
}
