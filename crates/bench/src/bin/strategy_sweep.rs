//! Compares the pluggable search strategies at a fixed simulation
//! budget on the paper's Conv2D workload.
//!
//! Pac-Sim and CAPSim (PAPERS.md) argue that once per-candidate
//! simulation is cheap, *candidate selection* dominates tuning cost.
//! This binary quantifies that on one group: every strategy gets the
//! same trial budget, the same predictor and the same simulators, and
//! the table reports what each one found and how fast it converged.
//!
//! ```text
//! cargo run --release --bin strategy_sweep -- --arch riscv --scale smoke
//! cargo run --release --bin strategy_sweep -- --strategy evolutionary
//! ```
//!
//! `--strategy <name>` restricts the sweep to one strategy
//! (`random|grid|hill|evolutionary|annealing`); the default sweeps all
//! five.

use simtune_bench::{Args, ExperimentConfig};
use simtune_core::{
    collect_group_data, tune_with_predictor, CollectOptions, ScorePredictor, StrategySpec,
    TuneOptions,
};
use simtune_hw::TargetSpec;
use simtune_predict::PredictorKind;
use simtune_tensor::conv2d_bias_relu;

fn main() {
    let args = Args::from_env();
    let strategies: Vec<StrategySpec> = match &args.strategy {
        Some(s) => vec![s.clone()],
        None => StrategySpec::all().to_vec(),
    };
    let n_trials = 48.min(args.impls.max(16));

    for cfg in ExperimentConfig::from_args(&args) {
        let Some(spec) = TargetSpec::by_name(&cfg.arch) else {
            eprintln!("[{}] unknown arch, skipping", cfg.arch);
            continue;
        };
        // Group 1 of Table II at the requested scale: the sweep workload.
        let shape = cfg.scale.conv_groups()[1];
        let def = conv2d_bias_relu(&shape);
        eprintln!(
            "[{}] training predictor on conv2d group 1 ({:.1}M MACs)...",
            cfg.arch,
            shape.macs() as f64 / 1e6
        );
        let data = match collect_group_data(
            &def,
            &spec,
            1,
            &CollectOptions {
                n_impls: cfg.impls.min(60),
                n_parallel: cfg.n_parallel,
                seed: cfg.seed,
                max_attempts_factor: 40,
                ..CollectOptions::default()
            },
        ) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("[{}] collection failed: {e}", cfg.arch);
                continue;
            }
        };
        let mut predictor =
            ScorePredictor::new(PredictorKind::Xgboost, &cfg.arch, "conv2d_bias_relu", 1);
        if let Err(e) = predictor.train(std::slice::from_ref(&data)) {
            eprintln!("[{}] training failed: {e}", cfg.arch);
            continue;
        }

        println!(
            "\n[{}] {n_trials} trials, batch {}, seed {}",
            cfg.arch,
            n_trials.min(12),
            cfg.seed
        );
        println!(
            "{:>13} | {:>11} | {:>11} | {:>8} | {:>13} | {:>8}",
            "strategy", "best score", "simulations", "improves", "trials-to-best", "restarts"
        );
        println!("{}", "-".repeat(80));
        for strategy in &strategies {
            let opts = TuneOptions {
                n_trials,
                batch_size: n_trials.min(12),
                n_parallel: cfg.n_parallel,
                seed: cfg.seed,
                strategy: strategy.clone(),
                ..TuneOptions::default()
            };
            match tune_with_predictor(&def, &spec, &predictor, &opts) {
                Ok(result) => {
                    let c = result.convergence;
                    println!(
                        "{:>13} | {:>11.4} | {:>11} | {:>8} | {:>13} | {:>8}",
                        result.strategy,
                        result.best().score,
                        result.simulations,
                        c.improvements,
                        c.trials_to_best,
                        c.restarts
                    );
                }
                Err(e) => println!("{:>13} | failed: {e}", strategy.label()),
            }
        }
    }
}
