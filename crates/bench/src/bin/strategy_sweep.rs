//! Compares the pluggable search strategies at a fixed simulation
//! budget on the paper's Conv2D workload.
//!
//! Pac-Sim and CAPSim (PAPERS.md) argue that once per-candidate
//! simulation is cheap, *candidate selection* dominates tuning cost.
//! This binary quantifies that on one group: every strategy gets the
//! same trial budget, the same predictor and the same simulators, and
//! the table reports what each one found and how fast it converged.
//!
//! ```text
//! cargo run --release --bin strategy_sweep -- --arch riscv --scale smoke
//! cargo run --release --bin strategy_sweep -- --strategy evolutionary
//! cargo run --release --bin strategy_sweep -- --arch riscv --scale smoke --json > BENCH_5.json
//! ```
//!
//! `--strategy <name>` restricts the sweep to one strategy
//! (`random|grid|hill|evolutionary|annealing`); the default sweeps all
//! five. `--json` replaces the human table with one machine-readable
//! [`simtune_bench::PerfSummary`] on stdout (progress still goes to
//! stderr) — the format the `perf-smoke` CI job archives as
//! `BENCH_5.json` and gates against `ci/bench-baseline.json`.
//!
//! `--fidelity <spec>` selects how candidates are simulated:
//! `accurate` (default) runs every trial on the accurate backend; any
//! other [`simtune_core::FidelitySpec`] tier (`fast-count`,
//! `sampled:fraction=F`, `pipelined[:btb=N,ras=N]`) explores there and
//! re-simulates the static top-k finalists accurately; `topk` is the
//! same policy on its default cheap tier; and `predicted` drives the
//! learned tier with uncertainty-driven escalation. The escalated
//! modes fill the `escalation_rate` (and, for `predicted`,
//! `avoided_simulations` / `mean_abs_rank_error`) fields of each
//! [`simtune_bench::StrategyPerf`].
//!
//! `--engine interp|decoded|threaded|batch` selects the replay engine
//! every simulator session runs on (default `decoded`). Engines are
//! bit-identical in results — the sweep's scores and history do not
//! move — but not in speed; the per-strategy `replay_nanos` /
//! `replay_trials_per_sec` counters (and the sweep-wide total) isolate
//! pure replay throughput so engine ladders can be compared without
//! propose/build/score noise.
//!
//! `--save-cache PATH` snapshots the sweep's memo cache afterwards and
//! `--load-cache PATH` warms it beforehand; CI reloads one sweep's
//! snapshot into an identical resweep and requires a ~1.0 hit rate plus
//! a throughput win (`perf_gate --warm`).

use simtune_bench::{
    Args, ExperimentConfig, FidelityMode, PerfSummary, PerfTotals, StrategyPerf, PERF_SCHEMA,
};
use simtune_core::{
    collect_group_data, tune_with_fidelity_escalation, tune_with_predictor, CollectOptions,
    CoreError, EscalationOptions, EscalationPolicy, ScorePredictor, SimCache, SnapshotLoad,
    StrategySpec, TuneOptions, TuneResult, UncertaintyPolicy,
};
use simtune_hw::TargetSpec;
use simtune_predict::PredictorKind;
use simtune_tensor::conv2d_bias_relu;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    // One PerfSummary document per run: concatenated JSON objects would
    // be unparseable by perf_gate, so JSON mode demands a single arch.
    assert!(
        !args.json || args.archs.len() == 1,
        "--json emits one JSON document and needs exactly one --arch (got {:?})",
        args.archs
    );
    let strategies: Vec<StrategySpec> = match &args.strategy {
        Some(s) => vec![s.clone()],
        None => StrategySpec::all().to_vec(),
    };
    let n_trials = 48.min(args.impls.max(16));

    for cfg in ExperimentConfig::from_args(&args) {
        let Some(spec) = TargetSpec::by_name(&cfg.arch) else {
            eprintln!("[{}] unknown arch, skipping", cfg.arch);
            continue;
        };
        // Group 1 of Table II at the requested scale: the sweep workload.
        let shape = cfg.scale.conv_groups()[1];
        let def = conv2d_bias_relu(&shape);
        eprintln!(
            "[{}] training predictor on conv2d group 1 ({:.1}M MACs)...",
            cfg.arch,
            shape.macs() as f64 / 1e6
        );
        // One memo cache for the whole sweep: strategies revisit each
        // other's candidates, and the hit rate below measures how much
        // of the sweep was answered from memory.
        let memo = Arc::new(SimCache::new());
        if let Some(path) = &args.load_cache {
            match memo.load_from(std::path::Path::new(path)) {
                Ok(SnapshotLoad::Loaded(n)) => {
                    eprintln!(
                        "[{}] warmed memo cache with {n} entries from {path}",
                        cfg.arch
                    );
                }
                Ok(SnapshotLoad::Missing) => {
                    eprintln!("[{}] no snapshot at {path}; cold start", cfg.arch);
                }
                // load_from already logged the rejection reason.
                Ok(SnapshotLoad::Rejected(_)) => {}
                Err(e) => eprintln!("[{}] snapshot read failed ({e}); cold start", cfg.arch),
            }
        }
        let data = match collect_group_data(
            &def,
            &spec,
            1,
            &CollectOptions {
                n_impls: cfg.impls.min(60),
                n_parallel: cfg.n_parallel,
                seed: cfg.seed,
                max_attempts_factor: 40,
                ..CollectOptions::default()
            },
        ) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("[{}] collection failed: {e}", cfg.arch);
                continue;
            }
        };
        let mut predictor =
            ScorePredictor::new(PredictorKind::Xgboost, &cfg.arch, "conv2d_bias_relu", 1);
        if let Err(e) = predictor.train(std::slice::from_ref(&data)) {
            eprintln!("[{}] training failed: {e}", cfg.arch);
            continue;
        }

        if !args.json {
            println!(
                "\n[{}] {n_trials} trials, batch {}, seed {}",
                cfg.arch,
                n_trials.min(12),
                cfg.seed
            );
            println!(
                "{:>13} | {:>11} | {:>11} | {:>8} | {:>13} | {:>8} | {:>11} | {:>11}",
                "strategy",
                "best score",
                "simulations",
                "improves",
                "trials-to-best",
                "restarts",
                "trials/sec",
                "replay/sec"
            );
            println!("{}", "-".repeat(110));
        }
        let mut perfs: Vec<StrategyPerf> = Vec::new();
        let sweep_start = Instant::now();
        for strategy in &strategies {
            let opts = TuneOptions {
                n_trials,
                batch_size: n_trials.min(12),
                n_parallel: cfg.n_parallel,
                seed: cfg.seed,
                strategy: strategy.clone(),
                memo_cache: Some(memo.clone()),
                engine: args.engine,
                ..TuneOptions::default()
            };
            let t0 = Instant::now();
            match run_tune(&args, &def, &spec, &predictor, &opts) {
                Ok((result, accurate_runs)) => {
                    let wall = t0.elapsed().as_secs_f64();
                    let trials_per_sec = result.history.len() as f64 / wall.max(1e-9);
                    let replay_tps = replay_throughput(result.history.len(), result.replay_nanos);
                    let c = result.convergence;
                    if !args.json {
                        println!(
                            "{:>13} | {:>11.4} | {:>11} | {:>8} | {:>13} | {:>8} | {:>11.1} | {:>11.1}",
                            result.strategy,
                            result.best().score,
                            result.simulations,
                            c.improvements,
                            c.trials_to_best,
                            c.restarts,
                            trials_per_sec,
                            replay_tps
                        );
                        if let Some(acc) = accurate_runs {
                            let ps = result.predictor.as_ref();
                            println!(
                                "{:>13} | escalated {acc}/{} ({:.0} %){}",
                                "",
                                result.history.len(),
                                acc as f64 / result.history.len().max(1) as f64 * 100.0,
                                ps.map_or(String::new(), |p| format!(
                                    ", avoided {} sims, rank err {:.3}",
                                    p.avoided_simulations, p.mean_abs_rank_error
                                ))
                            );
                        }
                    }
                    perfs.push(StrategyPerf {
                        name: result.strategy.clone(),
                        best_score: result.best().score,
                        trials: result.history.len() as u64,
                        simulations: result.simulations as u64,
                        wall_seconds: wall,
                        trials_per_sec,
                        stage_nanos: [
                            result.timings.propose_nanos,
                            result.timings.build_nanos,
                            result.timings.sim_nanos,
                            result.timings.score_nanos,
                        ],
                        escalation_rate: accurate_runs
                            .map(|a| a as f64 / result.history.len().max(1) as f64),
                        avoided_simulations: result.predictor.map(|p| p.avoided_simulations),
                        mean_abs_rank_error: result.predictor.map(|p| p.mean_abs_rank_error),
                        replay_nanos: result.replay_nanos,
                        replay_trials_per_sec: replay_tps,
                    });
                }
                Err(e) => eprintln!("{:>13} | failed: {e}", strategy.label()),
            }
        }
        let sweep_wall = sweep_start.elapsed().as_secs_f64();
        let memo_stats = memo.stats();
        let total_trials: u64 = perfs.iter().map(|p| p.trials).sum();
        let total_replay: u64 = perfs.iter().map(|p| p.replay_nanos).sum();
        let summary = PerfSummary {
            schema: PERF_SCHEMA.into(),
            provenance: format!(
                "cargo run --release --bin strategy_sweep -- --arch {} --scale {} --impls {} --test {} --seed {} --parallel {}{}{} --json",
                cfg.arch, args.scale.label(), args.impls, args.test_count, cfg.seed, cfg.n_parallel,
                if args.fidelity == FidelityMode::default() {
                    String::new()
                } else {
                    format!(" --fidelity {}", args.fidelity.label())
                },
                if args.engine == simtune_core::EngineKind::default() {
                    String::new()
                } else {
                    format!(" --engine {}", args.engine.label())
                }
            ),
            arch: cfg.arch.clone(),
            seed: cfg.seed,
            engine: args.engine.label().to_string(),
            fidelity: args.fidelity.label(),
            n_trials: n_trials as u64,
            n_parallel: cfg.n_parallel as u64,
            strategies: perfs,
            totals: PerfTotals {
                trials: total_trials,
                wall_seconds: sweep_wall,
                trials_per_sec: total_trials as f64 / sweep_wall.max(1e-9),
                memo_hits: memo_stats.hits,
                memo_misses: memo_stats.misses,
                memo_hit_rate: memo_stats.hit_ratio(),
                replay_trials_per_sec: replay_throughput(total_trials as usize, total_replay),
            },
        };
        if let Some(path) = &args.save_cache {
            match memo.save_to(std::path::Path::new(path)) {
                Ok(n) => eprintln!("[{}] saved {n} memo entries to {path}", cfg.arch),
                Err(e) => eprintln!("[{}] snapshot write failed: {e}", cfg.arch),
            }
        }
        if args.json {
            println!("{}", summary.to_json().expect("serializes"));
        } else {
            println!(
                "sweep[{}]: {:.1} trials/sec ({:.1} replay/sec) over {} trials, memo hit rate {:.1} % ({} hits / {} lookups)",
                summary.engine,
                summary.totals.trials_per_sec,
                summary.totals.replay_trials_per_sec,
                summary.totals.trials,
                summary.totals.memo_hit_rate * 100.0,
                memo_stats.hits,
                memo_stats.lookups(),
            );
        }
    }
}

/// Replay-only throughput: trials per second of pure simulator replay
/// time; `0` when nothing replayed (fully memoized rerun).
fn replay_throughput(trials: usize, replay_nanos: u64) -> f64 {
    if replay_nanos == 0 {
        0.0
    } else {
        trials as f64 / (replay_nanos as f64 / 1e9)
    }
}

/// Runs one strategy's tune in the requested fidelity mode.
///
/// Returns the tune result plus the number of accurate simulations the
/// escalated modes spent (`None` for the accurate-only baseline, where
/// every simulation is accurate by construction).
fn run_tune(
    args: &Args,
    def: &simtune_tensor::ComputeDef,
    spec: &TargetSpec,
    predictor: &ScorePredictor,
    opts: &TuneOptions,
) -> Result<(TuneResult, Option<usize>), CoreError> {
    match &args.fidelity {
        FidelityMode::Tier(simtune_core::FidelitySpec::Accurate) => {
            Ok((tune_with_predictor(def, spec, predictor, opts)?, None))
        }
        FidelityMode::Tier(explore) => {
            // Pinned non-accurate tier: explore there, re-simulate the
            // static top-k finalists accurately so the sweep's scores
            // stay comparable across tiers.
            let esc = EscalationOptions {
                explore: Some(explore.clone()),
                ..EscalationOptions::default()
            };
            let out = tune_with_fidelity_escalation(def, spec, predictor, opts, &esc)?;
            Ok((out.result, Some(out.accurate_runs)))
        }
        FidelityMode::TopK => {
            let out = tune_with_fidelity_escalation(
                def,
                spec,
                predictor,
                opts,
                &EscalationOptions::default(),
            )?;
            Ok((out.result, Some(out.accurate_runs)))
        }
        FidelityMode::Predicted => {
            let esc = EscalationOptions {
                policy: EscalationPolicy::Uncertainty(UncertaintyPolicy {
                    min_train: 4,
                    refit_every: 4,
                    ..UncertaintyPolicy::default()
                }),
                ..EscalationOptions::default()
            };
            let out = tune_with_fidelity_escalation(def, spec, predictor, opts, &esc)?;
            Ok((out.result, Some(out.accurate_runs)))
        }
    }
}
