//! Reproduces the paper's Equation 4 analysis (Section IV): the number
//! `K` of parallel simulator instances needed to match native
//! benchmarking throughput per architecture. The paper reports
//! `K_x86 ∈ [7, 97]`, `K_ARM ∈ [4, 31]`, `K_RISC-V ∈ [3, 21]` —
//! meaning in the best case 3 parallel simulators replace one RISC-V
//! board.
//!
//! `t_simulator` is the measured host wall-clock of each simulation;
//! the native benchmarking time is `(t_cooldown + t_ref) · N_exe` with
//! the paper's protocol (`N_exe = 15`, `t_cooldown = 1 s`).

use simtune_bench::{collect_arch_datasets, Args, ExperimentConfig};
use simtune_core::parallel_speedup_k;

/// gem5 atomic-mode simulation speed assumed for the normalized K
/// column, in million instructions per second. gem5's atomic SimpleCPU
/// typically reaches a few MIPS; the paper's K ranges arise at that
/// speed, while this repo's Rust simulator is orders of magnitude
/// faster, which pushes the *measured* K toward 1.
const GEM5_MIPS: f64 = 1.0;

fn main() {
    let args = Args::from_env();
    println!(
        "Equation 4: K = ceil(t_sim / ((t_cooldown + t_ref) * N_exe)), \
         N_exe = 15, t_cooldown = 1 s, scale = {}",
        args.scale
    );
    println!(
        "{:>6} | {:>10} {:>10} | {:>12} {:>12} | {:>11} | {:>17}",
        "arch",
        "t_ref min",
        "t_ref max",
        "t_sim min",
        "t_sim max",
        "K measured",
        "K @gem5+paper scale".to_string()
    );
    println!("{}", "-".repeat(100));
    for cfg in ExperimentConfig::from_args(&args) {
        let groups = match collect_arch_datasets(&cfg, args.refresh) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("[{}] collection failed: {e}", cfg.arch);
                continue;
            }
        };
        let mut k = (u64::MAX, 0u64);
        let mut k_gem5 = (u64::MAX, 0u64);
        let mut tref = (f64::INFINITY, 0.0f64);
        let mut tsim = (f64::INFINITY, 0.0f64);
        // Work-scale factor back to the paper's full-size groups, used
        // for the extrapolated column.
        let paper = simtune_tensor::Conv2dShape::paper_groups();
        let scaled = cfg.scale.conv_groups();
        for g in &groups {
            let factor = paper[g.group_id].macs() as f64 / scaled[g.group_id].macs() as f64;
            for ((t_ref, t_sim), stats) in g.t_ref.iter().zip(&g.sim_seconds).zip(&g.stats) {
                let k_now = parallel_speedup_k(*t_sim, *t_ref, 1.0, 15);
                k = (k.0.min(k_now), k.1.max(k_now));
                // Paper setting: the same implementation at full workload
                // scale, executed by a gem5-speed simulator. Instruction
                // count and target runtime both scale with the MAC count.
                let t_gem5 = stats.inst_mix.total() as f64 * factor / (GEM5_MIPS * 1e6);
                let k_g = parallel_speedup_k(t_gem5, *t_ref * factor, 1.0, 15);
                k_gem5 = (k_gem5.0.min(k_g), k_gem5.1.max(k_g));
                tref = (tref.0.min(*t_ref), tref.1.max(*t_ref));
                tsim = (tsim.0.min(*t_sim), tsim.1.max(*t_sim));
            }
        }
        println!(
            "{:>6} | {:>9.3}ms {:>9.3}ms | {:>11.3}ms {:>11.3}ms | {:>4} ..{:>4} | {:>7} ..{:>7}",
            cfg.arch,
            tref.0 * 1e3,
            tref.1 * 1e3,
            tsim.0 * 1e3,
            tsim.1 * 1e3,
            k.0,
            k.1,
            k_gem5.0,
            k_gem5.1
        );
    }
    println!(
        "\nInterpretation: K parallel simulator instances on the host match the\n\
         benchmarking throughput of one physical board; smaller K favors the\n\
         simulator interface.\n\
         * 'K measured' uses this repo's Rust simulator (tens-to-hundreds of\n\
           MIPS): K collapses to ~1, i.e. a single instance already beats\n\
           native benchmarking — stronger than the paper's result.\n\
         * 'K @gem5+paper scale' extrapolates both t_sim and t_ref to the\n\
           paper's full-size kernels and a gem5 atomic-mode simulator\n\
           ({GEM5_MIPS} MIPS); the paper reports K_x86 ∈ [7,97], K_ARM ∈ [4,31],\n\
           K_RISCV ∈ [3,21] in that setting. The fastest target (x86) has the\n\
           largest K because its native runs finish soonest."
    );
}
