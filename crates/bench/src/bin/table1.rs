//! Regenerates the paper's Table I: cache sizes and hierarchy of the
//! modeled CPUs, printed from the actual configurations the simulators
//! replicate (not hard-coded strings — if a preset drifts, this table
//! drifts with it).

use simtune_cache::{CacheConfig, HierarchyConfig};

fn row(cfg: Option<&CacheConfig>) -> String {
    match cfg {
        Some(c) => format!(
            "{:>7} {:>6} {:>6}",
            format!("{}K", c.size_bytes / 1024),
            c.num_sets,
            c.associativity
        ),
        None => format!("{:>7} {:>6} {:>6}", "-", "-", "-"),
    }
}

fn main() {
    println!("TABLE I: Cache sizes and hierarchy of the used CPUs");
    println!(
        "{:<8}|{:^21}|{:^21}|{:^21}|{:^21}",
        "", "L1 Data", "L1 Instruction", "L2", "LLC (L3)"
    );
    println!(
        "{:<8}|{:>7} {:>6} {:>6}|{:>7} {:>6} {:>6}|{:>7} {:>6} {:>6}|{:>7} {:>6} {:>6}",
        "",
        "size",
        "sets",
        "assoc",
        "size",
        "sets",
        "assoc",
        "size",
        "sets",
        "assoc",
        "size",
        "sets",
        "assoc"
    );
    println!("{}", "-".repeat(8 + 4 * 22));
    for h in HierarchyConfig::paper_presets() {
        println!(
            "{:<8}|{}|{}|{}|{}",
            h.name,
            row(Some(&h.l1d)),
            row(Some(&h.l1i)),
            row(Some(&h.l2)),
            row(h.l3.as_ref()),
        );
    }
    println!("\nAll cache line sizes are 64 B; replacement policy LRU (gem5 classic default).");
}
