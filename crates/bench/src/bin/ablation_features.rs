//! Feature-set ablation (DESIGN.md experiment index): how much of the
//! prediction quality comes from each feature family? The paper feeds
//! instruction-mix ratios, cache ratios, and both in raw + group-
//! normalized form; this binary removes one family at a time.

use simtune_bench::{collect_arch_datasets, Args, ExperimentConfig};
use simtune_core::{evaluate_predictor, FeatureConfig};
use simtune_predict::PredictorKind;

fn main() {
    let args = Args::from_env();
    let variants: Vec<(&str, FeatureConfig)> = vec![
        ("full (paper)", FeatureConfig::default()),
        (
            "no inst mix",
            FeatureConfig {
                inst_mix: false,
                ..FeatureConfig::default()
            },
        ),
        (
            "no cache",
            FeatureConfig {
                cache: false,
                ..FeatureConfig::default()
            },
        ),
        (
            "raw only",
            FeatureConfig {
                normalized: false,
                ..FeatureConfig::default()
            },
        ),
        (
            "no total insts",
            FeatureConfig {
                total_insts: false,
                ..FeatureConfig::default()
            },
        ),
    ];
    for cfg in ExperimentConfig::from_args(&args) {
        let groups = match collect_arch_datasets(&cfg, args.refresh) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("[{}] collection failed: {e}", cfg.arch);
                continue;
            }
        };
        println!(
            "\nFeature ablation [{}] (XGBoost, rounds={}, test={}/group):",
            cfg.arch, args.rounds, args.test_count
        );
        println!(
            "{:>16} | {:>11} | {:>10} | {:>10}",
            "features", "mean Etop1", "max Rtop1", "mean Qlow"
        );
        println!("{}", "-".repeat(58));
        for (label, feature_config) in &variants {
            match evaluate_predictor(
                PredictorKind::Xgboost,
                &groups,
                &cfg.arch,
                "conv2d_bias_relu",
                args.test_count,
                args.rounds,
                args.seed,
                *feature_config,
            ) {
                Ok(report) => {
                    let mean_qlow = report.per_group.iter().map(|m| m.q_low).sum::<f64>()
                        / report.per_group.len() as f64;
                    println!(
                        "{:>16} | {:>10.2}% | {:>9.1}% | {:>9.2}%",
                        label,
                        report.mean_e_top1(),
                        report.max_r_top1(),
                        mean_qlow
                    );
                }
                Err(e) => println!("{label:>16} | failed: {e}"),
            }
        }
    }
}
