//! Machine-readable perf-smoke format and the CI regression gate.
//!
//! The `perf-smoke` CI job runs a short fixed-seed tuning sweep
//! (`strategy_sweep --json`), writes the resulting [`PerfSummary`] as
//! `BENCH_5.json`, and compares it against the committed
//! `ci/bench-baseline.json` with [`gate`]: a throughput drop beyond the
//! allowed fraction fails the build. Local runs share the exact same
//! format, so a developer can regenerate the baseline with one command
//! (see `ci/bench-baseline.json` for the provenance line).

use serde::{Deserialize, Serialize};

/// Format marker so the gate can reject files from other tools or
/// incompatible revisions instead of mis-parsing them.
///
/// v3: documents carry the sweep's fidelity-mode label (a
/// `FidelitySpec` digest or an escalation-policy name), and the gates
/// refuse cross-fidelity comparisons; v2 baselines predate the
/// pipelined timing tier and the unified spec and are rejected rather
/// than compared against a sweep whose fidelity is unknown.
///
/// v2: documents carry the replay-engine identity plus per-engine
/// replay-throughput counters (`replay_nanos`, `replay_trials_per_sec`);
/// v1 baselines predate the engine ladder.
pub const PERF_SCHEMA: &str = "simtune-perf-smoke-v3";

/// Per-strategy measurement of one sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyPerf {
    /// Strategy label ("random", "grid", ...).
    pub name: String,
    /// Best (lowest) score the strategy found.
    pub best_score: f64,
    /// Evaluated trials (history length — failed builds included, the
    /// same definition [`PerfTotals::trials`] sums).
    pub trials: u64,
    /// Simulations submitted to the session (successful builds only;
    /// memo hits included).
    pub simulations: u64,
    /// Wall-clock of the whole tuning run, in seconds.
    pub wall_seconds: f64,
    /// `trials / wall_seconds`.
    pub trials_per_sec: f64,
    /// Producer-side stage split, nanoseconds:
    /// `[propose, build, sim_blocked, score]`. `sim_blocked` only counts
    /// time the loop *waited* on the worker pool — simulation hidden
    /// behind the pipelined build never shows up here.
    pub stage_nanos: [u64; 4],
    /// Fraction of trials escalated to the accurate tier
    /// (`accurate_runs / trials`). `null` for accurate-only runs, set
    /// for both escalated fidelity modes (`--fidelity topk|predicted`).
    pub escalation_rate: Option<f64>,
    /// Accurate simulations the predicted tier answered from the model
    /// instead (finite-scored, never accurately verified candidates).
    /// `null` unless the run used `--fidelity predicted`.
    pub avoided_simulations: Option<u64>,
    /// Normalized mean absolute rank displacement between the online
    /// model's predicted ordering and the accurate ordering of the
    /// escalated candidates (0 = identical ranking, 1 = full reversal).
    /// `null` unless the run used `--fidelity predicted`.
    pub mean_abs_rank_error: Option<f64>,
    /// Host nanoseconds the backends reported spending inside simulator
    /// replay for this strategy's scored trials
    /// (`TuneResult::replay_nanos`) — pure replay time, excluding
    /// propose/build/score and pool scheduling.
    pub replay_nanos: u64,
    /// `trials / (replay_nanos / 1e9)` — replay-only throughput, the
    /// number the engine ladder moves; `0` when nothing replayed.
    pub replay_trials_per_sec: f64,
}

/// Sweep-wide totals — what the regression gate compares.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfTotals {
    /// Trials evaluated across all strategies (sum of
    /// [`StrategyPerf::trials`]; same definition as the per-strategy
    /// rows, so rows and totals are directly comparable).
    pub trials: u64,
    /// Wall-clock of the measured region, in seconds.
    pub wall_seconds: f64,
    /// `trials / wall_seconds` — the gated throughput number.
    pub trials_per_sec: f64,
    /// Memo-cache hits across the sweep (one cache is shared by every
    /// strategy, so cross-strategy revisits are answered from memory).
    pub memo_hits: u64,
    /// Memo-cache misses across the sweep.
    pub memo_misses: u64,
    /// `hits / (hits + misses)`, 0 when the cache was never consulted.
    pub memo_hit_rate: f64,
    /// Sweep-wide replay-only throughput: total trials divided by the
    /// summed [`StrategyPerf::replay_nanos`] in seconds; `0` when the
    /// sweep never replayed (e.g. a fully memoized warm rerun).
    pub replay_trials_per_sec: f64,
}

/// The `BENCH_5.json` document: one fixed-seed sweep, summarized.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfSummary {
    /// Always [`PERF_SCHEMA`].
    pub schema: String,
    /// The exact command that produced this document — run it again to
    /// regenerate a baseline after an intentional perf change.
    pub provenance: String,
    /// Target architecture of the sweep ("riscv", ...).
    pub arch: String,
    /// Base seed; the sweep is bit-deterministic under it.
    pub seed: u64,
    /// Replay-engine label the sweep ran on
    /// (`interp|decoded|threaded|batch`). Engines are bit-identical in
    /// results but not in speed, so the gate refuses to compare sweeps
    /// across engines.
    pub engine: String,
    /// Fidelity-mode label the sweep ran under: a
    /// `simtune_core::FidelitySpec` digest (`accurate`,
    /// `pipelined:btb=512,ras=8`, ...) or an escalation-policy name
    /// (`topk`, `predicted`). Tiers trade timing detail for speed, so
    /// the gate refuses to compare sweeps across fidelities.
    pub fidelity: String,
    /// Trials per strategy.
    pub n_trials: u64,
    /// Parallel simulator instances (pool workers).
    pub n_parallel: u64,
    /// Per-strategy measurements.
    pub strategies: Vec<StrategyPerf>,
    /// Sweep-wide totals.
    pub totals: PerfTotals,
}

impl PerfSummary {
    /// Serializes to the compact JSON the CI artifact stores.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (infallible for this data model).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a `BENCH_5.json` / baseline document.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed JSON or a foreign `schema`.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let summary: PerfSummary =
            serde_json::from_str(input).map_err(|e| format!("malformed perf summary: {e:?}"))?;
        if summary.schema != PERF_SCHEMA {
            return Err(format!(
                "schema mismatch: expected {PERF_SCHEMA:?}, found {:?}",
                summary.schema
            ));
        }
        Ok(summary)
    }
}

/// Verdict of one gate comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Baseline throughput (trials/sec).
    pub baseline_tps: f64,
    /// Current throughput (trials/sec).
    pub current_tps: f64,
    /// `1 - current/baseline`; negative means the current run is
    /// *faster* than the baseline.
    pub regression: f64,
    /// The failure threshold the comparison used.
    pub max_regression: f64,
}

impl GateReport {
    /// True when the current run is within the allowed envelope.
    pub fn passes(&self) -> bool {
        self.regression <= self.max_regression
    }

    /// One-line human verdict for the CI log.
    pub fn verdict(&self) -> String {
        format!(
            "throughput {:.1} -> {:.1} trials/sec ({}{:.1} %, limit -{:.0} %): {}",
            self.baseline_tps,
            self.current_tps,
            if self.regression <= 0.0 { "+" } else { "-" },
            self.regression.abs() * 100.0,
            self.max_regression * 100.0,
            if self.passes() { "PASS" } else { "FAIL" }
        )
    }
}

/// Compares a current sweep against the committed baseline.
///
/// Only throughput is gated — scores are bit-deterministic under the
/// fixed seed and guarded by the determinism test suite instead, and
/// the memo hit rate is reported for observability, not gated (it is a
/// property of the workload, not the host).
///
/// # Errors
///
/// Returns an error when the two documents are not comparable (different
/// workload shape) or the baseline throughput is not positive.
pub fn gate(
    current: &PerfSummary,
    baseline: &PerfSummary,
    max_regression: f64,
) -> Result<GateReport, String> {
    if current.arch != baseline.arch
        || current.seed != baseline.seed
        || current.n_trials != baseline.n_trials
        || current.engine != baseline.engine
        || current.fidelity != baseline.fidelity
    {
        return Err(format!(
            "incomparable sweeps: current ({}, seed {}, {} trials, {} engine, {} fidelity) vs baseline ({}, seed {}, {} trials, {} engine, {} fidelity)",
            current.arch, current.seed, current.n_trials, current.engine, current.fidelity,
            baseline.arch, baseline.seed, baseline.n_trials, baseline.engine, baseline.fidelity,
        ));
    }
    if !baseline.totals.trials_per_sec.is_finite() || baseline.totals.trials_per_sec <= 0.0 {
        return Err("baseline throughput must be positive".into());
    }
    let regression = 1.0 - current.totals.trials_per_sec / baseline.totals.trials_per_sec;
    Ok(GateReport {
        baseline_tps: baseline.totals.trials_per_sec,
        current_tps: current.totals.trials_per_sec,
        regression,
        max_regression,
    })
}

/// Verdict of one warm-start comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmReport {
    /// Memo hit rate of the warm sweep.
    pub hit_rate: f64,
    /// Minimum hit rate the comparison demanded.
    pub min_hit_rate: f64,
    /// `warm_tps / cold_tps`.
    pub speedup: f64,
    /// Minimum speedup the comparison demanded.
    pub min_speedup: f64,
}

impl WarmReport {
    /// True when the warm sweep both hit the cache and got faster.
    pub fn passes(&self) -> bool {
        self.hit_rate >= self.min_hit_rate && self.speedup >= self.min_speedup
    }

    /// One-line human verdict for the CI log.
    pub fn verdict(&self) -> String {
        format!(
            "warm start: hit rate {:.3} (need >= {:.3}), speedup {:.2}x (need >= {:.2}x): {}",
            self.hit_rate,
            self.min_hit_rate,
            self.speedup,
            self.min_speedup,
            if self.passes() { "PASS" } else { "FAIL" }
        )
    }
}

/// Compares a warm-start sweep (run over a cache snapshot the cold
/// sweep saved) against its cold counterpart: the warm run must answer
/// essentially every simulation from the restored memo and convert
/// that into a throughput win.
///
/// # Errors
///
/// Returns an error when the two documents describe different sweeps
/// (the warm rerun must replay the cold one exactly) or the cold
/// throughput is not positive.
pub fn warm_gate(
    warm: &PerfSummary,
    cold: &PerfSummary,
    min_hit_rate: f64,
    min_speedup: f64,
) -> Result<WarmReport, String> {
    if warm.arch != cold.arch
        || warm.seed != cold.seed
        || warm.n_trials != cold.n_trials
        || warm.totals.trials != cold.totals.trials
        || warm.engine != cold.engine
        || warm.fidelity != cold.fidelity
    {
        return Err(format!(
            "incomparable sweeps: warm ({}, seed {}, {} trials) vs cold ({}, seed {}, {} trials)",
            warm.arch, warm.seed, warm.totals.trials, cold.arch, cold.seed, cold.totals.trials,
        ));
    }
    if !cold.totals.trials_per_sec.is_finite() || cold.totals.trials_per_sec <= 0.0 {
        return Err("cold throughput must be positive".into());
    }
    Ok(WarmReport {
        hit_rate: warm.totals.memo_hit_rate,
        min_hit_rate,
        speedup: warm.totals.trials_per_sec / cold.totals.trials_per_sec,
        min_speedup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(tps: f64) -> PerfSummary {
        PerfSummary {
            schema: PERF_SCHEMA.into(),
            provenance: "strategy_sweep --json (test fixture)".into(),
            arch: "riscv".into(),
            seed: 42,
            engine: "decoded".into(),
            fidelity: "accurate".into(),
            n_trials: 24,
            n_parallel: 4,
            strategies: vec![StrategyPerf {
                name: "random".into(),
                best_score: 0.5,
                trials: 24,
                simulations: 24,
                wall_seconds: 1.0,
                trials_per_sec: tps,
                stage_nanos: [1, 2, 3, 4],
                escalation_rate: None,
                avoided_simulations: None,
                mean_abs_rank_error: None,
                replay_nanos: 500_000_000,
                replay_trials_per_sec: 48.0,
            }],
            totals: PerfTotals {
                trials: 24,
                wall_seconds: 24.0 / tps,
                trials_per_sec: tps,
                memo_hits: 6,
                memo_misses: 18,
                memo_hit_rate: 0.25,
                replay_trials_per_sec: 48.0,
            },
        }
    }

    #[test]
    fn json_round_trips() {
        let s = summary(120.0);
        let parsed = PerfSummary::from_json(&s.to_json().unwrap()).unwrap();
        assert_eq!(parsed.arch, "riscv");
        assert_eq!(parsed.engine, "decoded");
        assert_eq!(parsed.fidelity, "accurate");
        assert_eq!(parsed.totals.memo_hits, 6);
        assert_eq!(parsed.strategies[0].stage_nanos, [1, 2, 3, 4]);
        assert_eq!(parsed.strategies[0].replay_nanos, 500_000_000);
        assert!((parsed.totals.replay_trials_per_sec - 48.0).abs() < 1e-9);
        assert!((parsed.totals.trials_per_sec - 120.0).abs() < 1e-9);
        // Accurate-only rows carry null predictor fields.
        assert!(parsed.strategies[0].escalation_rate.is_none());
        assert!(parsed.strategies[0].avoided_simulations.is_none());
        assert!(parsed.strategies[0].mean_abs_rank_error.is_none());
    }

    #[test]
    fn predictor_fields_round_trip_when_set() {
        let mut s = summary(120.0);
        s.strategies[0].escalation_rate = Some(0.25);
        s.strategies[0].avoided_simulations = Some(18);
        s.strategies[0].mean_abs_rank_error = Some(0.125);
        let parsed = PerfSummary::from_json(&s.to_json().unwrap()).unwrap();
        assert_eq!(parsed.strategies[0].escalation_rate, Some(0.25));
        assert_eq!(parsed.strategies[0].avoided_simulations, Some(18));
        assert_eq!(parsed.strategies[0].mean_abs_rank_error, Some(0.125));
    }

    #[test]
    fn foreign_schema_is_rejected() {
        let mut s = summary(120.0);
        s.schema = "something-else".into();
        let err = PerfSummary::from_json(&s.to_json().unwrap()).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        assert!(PerfSummary::from_json("{not json").is_err());
    }

    #[test]
    fn gate_passes_within_envelope_and_fails_beyond() {
        let baseline = summary(100.0);
        // 10 % slower: within the 25 % envelope.
        let ok = gate(&summary(90.0), &baseline, 0.25).unwrap();
        assert!(ok.passes(), "{}", ok.verdict());
        assert!((ok.regression - 0.10).abs() < 1e-9);
        // 30 % slower: regression.
        let bad = gate(&summary(70.0), &baseline, 0.25).unwrap();
        assert!(!bad.passes(), "{}", bad.verdict());
        assert!(bad.verdict().contains("FAIL"));
        // Faster than baseline always passes.
        let fast = gate(&summary(140.0), &baseline, 0.25).unwrap();
        assert!(fast.passes());
        assert!(fast.regression < 0.0);
        assert!(fast.verdict().contains("PASS"));
    }

    #[test]
    fn warm_gate_demands_hits_and_speedup() {
        let cold = summary(100.0);
        let mut warm = summary(160.0);
        warm.totals.memo_hit_rate = 1.0;
        let ok = warm_gate(&warm, &cold, 0.99, 1.05).unwrap();
        assert!(ok.passes(), "{}", ok.verdict());
        assert!((ok.speedup - 1.6).abs() < 1e-9);
        // A cold-rate cache fails even when throughput improved.
        let mut missy = summary(160.0);
        missy.totals.memo_hit_rate = 0.25;
        let bad = warm_gate(&missy, &cold, 0.99, 1.05).unwrap();
        assert!(!bad.passes(), "{}", bad.verdict());
        // A perfectly warm cache that got *slower* fails too.
        let mut slow = summary(90.0);
        slow.totals.memo_hit_rate = 1.0;
        let bad = warm_gate(&slow, &cold, 0.99, 1.05).unwrap();
        assert!(!bad.passes(), "{}", bad.verdict());
        assert!(bad.verdict().contains("FAIL"));
        // Different sweeps are not comparable.
        let mut other = summary(160.0);
        other.seed = 9;
        assert!(warm_gate(&other, &cold, 0.99, 1.05).is_err());
    }

    #[test]
    fn gate_rejects_incomparable_sweeps() {
        let baseline = summary(100.0);
        let mut other = summary(100.0);
        other.seed = 7;
        assert!(gate(&other, &baseline, 0.25).is_err());
        let mut zero = summary(100.0);
        zero.totals.trials_per_sec = 0.0;
        assert!(gate(&summary(90.0), &zero, 0.25).is_err());
    }

    #[test]
    fn gates_refuse_cross_engine_comparisons() {
        // Engines are bit-identical in results but not in speed: a
        // threaded sweep gated against a decoded baseline would hide
        // (or fake) regressions, so both gates demand matching engines.
        let baseline = summary(100.0);
        let mut threaded = summary(100.0);
        threaded.engine = "threaded".into();
        let err = gate(&threaded, &baseline, 0.25).unwrap_err();
        assert!(err.contains("engine"), "{err}");
        assert!(warm_gate(&threaded, &baseline, 0.99, 1.05).is_err());
    }

    #[test]
    fn gates_refuse_cross_fidelity_comparisons() {
        // A pipelined sweep pays cycle accounting the accurate baseline
        // never did; comparing their throughput would gate apples
        // against oranges.
        let baseline = summary(100.0);
        let mut pipelined = summary(100.0);
        pipelined.fidelity = "pipelined:btb=512,ras=8".into();
        let err = gate(&pipelined, &baseline, 0.25).unwrap_err();
        assert!(err.contains("fidelity"), "{err}");
        assert!(warm_gate(&pipelined, &baseline, 0.99, 1.05).is_err());
    }
}
