//! On-disk persistence of collected datasets.
//!
//! Dataset collection (simulate + measure every implementation) is the
//! expensive half of each experiment; the binaries cache it as JSON so
//! that table generation, Figure 5 and the ablations can share one
//! collection run.

use serde::{Deserialize, Serialize};
use simtune_cache::{CacheStats, HierarchyStats};
use simtune_core::GroupData;
use simtune_isa::{InstMix, SimStats};
use std::fs;
use std::io;
use std::path::Path;

#[derive(Debug, Serialize, Deserialize)]
struct PersistedCacheStats {
    counters: [u64; 6],
}

impl From<CacheStats> for PersistedCacheStats {
    fn from(s: CacheStats) -> Self {
        PersistedCacheStats {
            counters: [
                s.read_hits,
                s.read_misses,
                s.read_replacements,
                s.write_hits,
                s.write_misses,
                s.write_replacements,
            ],
        }
    }
}

impl From<PersistedCacheStats> for CacheStats {
    fn from(p: PersistedCacheStats) -> Self {
        let [rh, rm, rr, wh, wm, wr] = p.counters;
        CacheStats {
            read_hits: rh,
            read_misses: rm,
            read_replacements: rr,
            write_hits: wh,
            write_misses: wm,
            write_replacements: wr,
        }
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct PersistedStats {
    mix: [u64; 8],
    l1d: PersistedCacheStats,
    l1i: PersistedCacheStats,
    l2: PersistedCacheStats,
    l3: Option<PersistedCacheStats>,
    dram: [u64; 2],
    host_nanos: u64,
}

impl From<&SimStats> for PersistedStats {
    fn from(s: &SimStats) -> Self {
        let m = s.inst_mix;
        PersistedStats {
            mix: [
                m.int_alu,
                m.fp_alu,
                m.vec_alu,
                m.loads,
                m.stores,
                m.branches,
                m.branches_taken,
                m.other,
            ],
            l1d: s.cache.l1d.into(),
            l1i: s.cache.l1i.into(),
            l2: s.cache.l2.into(),
            l3: s.cache.l3.map(Into::into),
            dram: [s.cache.dram_reads, s.cache.dram_writes],
            host_nanos: s.host_nanos,
        }
    }
}

impl From<PersistedStats> for SimStats {
    fn from(p: PersistedStats) -> Self {
        let [int_alu, fp_alu, vec_alu, loads, stores, branches, branches_taken, other] = p.mix;
        SimStats {
            inst_mix: InstMix {
                int_alu,
                fp_alu,
                vec_alu,
                loads,
                stores,
                branches,
                branches_taken,
                other,
            },
            cache: HierarchyStats {
                l1d: p.l1d.into(),
                l1i: p.l1i.into(),
                l2: p.l2.into(),
                l3: p.l3.map(Into::into),
                dram_reads: p.dram[0],
                dram_writes: p.dram[1],
            },
            host_nanos: p.host_nanos,
        }
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct PersistedGroup {
    group_id: usize,
    stats: Vec<PersistedStats>,
    t_ref: Vec<f64>,
    base_seconds: Vec<f64>,
    sim_seconds: Vec<f64>,
    descriptions: Vec<String>,
}

/// Serializes collected groups to a JSON file, atomically: the JSON is
/// written to a temporary file in the destination directory and renamed
/// into place, so a crash or full disk mid-write leaves either the old
/// dataset or none — never a truncated file that poisons later runs.
///
/// # Errors
///
/// Propagates filesystem and serialization errors.
pub fn store_groups(path: &Path, groups: &[GroupData]) -> io::Result<()> {
    let persisted: Vec<PersistedGroup> = groups
        .iter()
        .map(|g| PersistedGroup {
            group_id: g.group_id,
            stats: g.stats.iter().map(PersistedStats::from).collect(),
            t_ref: g.t_ref.clone(),
            base_seconds: g.base_seconds.clone(),
            sim_seconds: g.sim_seconds.clone(),
            descriptions: g.descriptions.clone(),
        })
        .collect();
    let json = serde_json::to_string(&persisted)?;
    simtune_core::atomic_write(path, json.as_bytes())
}

/// Loads groups previously written by [`store_groups`]; `Ok(None)` when
/// the file does not exist. The not-found case is detected on the read
/// itself ([`io::ErrorKind::NotFound`]) rather than with an `exists()`
/// probe, so there is no check-then-read race.
///
/// # Errors
///
/// Propagates filesystem and deserialization errors (a corrupt or
/// truncated file is an [`io::ErrorKind::InvalidData`] error — callers
/// that prefer to re-collect can treat it as a cache miss).
pub fn load_groups(path: &Path) -> io::Result<Option<Vec<GroupData>>> {
    let json = match fs::read_to_string(path) {
        Ok(json) => json,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let persisted: Vec<PersistedGroup> = serde_json::from_str(&json)?;
    Ok(Some(
        persisted
            .into_iter()
            .map(|p| GroupData {
                group_id: p.group_id,
                stats: p.stats.into_iter().map(Into::into).collect(),
                t_ref: p.t_ref,
                base_seconds: p.base_seconds,
                sim_seconds: p.sim_seconds,
                descriptions: p.descriptions,
            })
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_group() -> GroupData {
        GroupData {
            group_id: 3,
            stats: vec![SimStats {
                inst_mix: InstMix {
                    loads: 10,
                    int_alu: 20,
                    branches_taken: 4,
                    ..Default::default()
                },
                cache: HierarchyStats {
                    l1d: CacheStats {
                        read_hits: 7,
                        write_misses: 2,
                        ..Default::default()
                    },
                    l3: Some(CacheStats {
                        read_misses: 1,
                        ..Default::default()
                    }),
                    dram_reads: 5,
                    ..Default::default()
                },
                host_nanos: 999,
            }],
            t_ref: vec![0.5],
            base_seconds: vec![0.45],
            sim_seconds: vec![0.001],
            descriptions: vec!["demo".into()],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let dir = std::env::temp_dir().join("simtune_cache_io_test");
        let path = dir.join("g.json");
        let groups = vec![sample_group()];
        store_groups(&path, &groups).unwrap();
        let loaded = load_groups(&path).unwrap().unwrap();
        assert_eq!(loaded.len(), 1);
        let (a, b) = (&groups[0], &loaded[0]);
        assert_eq!(a.group_id, b.group_id);
        assert_eq!(a.t_ref, b.t_ref);
        assert_eq!(a.stats[0].inst_mix, b.stats[0].inst_mix);
        assert_eq!(a.stats[0].cache, b.stats[0].cache);
        assert_eq!(a.stats[0].host_nanos, b.stats[0].host_nanos);
        assert_eq!(a.descriptions, b.descriptions);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_none() {
        let path = std::env::temp_dir().join("simtune_no_such_file.json");
        assert!(load_groups(&path).unwrap().is_none());
    }

    #[test]
    fn truncated_file_is_rejected_cleanly() {
        let dir =
            std::env::temp_dir().join(format!("simtune_cache_io_truncated_{}", std::process::id()));
        let path = dir.join("g.json");
        store_groups(&path, &[sample_group()]).unwrap();
        // Simulate the damage a non-atomic writer could leave behind.
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = load_groups(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_leaves_no_temporary_files_behind() {
        let dir = std::env::temp_dir().join(format!("simtune_cache_io_tmp_{}", std::process::id()));
        let path = dir.join("g.json");
        store_groups(&path, &[sample_group()]).unwrap();
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["g.json".to_string()]);
        fs::remove_dir_all(&dir).ok();
    }
}
