//! Minimal flag parsing shared by the experiment binaries (no external
//! CLI dependency).

use crate::Scale;
use simtune_core::{EngineKind, FidelitySpec, StrategySpec};

/// Fidelity mode of the tuning loop the sweep binaries drive.
///
/// The sweep either pins every trial to one [`FidelitySpec`] tier
/// (`Tier`) or runs one of the two escalation policies (`TopK`,
/// `Predicted`) that mix a cheap exploration tier with accurate
/// re-simulation. `--fidelity` therefore accepts the policy names
/// *plus* the whole spec grammar: `--fidelity pipelined:btb=64,ras=4`
/// sweeps with top-k escalation exploring on the pipelined tier.
#[derive(Debug, Clone, PartialEq)]
pub enum FidelityMode {
    /// Candidates explore on the named [`FidelitySpec`] tier; any tier
    /// other than `accurate` re-simulates the static top-k finalists
    /// accurately. `Tier(FidelitySpec::Accurate)` is the default.
    Tier(FidelitySpec),
    /// Cheap exploration, then the static top-k finalists re-simulate
    /// accurately (`EscalationPolicy::TopK`).
    TopK,
    /// The learned tier: uncertainty-driven active-learning escalation
    /// over a `PredictedBackend` (`EscalationPolicy::Uncertainty`).
    Predicted,
}

impl FidelityMode {
    /// Parses the `--fidelity` values: the escalation-policy names
    /// `topk|top-k|predicted`, or any [`FidelitySpec`] string
    /// (`accurate`, `fast-count`, `sampled:fraction=0.3`,
    /// `pipelined:btb=512,ras=8`, ...).
    pub fn parse(s: &str) -> Option<FidelityMode> {
        match s {
            "topk" | "top-k" => Some(FidelityMode::TopK),
            "predicted" => Some(FidelityMode::Predicted),
            spec => spec.parse::<FidelitySpec>().ok().map(FidelityMode::Tier),
        }
    }

    /// Stable label for logs and provenance lines (the spec digest for
    /// `Tier` modes).
    pub fn label(&self) -> String {
        match self {
            FidelityMode::Tier(spec) => spec.digest(),
            FidelityMode::TopK => "topk".into(),
            FidelityMode::Predicted => "predicted".into(),
        }
    }
}

impl Default for FidelityMode {
    fn default() -> Self {
        FidelityMode::Tier(FidelitySpec::Accurate)
    }
}

/// Parsed command-line arguments with the defaults used throughout the
/// experiment suite.
#[derive(Debug, Clone)]
pub struct Args {
    /// Target architectures to run ("x86", "arm", "riscv").
    pub archs: Vec<String>,
    /// Workload scale.
    pub scale: Scale,
    /// Implementations per group.
    pub impls: usize,
    /// Test-set size per group.
    pub test_count: usize,
    /// Random train/test split repetitions.
    pub rounds: usize,
    /// Parallel simulator instances.
    pub n_parallel: usize,
    /// Base seed.
    pub seed: u64,
    /// Search strategy for the tuning binaries
    /// (`random|grid|hill|evolutionary|annealing`), or `None` to sweep
    /// every built-in strategy.
    pub strategy: Option<StrategySpec>,
    /// Ignore cached datasets and recollect.
    pub refresh: bool,
    /// Optional output directory for CSV artifacts.
    pub out_dir: Option<String>,
    /// Emit a machine-readable JSON summary on stdout instead of the
    /// human tables (supported by the sweep binaries; the perf-smoke CI
    /// job and local perf runs share this one format).
    pub json: bool,
    /// Warm the simulation memo cache from this snapshot before the run
    /// (missing or corrupt snapshots degrade to a cold start).
    pub load_cache: Option<String>,
    /// Save the simulation memo cache to this snapshot after the run
    /// (written atomically; see `simtune_core::atomic_write`).
    pub save_cache: Option<String>,
    /// Fidelity mode for the tuning sweeps (`--fidelity <spec>` with
    /// any [`FidelitySpec`] string, or `topk|predicted` for the
    /// escalation policies).
    pub fidelity: FidelityMode,
    /// Replay engine for the tuning sweeps
    /// (`--engine interp|decoded|threaded|batch`) — a pure host-speed
    /// knob, bit-identical results by the equivalence contract.
    pub engine: EngineKind,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            archs: vec!["x86".into(), "arm".into(), "riscv".into()],
            scale: Scale::Quarter,
            impls: 120,
            test_count: 30,
            rounds: 10,
            n_parallel: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(8),
            seed: 42,
            strategy: None,
            refresh: false,
            out_dir: None,
            json: false,
            load_cache: None,
            save_cache: None,
            fidelity: FidelityMode::default(),
            engine: EngineKind::default(),
        }
    }
}

impl Args {
    /// Parses `std::env::args()`-style flags:
    /// `--arch x86 --scale quarter --impls 120 --test 30 --rounds 10
    ///  --parallel 8 --seed 42 --strategy evolutionary --refresh
    ///  --json --out results/ --load-cache snap.json --save-cache snap.json`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags or bad values (these
    /// binaries are developer tools; failing loudly is the feature).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Args {
        let mut out = Args::default();
        let mut it = args.into_iter();
        let need = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
            it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--arch" => {
                    let v = need(&mut it, "--arch");
                    out.archs = if v == "all" {
                        Args::default().archs
                    } else {
                        v.split(',').map(|s| s.trim().to_string()).collect()
                    };
                }
                "--scale" => {
                    let v = need(&mut it, "--scale");
                    out.scale = Scale::parse(&v)
                        .unwrap_or_else(|| panic!("unknown scale {v} (paper|half|quarter|smoke)"));
                }
                "--impls" => out.impls = need(&mut it, "--impls").parse().expect("--impls number"),
                "--test" => {
                    out.test_count = need(&mut it, "--test").parse().expect("--test number")
                }
                "--rounds" => {
                    out.rounds = need(&mut it, "--rounds").parse().expect("--rounds number")
                }
                "--parallel" => {
                    out.n_parallel = need(&mut it, "--parallel")
                        .parse()
                        .expect("--parallel number")
                }
                "--seed" => out.seed = need(&mut it, "--seed").parse().expect("--seed number"),
                "--strategy" => {
                    let v = need(&mut it, "--strategy");
                    out.strategy = if v == "all" {
                        None
                    } else {
                        Some(v.parse().unwrap_or_else(|e| panic!("{e}")))
                    };
                }
                "--refresh" => out.refresh = true,
                "--json" => out.json = true,
                "--out" => out.out_dir = Some(need(&mut it, "--out")),
                "--load-cache" => out.load_cache = Some(need(&mut it, "--load-cache")),
                "--save-cache" => out.save_cache = Some(need(&mut it, "--save-cache")),
                "--fidelity" => {
                    let v = need(&mut it, "--fidelity");
                    out.fidelity = FidelityMode::parse(&v).unwrap_or_else(|| {
                        panic!(
                            "unknown fidelity {v} (topk | predicted | accurate | fast-count | \
                             sampled[:fraction=F] | pipelined[:btb=N,ras=N])"
                        )
                    });
                }
                "--engine" => {
                    let v = need(&mut it, "--engine");
                    out.engine = EngineKind::parse(&v).unwrap_or_else(|| {
                        panic!("unknown engine {v} (interp|decoded|threaded|batch)")
                    });
                }
                other => panic!("unknown flag {other}"),
            }
        }
        assert!(out.test_count < out.impls, "--test must be below --impls");
        out
    }

    /// Parses the process's real arguments (skipping `argv[0]`).
    pub fn from_env() -> Args {
        Args::parse(std::env::args().skip(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(|x| x.to_string()))
    }

    #[test]
    fn defaults_are_sane() {
        let a = Args::default();
        assert_eq!(a.archs.len(), 3);
        assert!(a.test_count < a.impls);
    }

    #[test]
    fn parses_flags() {
        let a = parse(
            "--arch riscv --scale smoke --impls 40 --test 10 --rounds 3 --seed 7 --refresh --json",
        );
        assert_eq!(a.archs, vec!["riscv"]);
        assert_eq!(a.scale, Scale::Smoke);
        assert_eq!(a.impls, 40);
        assert_eq!(a.test_count, 10);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.seed, 7);
        assert!(a.refresh);
        assert!(a.json);
        assert!(!parse("--seed 1").json, "json is opt-in");
    }

    #[test]
    fn fidelity_flag_parses_all_modes() {
        assert_eq!(
            parse("--seed 1").fidelity,
            FidelityMode::Tier(FidelitySpec::Accurate)
        );
        assert_eq!(parse("--fidelity topk").fidelity, FidelityMode::TopK);
        assert_eq!(parse("--fidelity top-k").fidelity, FidelityMode::TopK);
        assert_eq!(
            parse("--fidelity predicted").fidelity,
            FidelityMode::Predicted
        );
        assert_eq!(FidelityMode::Predicted.label(), "predicted");
    }

    #[test]
    fn fidelity_flag_accepts_the_full_spec_grammar() {
        assert_eq!(
            parse("--fidelity accurate").fidelity,
            FidelityMode::Tier(FidelitySpec::Accurate)
        );
        assert_eq!(
            parse("--fidelity fast-count").fidelity,
            FidelityMode::Tier(FidelitySpec::FastCount)
        );
        let a = parse("--fidelity pipelined:btb=64,ras=4");
        assert_eq!(
            a.fidelity,
            FidelityMode::Tier(FidelitySpec::Pipelined { btb: 64, ras: 4 })
        );
        assert_eq!(a.fidelity.label(), "pipelined:btb=64,ras=4");
        assert_eq!(
            parse("--fidelity sampled:fraction=0.25").fidelity.label(),
            "sampled:fraction=0.25"
        );
    }

    #[test]
    #[should_panic(expected = "unknown fidelity")]
    fn bad_fidelity_panics() {
        parse("--fidelity exact");
    }

    #[test]
    fn engine_flag_parses_the_whole_ladder() {
        assert_eq!(parse("--seed 1").engine, EngineKind::Decoded);
        assert_eq!(parse("--engine interp").engine, EngineKind::Interp);
        assert_eq!(parse("--engine decoded").engine, EngineKind::Decoded);
        assert_eq!(parse("--engine threaded").engine, EngineKind::Threaded);
        assert_eq!(parse("--engine batch").engine, EngineKind::Batch);
    }

    #[test]
    #[should_panic(expected = "unknown engine")]
    fn bad_engine_panics() {
        parse("--engine jit");
    }

    #[test]
    fn cache_snapshot_flags_parse() {
        let a = parse("--load-cache warm.json --save-cache out.json");
        assert_eq!(a.load_cache.as_deref(), Some("warm.json"));
        assert_eq!(a.save_cache.as_deref(), Some("out.json"));
        let d = parse("--seed 1");
        assert!(d.load_cache.is_none() && d.save_cache.is_none());
    }

    #[test]
    fn arch_list_and_all() {
        assert_eq!(parse("--arch x86,arm").archs, vec!["x86", "arm"]);
        assert_eq!(parse("--arch all").archs.len(), 3);
    }

    #[test]
    fn strategy_flag_parses_names_and_all() {
        assert!(parse("--seed 1").strategy.is_none());
        assert!(parse("--strategy all").strategy.is_none());
        let s = parse("--strategy evolutionary").strategy.expect("parsed");
        assert_eq!(s.label(), "evolutionary");
        assert_eq!(
            parse("--strategy hill").strategy.expect("parsed").label(),
            "hill_climb"
        );
    }

    #[test]
    #[should_panic(expected = "unknown strategy")]
    fn bad_strategy_panics() {
        parse("--strategy bogus");
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse("--bogus");
    }

    #[test]
    #[should_panic(expected = "--test must be below")]
    fn test_count_validated() {
        parse("--impls 10 --test 10");
    }
}
