//! Tensor-program substrate: the TVM stand-in of the `simtune`
//! reproduction.
//!
//! The paper (Section II-A) drives TVM's AutoTVM and Auto-Scheduler to
//! generate many *implementations* (schedules) of ML kernels, compiles
//! them with LLVM, and measures them. This crate provides each of those
//! ingredients for the virtual ISA of `simtune-isa`:
//!
//! * [`ComputeDef`] — tensor-expression kernels in reduction normal form
//!   ([`matmul`], [`conv2d_bias_relu`], [`depthwise_conv2d_bias_relu`]);
//! * [`Schedule`] — split / reorder / unroll / vectorize / parallel
//!   primitives applied to a kernel, validated per target;
//! * [`lower`] — schedule application producing loop-nest IR with
//!   register-window analysis;
//! * [`build_executable`] — deterministic code generation to standalone
//!   executables (the "builder" of the paper's Fig. 2);
//! * [`ConfigSpace`] — AutoTVM-style template search spaces and
//!   [`SketchGenerator`] — Auto-Scheduler-style sketch + annotation
//!   sampling;
//! * [`validate_schedule`] — numeric equivalence of any schedule against
//!   the host reference.
//!
//! # Example: build and validate a matmul
//!
//! ```
//! use simtune_cache::HierarchyConfig;
//! use simtune_tensor::{matmul, validate_schedule, Schedule, TargetIsa};
//!
//! let def = matmul(8, 8, 8);
//! let schedule = Schedule::default_for(&def);
//! validate_schedule(&def, &schedule, &TargetIsa::riscv_u74(),
//!                   &HierarchyConfig::tiny_for_tests(), 42, 1e-3)?;
//! # Ok::<(), simtune_tensor::ValidateError>(())
//! ```

mod codegen;
mod expr;
mod kernels;
mod lower;
mod schedule;
mod sketch;
mod space;
mod validate;

pub use codegen::{build_executable, codegen, CodegenError};
pub use expr::{
    fill_values, prepared_inputs, tensor_seed, AffineIdx, ComputeDef, Epilogue, OperandAccess,
    ReduceOp, TensorDecl, TensorInit, VarRef,
};
pub use kernels::{
    conv2d_bias_relu, depthwise_conv2d_bias_relu, matmul, max_pool2d, pad_ifm, Conv2dShape,
    Pool2dShape,
};
pub use lower::{
    lower, lower_structure, Access, BufId, BufferLayout, LinExpr, LoweredKernel, Nest, NestBody,
    NestLoop,
};
pub use schedule::{
    LoopInfo, LoopKind, LoopStructure, Schedule, ScheduleError, Split, SubVar, MAX_UNROLL,
};
pub use sketch::{SketchGenerator, SketchParams, SketchPattern, SketchRules};
pub use space::{ConfigSpace, Knob, KnobChoice, SpaceBuilder};
pub use validate::{validate_schedule, ValidateError, DEFAULT_TOLERANCE};

// Re-exported so downstream crates name targets without depending on
// simtune-isa directly.
pub use simtune_isa::TargetIsa;
