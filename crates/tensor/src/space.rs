//! AutoTVM-style template search spaces.
//!
//! AutoTVM (paper Section II-A, Listing 2) asks an expert to define a
//! *schedule template* with tunable knobs — tiling factors, loop orders,
//! annotations — spanning a finite design space the tuner then explores.
//! [`ConfigSpace`] provides those templates for the kernel types in this
//! crate: every knob is an enumerated choice, a configuration is one index
//! per knob, and [`ConfigSpace::schedule`] materializes a configuration
//! into a [`Schedule`].
//!
//! As in real AutoTVM spaces, not every configuration is valid (for
//! example vectorization requires a lane-divisible tile); invalid
//! configurations surface as [`ScheduleError`]s at build time and the
//! tuner penalizes them.

use crate::expr::{ComputeDef, VarRef};
use crate::schedule::{Schedule, ScheduleError, Split, SubVar};
use crate::TargetIsa;
use rand::Rng;

/// One selectable alternative of a knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KnobChoice {
    /// Inner split factors for a variable (outer piece extent is derived).
    Factors(Vec<usize>),
    /// A named discrete alternative ("reduce_inner", "unroll_kw", ...).
    Tag(&'static str),
}

/// A named knob with its alternatives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Knob {
    /// Knob name ("tile_ow", "order", ...).
    pub name: String,
    /// The enumerated alternatives.
    pub choices: Vec<KnobChoice>,
}

/// Incremental constructor for custom spaces (the library's conv2d and
/// matmul templates are built with it; user kernels can define their own).
#[derive(Debug, Default)]
pub struct SpaceBuilder {
    knobs: Vec<Knob>,
}

impl SpaceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a split knob enumerating inner factors (`define_split` in
    /// AutoTVM terms): one choice per candidate factor list.
    pub fn define_split(mut self, name: impl Into<String>, candidates: Vec<Vec<usize>>) -> Self {
        self.knobs.push(Knob {
            name: name.into(),
            choices: candidates.into_iter().map(KnobChoice::Factors).collect(),
        });
        self
    }

    /// Adds a tag knob (`define_knob` in AutoTVM terms).
    pub fn define_tag(mut self, name: impl Into<String>, tags: Vec<&'static str>) -> Self {
        self.knobs.push(Knob {
            name: name.into(),
            choices: tags.into_iter().map(KnobChoice::Tag).collect(),
        });
        self
    }

    fn build(self, kind: SpaceKind) -> ConfigSpace {
        assert!(
            self.knobs.iter().all(|k| !k.choices.is_empty()),
            "every knob needs at least one choice"
        );
        ConfigSpace {
            knobs: self.knobs,
            kind,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpaceKind {
    Conv2d {
        /// Vector lanes of the target the space was built for (0 = none).
        lanes: usize,
    },
    Matmul {
        /// Vector lanes of the target the space was built for (0 = none).
        lanes: usize,
    },
}

/// A finite AutoTVM-style design space for one kernel on one target.
///
/// # Example
///
/// ```
/// use simtune_tensor::{matmul, ConfigSpace, TargetIsa};
///
/// let def = matmul(16, 16, 16);
/// let space = ConfigSpace::matmul(&def, &TargetIsa::arm_cortex_a72());
/// assert!(space.len() > 10);
/// let config = space.config_from_index(0);
/// let schedule = space.schedule(&def, &config).unwrap();
/// assert!(!schedule.order.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigSpace {
    knobs: Vec<Knob>,
    kind: SpaceKind,
}

impl ConfigSpace {
    /// Template for [`crate::conv2d_bias_relu`] kernels: tiling of the
    /// output channels / height / width, four canonical loop orders,
    /// unroll and vectorize annotations.
    pub fn conv2d(def: &ComputeDef, target: &TargetIsa) -> ConfigSpace {
        let co = def.spatial_extents[1];
        let oh = def.spatial_extents[2];
        let ow = def.spatial_extents[3];
        let mut b = SpaceBuilder::new()
            .define_split("tile_co", singleton_factors(divisors_up_to(co, 32)))
            .define_split("tile_oh", singleton_factors(divisors_up_to(oh, 8)))
            .define_split("tile_ow", singleton_factors(divisors_up_to(ow, 32)))
            .define_tag(
                "order",
                vec!["reduce_inner", "spatial_inner", "ci_blocked", "hw_inner"],
            )
            .define_tag("unroll", vec!["none", "kw", "kw_oh"]);
        if target.has_vectors() {
            b = b.define_tag("vectorize", vec!["off", "on"]);
        }
        b.build(SpaceKind::Conv2d {
            lanes: if target.has_vectors() {
                target.vector_lanes
            } else {
                0
            },
        })
    }

    /// Template for [`crate::matmul`] kernels: tiling of i/j/k, three
    /// canonical orders, unroll and vectorize annotations.
    pub fn matmul(def: &ComputeDef, target: &TargetIsa) -> ConfigSpace {
        let n = def.spatial_extents[0];
        let m = def.spatial_extents[1];
        let l = def.reduce_extents[0];
        let mut b = SpaceBuilder::new()
            .define_split("tile_i", singleton_factors(divisors_up_to(n, 32)))
            .define_split("tile_j", singleton_factors(divisors_up_to(m, 32)))
            .define_split("tile_k", singleton_factors(divisors_up_to(l, 32)))
            .define_tag("order", vec!["reduce_inner", "k_blocked", "spatial_inner"])
            .define_tag("unroll", vec!["none", "k_inner"]);
        if target.has_vectors() {
            b = b.define_tag("vectorize", vec!["off", "on"]);
        }
        b.build(SpaceKind::Matmul {
            lanes: if target.has_vectors() {
                target.vector_lanes
            } else {
                0
            },
        })
    }

    /// The knobs of this space.
    pub fn knobs(&self) -> &[Knob] {
        &self.knobs
    }

    /// Total number of configurations (product of knob cardinalities).
    pub fn len(&self) -> usize {
        self.knobs.iter().map(|k| k.choices.len()).product()
    }

    /// True when the space has no configurations (never for built spaces).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes a flat configuration index into one choice per knob.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn config_from_index(&self, index: usize) -> Vec<usize> {
        assert!(index < self.len(), "config index out of range");
        let mut rem = index;
        self.knobs
            .iter()
            .map(|k| {
                let c = rem % k.choices.len();
                rem /= k.choices.len();
                c
            })
            .collect()
    }

    /// Encodes a configuration back into its flat index.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is malformed.
    pub fn index_of(&self, config: &[usize]) -> usize {
        assert_eq!(config.len(), self.knobs.len(), "config arity");
        let mut idx = 0usize;
        let mut mult = 1usize;
        for (c, k) in config.iter().zip(&self.knobs) {
            assert!(*c < k.choices.len(), "choice out of range");
            idx += c * mult;
            mult *= k.choices.len();
        }
        idx
    }

    /// Draws a uniformly random configuration.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<usize> {
        self.knobs
            .iter()
            .map(|k| rng.gen_range(0..k.choices.len()))
            .collect()
    }

    /// Mutates one random knob to a different choice (evolutionary-search
    /// neighborhood).
    pub fn mutate<R: Rng>(&self, config: &[usize], rng: &mut R) -> Vec<usize> {
        let mut out = config.to_vec();
        // Only knobs with >1 choice can mutate.
        let mutable: Vec<usize> = self
            .knobs
            .iter()
            .enumerate()
            .filter(|(_, k)| k.choices.len() > 1)
            .map(|(i, _)| i)
            .collect();
        if mutable.is_empty() {
            return out;
        }
        let knob = mutable[rng.gen_range(0..mutable.len())];
        let n = self.knobs[knob].choices.len();
        let mut c = rng.gen_range(0..n);
        if c == out[knob] {
            c = (c + 1) % n;
        }
        out[knob] = c;
        out
    }

    fn factors(&self, config: &[usize], knob: usize) -> Vec<usize> {
        match &self.knobs[knob].choices[config[knob]] {
            KnobChoice::Factors(f) => f.clone(),
            KnobChoice::Tag(t) => panic!("knob {knob} is a tag ({t}), not factors"),
        }
    }

    fn tag(&self, config: &[usize], knob: usize) -> &'static str {
        match &self.knobs[knob].choices[config[knob]] {
            KnobChoice::Tag(t) => t,
            KnobChoice::Factors(_) => panic!("knob {knob} is factors, not a tag"),
        }
    }

    /// Materializes a configuration into a schedule for `def`.
    ///
    /// # Errors
    ///
    /// Invalid combinations (non-dividing vector tiles, oversized unrolls)
    /// return the corresponding [`ScheduleError`]; tuners treat these as
    /// failed builds.
    ///
    /// # Panics
    ///
    /// Panics if `config` has the wrong arity for this space.
    pub fn schedule(&self, def: &ComputeDef, config: &[usize]) -> Result<Schedule, ScheduleError> {
        assert_eq!(config.len(), self.knobs.len(), "config arity");
        match self.kind {
            SpaceKind::Conv2d { lanes } => self.conv2d_schedule(def, config, lanes),
            SpaceKind::Matmul { lanes } => self.matmul_schedule(def, config, lanes),
        }
    }

    fn conv2d_schedule(
        &self,
        def: &ComputeDef,
        config: &[usize],
        lanes: usize,
    ) -> Result<Schedule, ScheduleError> {
        let _ = def;
        let (n, co, oh, ow) = (
            VarRef::Spatial(0),
            VarRef::Spatial(1),
            VarRef::Spatial(2),
            VarRef::Spatial(3),
        );
        let (ci, kh, kw) = (VarRef::Reduce(0), VarRef::Reduce(1), VarRef::Reduce(2));
        let co_i = self.factors(config, 0)[0];
        let oh_i = self.factors(config, 1)[0];
        let ow_i = self.factors(config, 2)[0];
        let order_tag = self.tag(config, 3);
        let unroll_tag = self.tag(config, 4);
        let vectorize = self.knobs.len() > 5 && self.tag(config, 5) == "on" && lanes > 1;

        let mut splits = vec![
            Split {
                var: co,
                factors: vec![co_i],
            },
            Split {
                var: oh,
                factors: vec![oh_i],
            },
        ];
        // ow pieces: [ow0, ow1] or [ow0, ow1, ow_v] when vectorized.
        let ow_pieces: Vec<SubVar> = if vectorize {
            // The innermost ow piece must be exactly the target's vector
            // width; a non-dividing tile is an invalid configuration and
            // surfaces as NonDividingSplit (factor 0) at apply time.
            let ok = ow_i.is_multiple_of(lanes);
            splits.push(Split {
                var: ow,
                factors: vec![if ok { ow_i / lanes } else { 0 }, lanes],
            });
            vec![
                SubVar { var: ow, piece: 0 },
                SubVar { var: ow, piece: 1 },
                SubVar { var: ow, piece: 2 },
            ]
        } else {
            splits.push(Split {
                var: ow,
                factors: vec![ow_i],
            });
            vec![SubVar { var: ow, piece: 0 }, SubVar { var: ow, piece: 1 }]
        };

        let (co0, co1) = (SubVar { var: co, piece: 0 }, SubVar { var: co, piece: 1 });
        let (oh0, oh1) = (SubVar { var: oh, piece: 0 }, SubVar { var: oh, piece: 1 });
        let n0 = SubVar::whole(n);
        let (ci0, kh0, kw0) = (SubVar::whole(ci), SubVar::whole(kh), SubVar::whole(kw));
        let ow0 = ow_pieces[0];
        let ow1 = ow_pieces[1];
        let owv = ow_pieces.get(2).copied();

        let mut order: Vec<SubVar> = match order_tag {
            // Spatial tiles outer, full reduction innermost: register-
            // friendly (full accumulator window).
            "reduce_inner" => vec![n0, co0, oh0, ow0, co1, oh1, ow1, ci0, kh0, kw0],
            // Reduction in the middle, spatial pieces innermost:
            // load-modify-store per element.
            "spatial_inner" => vec![n0, co0, oh0, ow0, ci0, kh0, kw0, co1, oh1, ow1],
            // Input channels blocked outside the inner spatial tile.
            "ci_blocked" => vec![n0, co0, oh0, ow0, ci0, co1, oh1, ow1, kh0, kw0],
            // Filter window hoisted high; inner spatial loops innermost.
            "hw_inner" => vec![n0, co0, ci0, kh0, oh0, kw0, co1, oh1, ow0, ow1],
            other => unreachable!("unknown order tag {other}"),
        };
        if let Some(v) = owv {
            order.push(v);
        }

        let mut unroll = Vec::new();
        match unroll_tag {
            "none" => {}
            "kw" => unroll.push(kw0),
            "kw_oh" => {
                unroll.push(kw0);
                unroll.push(oh1);
            }
            other => unreachable!("unknown unroll tag {other}"),
        }
        // Unrolling the vectorized piece is not allowed; it never is here.

        Ok(Schedule {
            splits,
            order,
            unroll,
            vectorize: owv,
            parallel: None,
        })
    }

    fn matmul_schedule(
        &self,
        def: &ComputeDef,
        config: &[usize],
        lanes: usize,
    ) -> Result<Schedule, ScheduleError> {
        let _ = def;
        let (i, j, k) = (VarRef::Spatial(0), VarRef::Spatial(1), VarRef::Reduce(0));
        let i_i = self.factors(config, 0)[0];
        let j_i = self.factors(config, 1)[0];
        let k_i = self.factors(config, 2)[0];
        let order_tag = self.tag(config, 3);
        let unroll_tag = self.tag(config, 4);
        let vectorize = self.knobs.len() > 5 && self.tag(config, 5) == "on" && lanes > 1;

        let mut splits = vec![
            Split {
                var: i,
                factors: vec![i_i],
            },
            Split {
                var: k,
                factors: vec![k_i],
            },
        ];
        let j_pieces: Vec<SubVar> = if vectorize {
            let ok = j_i.is_multiple_of(lanes);
            splits.push(Split {
                var: j,
                factors: vec![if ok { j_i / lanes } else { 0 }, lanes],
            });
            vec![
                SubVar { var: j, piece: 0 },
                SubVar { var: j, piece: 1 },
                SubVar { var: j, piece: 2 },
            ]
        } else {
            splits.push(Split {
                var: j,
                factors: vec![j_i],
            });
            vec![SubVar { var: j, piece: 0 }, SubVar { var: j, piece: 1 }]
        };
        let (i0, i1) = (SubVar { var: i, piece: 0 }, SubVar { var: i, piece: 1 });
        let (k0, k1) = (SubVar { var: k, piece: 0 }, SubVar { var: k, piece: 1 });
        let j0 = j_pieces[0];
        let j1 = j_pieces[1];
        let jv = j_pieces.get(2).copied();

        let mut order: Vec<SubVar> = match order_tag {
            "reduce_inner" => vec![i0, j0, i1, j1, k0, k1],
            "k_blocked" => vec![i0, j0, k0, i1, j1, k1],
            "spatial_inner" => vec![i0, j0, k0, k1, i1, j1],
            other => unreachable!("unknown order tag {other}"),
        };
        if let Some(v) = jv {
            order.push(v);
        }

        let mut unroll = Vec::new();
        if unroll_tag == "k_inner" {
            unroll.push(k1);
        }

        Ok(Schedule {
            splits,
            order,
            unroll,
            vectorize: jv,
            parallel: None,
        })
    }
}

/// Divisors of `n` up to `cap`, ascending.
fn divisors_up_to(n: usize, cap: usize) -> Vec<usize> {
    (1..=n.min(cap)).filter(|d| n.is_multiple_of(*d)).collect()
}

fn singleton_factors(divs: Vec<usize>) -> Vec<Vec<usize>> {
    divs.into_iter().map(|d| vec![d]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{conv2d_bias_relu, matmul, Conv2dShape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_conv() -> crate::expr::ComputeDef {
        conv2d_bias_relu(&Conv2dShape {
            n: 1,
            h: 8,
            w: 8,
            co: 8,
            ci: 4,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            pad: (1, 1),
        })
    }

    #[test]
    fn divisors_helper() {
        assert_eq!(divisors_up_to(12, 6), vec![1, 2, 3, 4, 6]);
        assert_eq!(divisors_up_to(7, 32), vec![1, 7]);
    }

    #[test]
    fn index_roundtrip() {
        let def = matmul(16, 16, 16);
        let space = ConfigSpace::matmul(&def, &TargetIsa::arm_cortex_a72());
        for idx in [0, 1, space.len() / 2, space.len() - 1] {
            let cfg = space.config_from_index(idx);
            assert_eq!(space.index_of(&cfg), idx);
        }
    }

    #[test]
    fn conv_space_has_expected_knobs() {
        let def = small_conv();
        let space = ConfigSpace::conv2d(&def, &TargetIsa::x86_ryzen_5800x());
        let names: Vec<&str> = space.knobs().iter().map(|k| k.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "tile_co",
                "tile_oh",
                "tile_ow",
                "order",
                "unroll",
                "vectorize"
            ]
        );
        // Scalar target: no vectorize knob.
        let scalar = ConfigSpace::conv2d(&def, &TargetIsa::riscv_u74());
        assert_eq!(scalar.knobs().len(), 5);
    }

    #[test]
    fn all_conv_configs_apply_or_fail_cleanly() {
        let def = small_conv();
        let target = TargetIsa::arm_cortex_a72();
        let space = ConfigSpace::conv2d(&def, &target);
        let mut valid = 0usize;
        for idx in 0..space.len() {
            let cfg = space.config_from_index(idx);
            if let Ok(s) = space.schedule(&def, &cfg) {
                if s.apply(&def, &target).is_ok() {
                    valid += 1;
                }
            }
        }
        assert!(
            valid > space.len() / 4,
            "most configurations should be valid: {valid}/{}",
            space.len()
        );
    }

    #[test]
    fn sample_and_mutate_stay_in_range() {
        let def = matmul(16, 16, 16);
        let space = ConfigSpace::matmul(&def, &TargetIsa::x86_ryzen_5800x());
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg = space.sample(&mut rng);
        for _ in 0..50 {
            cfg = space.mutate(&cfg, &mut rng);
            for (c, k) in cfg.iter().zip(space.knobs()) {
                assert!(*c < k.choices.len());
            }
        }
    }

    #[test]
    fn mutate_changes_exactly_one_knob() {
        let def = matmul(16, 16, 16);
        let space = ConfigSpace::matmul(&def, &TargetIsa::x86_ryzen_5800x());
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = space.sample(&mut rng);
        let mutated = space.mutate(&cfg, &mut rng);
        let diffs = cfg.iter().zip(&mutated).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn vectorized_config_produces_vector_schedule() {
        let def = matmul(16, 16, 16);
        let target = TargetIsa::arm_cortex_a72();
        let space = ConfigSpace::matmul(&def, &target);
        // Find a valid vectorized configuration.
        let mut found = false;
        for idx in 0..space.len() {
            let cfg = space.config_from_index(idx);
            if let Ok(s) = space.schedule(&def, &cfg) {
                if s.vectorize.is_some() && s.apply(&def, &target).is_ok() {
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "space must contain valid vectorized schedules");
    }
}
