//! Numeric validation: simulated kernel output vs host reference.
//!
//! Every schedule in a design space must compute the same function; this
//! module runs a generated executable on the instruction-accurate
//! simulator and compares the output buffer against
//! [`ComputeDef::reference`] executed on identical input data. Because
//! schedules reorder the floating-point reduction, comparison uses a
//! combined absolute/relative tolerance.

use crate::codegen::{build_executable, CodegenError};
use crate::expr::{prepared_inputs, ComputeDef};
use crate::lower::lower;
use crate::schedule::Schedule;
use crate::TargetIsa;
use simtune_cache::HierarchyConfig;
use simtune_isa::{simulate, RunLimits, SimError};
use std::error::Error;
use std::fmt;

/// Default absolute/relative tolerance for reduction reordering.
pub const DEFAULT_TOLERANCE: f32 = 1e-3;

/// Errors raised by [`validate_schedule`].
#[derive(Debug)]
pub enum ValidateError {
    /// The schedule failed to lower or compile.
    Codegen(CodegenError),
    /// The simulation aborted.
    Sim(SimError),
    /// The simulated output disagrees with the reference.
    Mismatch {
        /// Flat element index of the first mismatch.
        index: usize,
        /// Host reference value.
        expected: f32,
        /// Simulated value.
        actual: f32,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Codegen(e) => write!(f, "codegen failed: {e}"),
            ValidateError::Sim(e) => write!(f, "simulation failed: {e}"),
            ValidateError::Mismatch {
                index,
                expected,
                actual,
            } => write!(
                f,
                "output mismatch at element {index}: expected {expected}, got {actual}"
            ),
        }
    }
}

impl Error for ValidateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ValidateError::Codegen(e) => Some(e),
            ValidateError::Sim(e) => Some(e),
            ValidateError::Mismatch { .. } => None,
        }
    }
}

impl From<CodegenError> for ValidateError {
    fn from(e: CodegenError) -> Self {
        ValidateError::Codegen(e)
    }
}

impl From<SimError> for ValidateError {
    fn from(e: SimError) -> Self {
        ValidateError::Sim(e)
    }
}

impl From<crate::schedule::ScheduleError> for ValidateError {
    fn from(e: crate::schedule::ScheduleError) -> Self {
        ValidateError::Codegen(CodegenError::Schedule(e))
    }
}

/// Builds, simulates and numerically validates one schedule.
///
/// # Errors
///
/// Returns [`ValidateError::Mismatch`] for the first element whose
/// simulated value differs from the host reference by more than `tol`
/// (absolutely and relatively); codegen and simulation failures are
/// propagated.
///
/// # Example
///
/// ```
/// use simtune_cache::HierarchyConfig;
/// use simtune_tensor::{matmul, validate_schedule, Schedule, TargetIsa};
///
/// let def = matmul(6, 6, 6);
/// validate_schedule(
///     &def,
///     &Schedule::default_for(&def),
///     &TargetIsa::riscv_u74(),
///     &HierarchyConfig::tiny_for_tests(),
///     7,
///     1e-3,
/// )?;
/// # Ok::<(), simtune_tensor::ValidateError>(())
/// ```
pub fn validate_schedule(
    def: &ComputeDef,
    schedule: &Schedule,
    target: &TargetIsa,
    hierarchy: &HierarchyConfig,
    seed: u64,
    tol: f32,
) -> Result<(), ValidateError> {
    let kernel = lower(def, schedule, target)?;
    let exe = build_executable(def, schedule, target, seed, &def.name)?;
    let outcome = simulate(&exe, hierarchy, RunLimits::default())?;

    let out_buf = &kernel.buffers[kernel.output_buffer];
    let simulated = outcome
        .memory
        .read_f32_slice(out_buf.base, out_buf.decl.len())?;

    let inputs = prepared_inputs(def, seed);
    let expected = def.reference(&inputs);

    for (i, (got, want)) in simulated.iter().zip(&expected).enumerate() {
        let abs = (got - want).abs();
        let rel = abs / want.abs().max(1.0);
        if abs > tol && rel > tol {
            return Err(ValidateError::Mismatch {
                index: i,
                expected: *want,
                actual: *got,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::matmul;

    #[test]
    fn default_matmul_schedule_validates() {
        let def = matmul(5, 7, 3);
        validate_schedule(
            &def,
            &Schedule::default_for(&def),
            &TargetIsa::riscv_u74(),
            &HierarchyConfig::tiny_for_tests(),
            11,
            DEFAULT_TOLERANCE,
        )
        .expect("default schedule computes the right matmul");
    }

    #[test]
    fn mismatch_error_is_informative() {
        let e = ValidateError::Mismatch {
            index: 3,
            expected: 1.0,
            actual: 2.0,
        };
        let s = e.to_string();
        assert!(s.contains("element 3"));
        assert!(s.contains("expected 1"));
    }
}
