//! Lowering: applied schedule → loop-nest IR.
//!
//! Turns a [`ComputeDef`] plus [`LoopStructure`] into one to three
//! [`Nest`]s of a fixed vocabulary the code generator understands:
//!
//! 1. an optional *init* nest zeroing the accumulator buffer (needed only
//!    when the register window cannot cover the whole reduction),
//! 2. the *main* reduction nest,
//! 3. an optional *epilogue* nest applying bias + ReLU.
//!
//! The central concept is the **register window**: the maximal innermost
//! run of loops in which the output index is invariant. Inside the window
//! the accumulator lives in a register; the store happens once at window
//! exit. Schedules that push reduction loops innermost therefore get
//! cheap accumulation, and schedules that interleave spatial loops below
//! reduction loops pay a load-modify-store per element — exactly the cost
//! structure real compilers produce.

use crate::expr::{ComputeDef, OperandAccess, ReduceOp, TensorDecl, TensorInit, VarRef};
use crate::schedule::{LoopKind, LoopStructure, Schedule, ScheduleError};
use crate::TargetIsa;
use simtune_isa::DATA_BASE;

/// Buffer index within a [`LoweredKernel`].
pub type BufId = usize;

/// Linear (element-offset) affine expression over the loops of one nest:
/// `offset = Σ coef·loop_counter + constant`. Term indices refer to
/// positions in [`Nest::loops`], outermost = 0.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    /// `(loop index, coefficient)` terms, sorted by loop index.
    pub terms: Vec<(usize, i64)>,
    /// Constant element offset.
    pub constant: i64,
}

impl LinExpr {
    /// Coefficient of loop `l` (0 when absent).
    pub fn coef(&self, l: usize) -> i64 {
        self.terms
            .iter()
            .find(|&&(i, _)| i == l)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    /// Deepest loop with a non-zero coefficient, if any.
    pub fn deepest_term(&self) -> Option<usize> {
        self.terms.iter().map(|&(i, _)| i).max()
    }

    /// Evaluates for concrete loop counter values.
    pub fn eval(&self, counters: &[usize]) -> i64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(i, c)| c * counters[i] as i64)
                .sum::<i64>()
    }

    fn push(&mut self, loop_idx: usize, coef: i64) {
        if coef == 0 {
            return;
        }
        if let Some(t) = self.terms.iter_mut().find(|(i, _)| *i == loop_idx) {
            t.1 += coef;
            self.terms.retain(|&(_, c)| c != 0);
        } else {
            self.terms.push((loop_idx, coef));
            self.terms.sort_by_key(|&(i, _)| i);
        }
    }
}

/// A buffer access at element granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Which buffer.
    pub buffer: BufId,
    /// Element offset expression.
    pub expr: LinExpr,
}

/// One loop of a lowered nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NestLoop {
    /// Trip count.
    pub extent: usize,
    /// Execution kind.
    pub kind: LoopKind,
}

/// The innermost statement of a nest.
#[derive(Debug, Clone, PartialEq)]
pub enum NestBody {
    /// `out[expr] = value` — the init nest.
    InitStore {
        /// Store target.
        out: Access,
        /// Constant stored.
        value: f32,
    },
    /// `out[expr] {+}= Σ lhs·rhs` with a register window.
    MacReduce {
        /// Reduction output.
        out: Access,
        /// Left operand.
        lhs: Access,
        /// Right operand (None = sum of lhs).
        rhs: Option<Access>,
        /// `Some(v)`: the window covers the full reduction; initialize the
        /// accumulator to `v` and store once. `None`: load-accumulate-store
        /// against the buffer (an init nest zeroed it).
        acc_init: Option<f32>,
        /// Loop index at which the accumulator register becomes live
        /// (0 = whole nest; `loops.len()` = per-leaf load/store).
        window_entry: usize,
        /// Reduction combinator (sum for conv/matmul, max for pooling).
        reduce_op: ReduceOp,
    },
    /// `out[expr] = post(input[expr] + bias)` — the epilogue nest.
    Epilogue {
        /// Final output.
        out: Access,
        /// Accumulator buffer being read.
        input: Access,
        /// Optional bias operand.
        bias: Option<Access>,
        /// Apply ReLU.
        relu: bool,
    },
}

/// One lowered loop nest.
#[derive(Debug, Clone, PartialEq)]
pub struct Nest {
    /// Loops, outermost first.
    pub loops: Vec<NestLoop>,
    /// Innermost statement.
    pub body: NestBody,
}

/// A buffer of the lowered kernel with its simulated base address.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferLayout {
    /// Declaration (name, shape, init policy).
    pub decl: TensorDecl,
    /// Base byte address in simulator memory.
    pub base: u64,
}

impl BufferLayout {
    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.decl.len() as u64 * 4
    }
}

/// Fully lowered kernel: buffers with addresses plus the nest sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredKernel {
    /// All buffers; indices are [`BufId`]s.
    pub buffers: Vec<BufferLayout>,
    /// Nests in execution order.
    pub nests: Vec<Nest>,
    /// Buffer holding the kernel's final output.
    pub output_buffer: BufId,
    /// Scratch accumulator buffer, present when an epilogue exists.
    pub scratch_buffer: Option<BufId>,
}

/// Lowers `def` under `schedule` for `target`.
///
/// # Errors
///
/// Propagates [`ScheduleError`]s from [`Schedule::apply`] and adds
/// [`ScheduleError::VectorizedOutputNotContiguous`] when the vectorized
/// loop does not write the output with stride 1.
///
/// # Example
///
/// ```
/// use simtune_tensor::{lower, matmul, Schedule, TargetIsa};
///
/// let def = matmul(8, 8, 8);
/// let lowered = lower(&def, &Schedule::default_for(&def), &TargetIsa::riscv_u74())?;
/// // Default matmul: one nest, no scratch, full register window.
/// assert_eq!(lowered.nests.len(), 1);
/// assert!(lowered.scratch_buffer.is_none());
/// # Ok::<(), simtune_tensor::ScheduleError>(())
/// ```
pub fn lower(
    def: &ComputeDef,
    schedule: &Schedule,
    target: &TargetIsa,
) -> Result<LoweredKernel, ScheduleError> {
    let structure = schedule.apply(def, target)?;
    lower_structure(def, &structure)
}

/// Lowers an already-applied loop structure (used by the tuners to avoid
/// re-validating).
///
/// # Errors
///
/// Returns [`ScheduleError::VectorizedOutputNotContiguous`] when the
/// vectorized loop's output stride is not 1.
pub fn lower_structure(
    def: &ComputeDef,
    structure: &LoopStructure,
) -> Result<LoweredKernel, ScheduleError> {
    // ---- buffer layout ----
    let needs_scratch = def.epilogue.is_some();
    let mut buffers: Vec<BufferLayout> = Vec::new();
    let mut cursor = DATA_BASE;
    for decl in &def.tensors {
        let mut d = decl.clone();
        // The output is written by this kernel; it starts zeroed.
        if buffers.len() == def.output {
            d.init = TensorInit::Zeros;
        }
        let b = BufferLayout {
            decl: d,
            base: cursor,
        };
        cursor = align_up(cursor + b.bytes(), 4096);
        buffers.push(b);
    }
    let scratch_buffer = if needs_scratch {
        let b = BufferLayout {
            decl: TensorDecl::new("acc_scratch", def.output_decl().shape.clone())
                .with_init(TensorInit::Zeros),
            base: cursor,
        };
        buffers.push(b);
        Some(buffers.len() - 1)
    } else {
        None
    };
    let main_dest: BufId = scratch_buffer.unwrap_or(def.output);

    // ---- index expressions over the scheduled loops ----
    let expansions = structure.expansions();
    let to_lin = |access: &OperandAccess| -> LinExpr {
        let affine = access.linearize(&def.tensors[access.tensor]);
        let mut lin = LinExpr {
            terms: Vec::new(),
            constant: affine.constant,
        };
        for &(var, coef) in &affine.terms {
            for &(loop_idx, stride) in &expansions[&var] {
                lin.push(loop_idx, coef * stride);
            }
        }
        lin
    };

    // Output index: identity over spatial vars, flattened row-major.
    let out_strides = def.output_decl().strides();
    let mut out_lin = LinExpr::default();
    for (dim, stride) in out_strides.iter().enumerate() {
        for &(loop_idx, vstride) in &expansions[&VarRef::Spatial(dim)] {
            out_lin.push(loop_idx, *stride as i64 * vstride);
        }
    }

    let lhs_lin = to_lin(&def.lhs);
    let rhs_lin = def.rhs.as_ref().map(to_lin);

    // ---- register window ----
    let n_loops = structure.loops.len();
    let vector_leaf = structure
        .loops
        .last()
        .filter(|l| l.kind == LoopKind::Vectorized)
        .map(|_| n_loops - 1);
    if let Some(v) = vector_leaf {
        let coef = out_lin.coef(v);
        if coef != 1 {
            return Err(ScheduleError::VectorizedOutputNotContiguous { coef });
        }
    }
    // Deepest loop (other than a vectorized leaf) carrying the output.
    let deepest_out = out_lin
        .terms
        .iter()
        .map(|&(i, _)| i)
        .filter(|&i| Some(i) != vector_leaf)
        .max();
    let window_entry = deepest_out.map(|d| d + 1).unwrap_or(0);

    // Does the window cover every reduction loop?
    let full_reduction = structure
        .loops
        .iter()
        .enumerate()
        .all(|(i, l)| !l.is_reduce || i >= window_entry);

    let mut nests = Vec::new();

    // ---- init nest (flat) when the window is partial ----
    if !full_reduction {
        let len = buffers[main_dest].decl.len();
        nests.push(Nest {
            loops: vec![NestLoop {
                extent: len,
                kind: LoopKind::Serial,
            }],
            body: NestBody::InitStore {
                out: Access {
                    buffer: main_dest,
                    expr: LinExpr {
                        terms: vec![(0, 1)],
                        constant: 0,
                    },
                },
                value: def.acc_init,
            },
        });
    }

    // ---- main nest ----
    nests.push(Nest {
        loops: structure
            .loops
            .iter()
            .map(|l| NestLoop {
                extent: l.extent,
                kind: l.kind,
            })
            .collect(),
        body: NestBody::MacReduce {
            out: Access {
                buffer: main_dest,
                expr: out_lin,
            },
            lhs: Access {
                buffer: def.lhs.tensor,
                expr: lhs_lin,
            },
            rhs: def.rhs.as_ref().map(|r| Access {
                buffer: r.tensor,
                expr: rhs_lin.clone().expect("rhs lin exists with rhs"),
            }),
            acc_init: if full_reduction {
                Some(def.acc_init)
            } else {
                None
            },
            window_entry,
            reduce_op: def.reduce_op,
        },
    });

    // ---- epilogue nest (untiled spatial loops) ----
    if let Some(epi) = &def.epilogue {
        let spatial_loops: Vec<NestLoop> = def
            .spatial_extents
            .iter()
            .map(|&e| NestLoop {
                extent: e,
                kind: LoopKind::Serial,
            })
            .collect();
        // Identity flat index over the epilogue's own loops.
        let mut flat = LinExpr::default();
        for (dim, stride) in out_strides.iter().enumerate() {
            flat.push(dim, *stride as i64);
        }
        let bias = epi.bias.as_ref().map(|b| {
            let affine = b.linearize(&def.tensors[b.tensor]);
            let mut lin = LinExpr {
                terms: Vec::new(),
                constant: affine.constant,
            };
            for &(var, coef) in &affine.terms {
                match var {
                    VarRef::Spatial(i) => lin.push(i, coef),
                    VarRef::Reduce(_) => unreachable!("bias indexed by reduce var"),
                }
            }
            Access {
                buffer: b.tensor,
                expr: lin,
            }
        });
        nests.push(Nest {
            loops: spatial_loops,
            body: NestBody::Epilogue {
                out: Access {
                    buffer: def.output,
                    expr: flat.clone(),
                },
                input: Access {
                    buffer: main_dest,
                    expr: flat,
                },
                bias,
                relu: epi.relu,
            },
        });
    }

    Ok(LoweredKernel {
        buffers,
        nests,
        output_buffer: def.output,
        scratch_buffer,
    })
}

fn align_up(v: u64, align: u64) -> u64 {
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{conv2d_bias_relu, matmul, Conv2dShape};
    use crate::schedule::{Split, SubVar};

    fn arm() -> TargetIsa {
        TargetIsa::arm_cortex_a72()
    }

    #[test]
    fn default_matmul_gets_full_window() {
        let def = matmul(4, 6, 8);
        let k = lower(&def, &Schedule::default_for(&def), &arm()).unwrap();
        assert_eq!(k.nests.len(), 1);
        match &k.nests[0].body {
            NestBody::MacReduce {
                acc_init,
                window_entry,
                ..
            } => {
                assert_eq!(*acc_init, Some(0.0));
                // Loops: i, j, k — the window starts below j (index 2).
                assert_eq!(*window_entry, 2);
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn reduction_outside_window_forces_init_nest() {
        // Order k, i, j: output depends on the innermost loops, so the
        // window cannot cover k -> init nest + load/modify/store.
        let def = matmul(4, 4, 4);
        let mut s = Schedule::default_for(&def);
        s.order = vec![
            SubVar::whole(VarRef::Reduce(0)),
            SubVar::whole(VarRef::Spatial(0)),
            SubVar::whole(VarRef::Spatial(1)),
        ];
        let k = lower(&def, &s, &arm()).unwrap();
        assert_eq!(k.nests.len(), 2, "init nest + main nest");
        match &k.nests[1].body {
            NestBody::MacReduce {
                acc_init,
                window_entry,
                ..
            } => {
                assert_eq!(*acc_init, None);
                assert_eq!(*window_entry, 3, "window is empty (per-leaf)");
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn conv_produces_scratch_and_epilogue() {
        let shape = Conv2dShape {
            n: 1,
            h: 8,
            w: 8,
            co: 4,
            ci: 3,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            pad: (1, 1),
        };
        let def = conv2d_bias_relu(&shape);
        let k = lower(&def, &Schedule::default_for(&def), &arm()).unwrap();
        assert!(k.scratch_buffer.is_some());
        assert_eq!(k.nests.len(), 2, "main + epilogue (full window)");
        match &k.nests[1].body {
            NestBody::Epilogue { bias, relu, .. } => {
                assert!(bias.is_some());
                assert!(*relu);
            }
            other => panic!("expected epilogue, got {other:?}"),
        }
        // Buffer addresses are 4 KiB aligned and non-overlapping.
        for w in k.buffers.windows(2) {
            assert!(w[1].base >= w[0].base + w[0].bytes());
            assert_eq!(w[1].base % 4096, 0);
        }
    }

    #[test]
    fn vectorized_output_stride_must_be_one() {
        // Vectorize i (stride M in C) instead of j: rejected at lowering.
        let def = matmul(4, 8, 4);
        let mut s = Schedule::default_for(&def);
        s.order = vec![
            SubVar::whole(VarRef::Spatial(1)),
            SubVar::whole(VarRef::Reduce(0)),
            SubVar::whole(VarRef::Spatial(0)),
        ];
        s.vectorize = Some(SubVar::whole(VarRef::Spatial(0)));
        let err = lower(&def, &s, &arm());
        assert!(matches!(
            err,
            Err(ScheduleError::VectorizedOutputNotContiguous { coef: 8 })
        ));
    }

    #[test]
    fn vectorized_inner_j_is_accepted_and_window_excludes_leaf() {
        let def = matmul(4, 8, 4);
        let j = VarRef::Spatial(1);
        let mut s = Schedule::default_for(&def);
        s.splits.push(Split {
            var: j,
            factors: vec![4], // j.1 extent 4 == ARM lanes
        });
        s.order = vec![
            SubVar::whole(VarRef::Spatial(0)),
            SubVar { var: j, piece: 0 },
            SubVar::whole(VarRef::Reduce(0)),
            SubVar { var: j, piece: 1 },
        ];
        s.vectorize = Some(SubVar { var: j, piece: 1 });
        let k = lower(&def, &s, &arm()).unwrap();
        match &k.nests[0].body {
            NestBody::MacReduce {
                acc_init,
                window_entry,
                ..
            } => {
                // Window entry under j.0 (index 1): covers k and the
                // vectorized leaf.
                assert_eq!(*window_entry, 2);
                assert_eq!(*acc_init, Some(0.0));
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn lin_expr_eval_and_coef() {
        let e = LinExpr {
            terms: vec![(0, 4), (2, 1)],
            constant: 7,
        };
        assert_eq!(e.eval(&[2, 9, 3]), 8 + 3 + 7);
        assert_eq!(e.coef(0), 4);
        assert_eq!(e.coef(1), 0);
        assert_eq!(e.deepest_term(), Some(2));
    }

    #[test]
    fn split_expands_indices_consistently() {
        // After splitting k by 2, the lhs A[i,k] coefficient on k.0 must
        // be stride*orig_coef = 2.
        let def = matmul(4, 4, 8);
        let kvar = VarRef::Reduce(0);
        let mut s = Schedule::default_for(&def);
        s.splits.push(Split {
            var: kvar,
            factors: vec![2],
        });
        s.order = vec![
            SubVar::whole(VarRef::Spatial(0)),
            SubVar::whole(VarRef::Spatial(1)),
            SubVar {
                var: kvar,
                piece: 0,
            },
            SubVar {
                var: kvar,
                piece: 1,
            },
        ];
        let k = lower(&def, &s, &arm()).unwrap();
        match &k.nests[0].body {
            NestBody::MacReduce { lhs, .. } => {
                // A shape [4,8]: linear = 8 i + k = 8 i + 2 k0 + k1.
                assert_eq!(lhs.expr.coef(0), 8);
                assert_eq!(lhs.expr.coef(2), 2);
                assert_eq!(lhs.expr.coef(3), 1);
            }
            other => panic!("unexpected body {other:?}"),
        }
    }
}
