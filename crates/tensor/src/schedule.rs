//! Schedules: loop transformations applied to a compute definition.
//!
//! Mirrors TVM's scheduling language (Section II-A of the paper) for the
//! primitives the paper's search spaces actually exercise: `split`
//! (tiling), `reorder`, `unroll`, `vectorize` and `parallel`. A
//! [`Schedule`] is applied to a [`ComputeDef`] to produce a
//! [`LoopStructure`] — the ordered list of loops the lowering pass turns
//! into code.

use crate::expr::{ComputeDef, VarRef};
use crate::TargetIsa;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Maximum extent accepted for a fully unrolled loop.
pub const MAX_UNROLL: usize = 16;

/// One piece of a split iteration variable: `piece` 0 is the outermost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubVar {
    /// The original variable this piece belongs to.
    pub var: VarRef,
    /// Piece index, 0 = outermost piece.
    pub piece: usize,
}

impl SubVar {
    /// Piece 0 of an unsplit variable.
    pub fn whole(var: VarRef) -> Self {
        SubVar { var, piece: 0 }
    }
}

impl fmt::Display for SubVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.var, self.piece)
    }
}

/// How one loop of the final structure executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopKind {
    /// Ordinary counted loop.
    Serial,
    /// Fully expanded at code-generation time.
    Unrolled,
    /// Mapped to vector instructions (innermost only).
    Vectorized,
}

/// One loop of the applied schedule, outermost first in
/// [`LoopStructure::loops`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// Which sub-variable this loop iterates.
    pub sub: SubVar,
    /// Trip count.
    pub extent: usize,
    /// Multiplier reconstructing the original variable:
    /// `orig = Σ_pieces piece_value · stride`.
    pub stride: i64,
    /// Execution kind.
    pub kind: LoopKind,
    /// True if the original variable is a reduction axis.
    pub is_reduce: bool,
}

/// The ordered loop nest an applied schedule produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopStructure {
    /// Loops from outermost to innermost.
    pub loops: Vec<LoopInfo>,
}

impl LoopStructure {
    /// For each original variable, the `(loop index, stride)` pairs whose
    /// weighted sum reconstructs it. Used by lowering to substitute
    /// original variables in operand indices.
    pub fn expansions(&self) -> HashMap<VarRef, Vec<(usize, i64)>> {
        let mut map: HashMap<VarRef, Vec<(usize, i64)>> = HashMap::new();
        for (i, l) in self.loops.iter().enumerate() {
            map.entry(l.sub.var).or_default().push((i, l.stride));
        }
        map
    }

    /// Total iteration count (product of extents).
    pub fn iterations(&self) -> u64 {
        self.loops.iter().map(|l| l.extent as u64).product()
    }
}

/// A splitting of one variable into nested pieces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// The variable being split.
    pub var: VarRef,
    /// Extents of the *inner* pieces (piece 1, piece 2, …); piece 0's
    /// extent is `original_extent / product(factors)` and must divide
    /// exactly.
    pub factors: Vec<usize>,
}

/// A complete schedule: splits, a loop order, and annotations.
///
/// # Example
///
/// ```
/// use simtune_tensor::{matmul, Schedule, TargetIsa};
///
/// let def = matmul(8, 8, 8);
/// let sched = Schedule::default_for(&def);
/// let nest = sched.apply(&def, &TargetIsa::riscv_u74()).unwrap();
/// assert_eq!(nest.loops.len(), 3); // i, j, k
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    /// Variable splits (at most one entry per variable).
    pub splits: Vec<Split>,
    /// Permutation of every sub-variable, outermost first.
    pub order: Vec<SubVar>,
    /// Sub-variables to fully unroll.
    pub unroll: Vec<SubVar>,
    /// Sub-variable to vectorize (must be the innermost loop).
    pub vectorize: Option<SubVar>,
    /// Sub-variable marked parallel. Accepted for API parity with TVM but
    /// a no-op: the paper's workloads are single-core (Section III-B).
    pub parallel: Option<SubVar>,
}

/// Errors raised when applying a schedule or lowering it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A split's factors do not divide the variable's extent.
    NonDividingSplit {
        /// The offending variable.
        var: String,
        /// Its extent.
        extent: usize,
        /// Product of the requested inner factors.
        factor_product: usize,
    },
    /// `order` is not a permutation of the produced sub-variables.
    NotAPermutation {
        /// Description of what is missing or duplicated.
        detail: String,
    },
    /// A variable was split more than once.
    DuplicateSplit {
        /// The offending variable.
        var: String,
    },
    /// The vectorized loop is not the innermost loop.
    VectorizeNotInnermost,
    /// Vectorize was requested on a reduction axis.
    VectorizeOnReduce,
    /// The vectorized loop's extent differs from the target's lane count.
    VectorizeWidthMismatch {
        /// Loop extent.
        extent: usize,
        /// Target lanes.
        lanes: usize,
    },
    /// The target has no vector unit.
    VectorizeUnsupported {
        /// Target name.
        target: &'static str,
    },
    /// An unrolled loop exceeds [`MAX_UNROLL`].
    UnrollTooLarge {
        /// The requested extent.
        extent: usize,
    },
    /// `parallel` must annotate the outermost loop.
    ParallelNotOutermost,
    /// The output is not written contiguously along the vectorized loop
    /// (its coefficient in the flattened output index must be 1).
    VectorizedOutputNotContiguous {
        /// The actual coefficient.
        coef: i64,
    },
    /// An annotation references a sub-variable absent from the order.
    UnknownSubVar {
        /// Display form of the sub-variable.
        sub: String,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NonDividingSplit {
                var,
                extent,
                factor_product,
            } => write!(
                f,
                "split of {var} (extent {extent}) by factor product {factor_product} does not divide"
            ),
            ScheduleError::NotAPermutation { detail } => {
                write!(f, "order is not a permutation of sub-variables: {detail}")
            }
            ScheduleError::DuplicateSplit { var } => write!(f, "variable {var} split twice"),
            ScheduleError::VectorizeNotInnermost => {
                write!(f, "vectorized loop must be innermost")
            }
            ScheduleError::VectorizeOnReduce => {
                write!(f, "cannot vectorize a reduction axis")
            }
            ScheduleError::VectorizeWidthMismatch { extent, lanes } => {
                write!(f, "vectorized extent {extent} != target lanes {lanes}")
            }
            ScheduleError::VectorizeUnsupported { target } => {
                write!(f, "target {target} has no vector unit")
            }
            ScheduleError::UnrollTooLarge { extent } => {
                write!(f, "unroll extent {extent} exceeds {MAX_UNROLL}")
            }
            ScheduleError::ParallelNotOutermost => {
                write!(f, "parallel annotation must be on the outermost loop")
            }
            ScheduleError::VectorizedOutputNotContiguous { coef } => {
                write!(f, "vectorized output stride {coef} != 1")
            }
            ScheduleError::UnknownSubVar { sub } => {
                write!(f, "annotation references unknown sub-variable {sub}")
            }
        }
    }
}

impl Error for ScheduleError {}

impl Schedule {
    /// The identity schedule: no splits, spatial axes outer (in order),
    /// reduce axes inner (in order) — TVM's default loop nest.
    pub fn default_for(def: &ComputeDef) -> Schedule {
        let mut order = Vec::new();
        for i in 0..def.spatial_extents.len() {
            order.push(SubVar::whole(VarRef::Spatial(i)));
        }
        for i in 0..def.reduce_extents.len() {
            order.push(SubVar::whole(VarRef::Reduce(i)));
        }
        Schedule {
            order,
            ..Schedule::default()
        }
    }

    /// Applies the schedule to `def` for `target`, validating every
    /// constraint.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`ScheduleError`] (non-dividing split,
    /// broken permutation, misplaced annotations, …).
    pub fn apply(
        &self,
        def: &ComputeDef,
        target: &TargetIsa,
    ) -> Result<LoopStructure, ScheduleError> {
        // 1. Work out the pieces of every variable.
        let extent_of = |v: VarRef| -> usize {
            match v {
                VarRef::Spatial(i) => def.spatial_extents[i],
                VarRef::Reduce(i) => def.reduce_extents[i],
            }
        };
        let mut pieces: HashMap<VarRef, Vec<usize>> = HashMap::new();
        let all_vars: Vec<VarRef> = (0..def.spatial_extents.len())
            .map(VarRef::Spatial)
            .chain((0..def.reduce_extents.len()).map(VarRef::Reduce))
            .collect();
        for v in &all_vars {
            pieces.insert(*v, vec![extent_of(*v)]);
        }
        for split in &self.splits {
            let entry = pieces
                .get_mut(&split.var)
                .ok_or_else(|| ScheduleError::UnknownSubVar {
                    sub: split.var.to_string(),
                })?;
            if entry.len() != 1 {
                return Err(ScheduleError::DuplicateSplit {
                    var: split.var.to_string(),
                });
            }
            let extent = entry[0];
            let product: usize = split.factors.iter().product();
            if product == 0 || extent % product != 0 {
                return Err(ScheduleError::NonDividingSplit {
                    var: split.var.to_string(),
                    extent,
                    factor_product: product,
                });
            }
            let mut exts = vec![extent / product];
            exts.extend_from_slice(&split.factors);
            *entry = exts;
        }

        // 2. Strides per piece: product of inner piece extents.
        let mut stride_of: HashMap<SubVar, (usize, i64)> = HashMap::new();
        for (var, exts) in &pieces {
            let mut stride = 1i64;
            for (p, &e) in exts.iter().enumerate().rev() {
                stride_of.insert(
                    SubVar {
                        var: *var,
                        piece: p,
                    },
                    (e, stride),
                );
                stride *= e as i64;
            }
        }

        // 3. Validate the order is a permutation of all sub-variables.
        let mut seen: HashMap<SubVar, bool> = stride_of.keys().map(|k| (*k, false)).collect();
        for sub in &self.order {
            match seen.get_mut(sub) {
                None => {
                    return Err(ScheduleError::NotAPermutation {
                        detail: format!("unknown sub-variable {sub}"),
                    })
                }
                Some(s) if *s => {
                    return Err(ScheduleError::NotAPermutation {
                        detail: format!("duplicate sub-variable {sub}"),
                    })
                }
                Some(s) => *s = true,
            }
        }
        if let Some((missing, _)) = seen.iter().find(|(_, &v)| !v) {
            return Err(ScheduleError::NotAPermutation {
                detail: format!("missing sub-variable {missing}"),
            });
        }

        // 4. Assemble loops with annotations.
        let mut loops = Vec::with_capacity(self.order.len());
        for (i, sub) in self.order.iter().enumerate() {
            let (extent, stride) = stride_of[sub];
            let mut kind = LoopKind::Serial;
            if self.unroll.contains(sub) {
                if extent > MAX_UNROLL {
                    return Err(ScheduleError::UnrollTooLarge { extent });
                }
                kind = LoopKind::Unrolled;
            }
            if self.vectorize == Some(*sub) {
                if i != self.order.len() - 1 {
                    return Err(ScheduleError::VectorizeNotInnermost);
                }
                if matches!(sub.var, VarRef::Reduce(_)) {
                    return Err(ScheduleError::VectorizeOnReduce);
                }
                if !target.has_vectors() {
                    return Err(ScheduleError::VectorizeUnsupported {
                        target: target.name,
                    });
                }
                if extent != target.vector_lanes {
                    return Err(ScheduleError::VectorizeWidthMismatch {
                        extent,
                        lanes: target.vector_lanes,
                    });
                }
                kind = LoopKind::Vectorized;
            }
            loops.push(LoopInfo {
                sub: *sub,
                extent,
                stride,
                kind,
                is_reduce: matches!(sub.var, VarRef::Reduce(_)),
            });
        }
        if let Some(v) = &self.vectorize {
            if !self.order.contains(v) {
                return Err(ScheduleError::UnknownSubVar { sub: v.to_string() });
            }
        }
        for u in &self.unroll {
            if !self.order.contains(u) {
                return Err(ScheduleError::UnknownSubVar { sub: u.to_string() });
            }
        }
        if let Some(p) = &self.parallel {
            if self.order.first() != Some(p) {
                return Err(ScheduleError::ParallelNotOutermost);
            }
        }
        Ok(LoopStructure { loops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::matmul;

    fn target() -> TargetIsa {
        TargetIsa::arm_cortex_a72() // 4 lanes
    }

    #[test]
    fn default_schedule_orders_spatial_then_reduce() {
        let def = matmul(4, 4, 4);
        let nest = Schedule::default_for(&def).apply(&def, &target()).unwrap();
        assert_eq!(nest.loops.len(), 3);
        assert!(!nest.loops[0].is_reduce);
        assert!(!nest.loops[1].is_reduce);
        assert!(nest.loops[2].is_reduce);
        assert_eq!(nest.iterations(), 64);
    }

    #[test]
    fn split_produces_pieces_with_correct_strides() {
        let def = matmul(8, 4, 4);
        let i = VarRef::Spatial(0);
        let mut sched = Schedule::default_for(&def);
        sched.splits.push(Split {
            var: i,
            factors: vec![2],
        });
        sched.order = vec![
            SubVar { var: i, piece: 0 },
            SubVar::whole(VarRef::Spatial(1)),
            SubVar { var: i, piece: 1 },
            SubVar::whole(VarRef::Reduce(0)),
        ];
        let nest = sched.apply(&def, &target()).unwrap();
        // i.0: extent 4, stride 2; i.1: extent 2, stride 1.
        assert_eq!(nest.loops[0].extent, 4);
        assert_eq!(nest.loops[0].stride, 2);
        assert_eq!(nest.loops[2].extent, 2);
        assert_eq!(nest.loops[2].stride, 1);
        let exp = nest.expansions();
        assert_eq!(exp[&i], vec![(0, 2), (2, 1)]);
    }

    #[test]
    fn non_dividing_split_rejected() {
        let def = matmul(6, 4, 4);
        let mut sched = Schedule::default_for(&def);
        sched.splits.push(Split {
            var: VarRef::Spatial(0),
            factors: vec![4],
        });
        sched.order = vec![
            SubVar {
                var: VarRef::Spatial(0),
                piece: 0,
            },
            SubVar {
                var: VarRef::Spatial(0),
                piece: 1,
            },
            SubVar::whole(VarRef::Spatial(1)),
            SubVar::whole(VarRef::Reduce(0)),
        ];
        assert!(matches!(
            sched.apply(&def, &target()),
            Err(ScheduleError::NonDividingSplit { .. })
        ));
    }

    #[test]
    fn broken_permutations_rejected() {
        let def = matmul(4, 4, 4);
        let mut sched = Schedule::default_for(&def);
        sched.order.pop(); // missing a sub-var
        assert!(matches!(
            sched.apply(&def, &target()),
            Err(ScheduleError::NotAPermutation { .. })
        ));
        let mut sched2 = Schedule::default_for(&def);
        let first = sched2.order[0];
        sched2.order[2] = first; // duplicate
        assert!(matches!(
            sched2.apply(&def, &target()),
            Err(ScheduleError::NotAPermutation { .. })
        ));
    }

    #[test]
    fn vectorize_constraints() {
        let def = matmul(4, 4, 4);
        // Vectorize innermost spatial j (extent 4 == ARM lanes): ok.
        let mut ok = Schedule::default_for(&def);
        ok.order = vec![
            SubVar::whole(VarRef::Spatial(0)),
            SubVar::whole(VarRef::Reduce(0)),
            SubVar::whole(VarRef::Spatial(1)),
        ];
        ok.vectorize = Some(SubVar::whole(VarRef::Spatial(1)));
        assert!(ok.apply(&def, &target()).is_ok());

        // Not innermost: rejected.
        let mut bad = ok.clone();
        bad.order = vec![
            SubVar::whole(VarRef::Spatial(0)),
            SubVar::whole(VarRef::Spatial(1)),
            SubVar::whole(VarRef::Reduce(0)),
        ];
        assert_eq!(
            bad.apply(&def, &target()),
            Err(ScheduleError::VectorizeNotInnermost)
        );

        // On a reduce axis: rejected.
        let mut red = Schedule::default_for(&def);
        red.vectorize = Some(SubVar::whole(VarRef::Reduce(0)));
        assert_eq!(
            red.apply(&def, &target()),
            Err(ScheduleError::VectorizeOnReduce)
        );

        // Wrong width (8 != 4 lanes): rejected.
        let def8 = matmul(4, 8, 4);
        let mut wide = Schedule::default_for(&def8);
        wide.order = vec![
            SubVar::whole(VarRef::Spatial(0)),
            SubVar::whole(VarRef::Reduce(0)),
            SubVar::whole(VarRef::Spatial(1)),
        ];
        wide.vectorize = Some(SubVar::whole(VarRef::Spatial(1)));
        assert!(matches!(
            wide.apply(&def8, &target()),
            Err(ScheduleError::VectorizeWidthMismatch { .. })
        ));

        // Scalar-only target: rejected.
        assert!(matches!(
            ok.apply(&def, &TargetIsa::riscv_u74()),
            Err(ScheduleError::VectorizeUnsupported { .. })
        ));
    }

    #[test]
    fn unroll_limit_enforced() {
        let def = matmul(4, 4, 64);
        let mut sched = Schedule::default_for(&def);
        sched.unroll.push(SubVar::whole(VarRef::Reduce(0)));
        assert!(matches!(
            sched.apply(&def, &target()),
            Err(ScheduleError::UnrollTooLarge { extent: 64 })
        ));
    }

    #[test]
    fn parallel_must_be_outermost() {
        let def = matmul(4, 4, 4);
        let mut sched = Schedule::default_for(&def);
        sched.parallel = Some(SubVar::whole(VarRef::Spatial(1)));
        assert_eq!(
            sched.apply(&def, &target()),
            Err(ScheduleError::ParallelNotOutermost)
        );
        sched.parallel = Some(SubVar::whole(VarRef::Spatial(0)));
        assert!(sched.apply(&def, &target()).is_ok());
    }

    #[test]
    fn duplicate_split_rejected() {
        let def = matmul(8, 4, 4);
        let mut sched = Schedule::default_for(&def);
        sched.splits.push(Split {
            var: VarRef::Spatial(0),
            factors: vec![2],
        });
        sched.splits.push(Split {
            var: VarRef::Spatial(0),
            factors: vec![2],
        });
        assert!(matches!(
            sched.apply(&def, &target()),
            Err(ScheduleError::DuplicateSplit { .. })
        ));
    }
}
