//! Concrete kernel definitions: the workloads of the paper.
//!
//! The paper evaluates five groups of `Conv2D+Bias+ReLU` kernels taken
//! from a ResNet architecture (its Table II). [`Conv2dShape::paper_groups`]
//! reproduces those shapes exactly; [`Conv2dShape::scaled`] derives the
//! proportionally reduced variants used by the default experiment scale
//! (see DESIGN.md §7). [`matmul`] provides a second kernel type for
//! examples and cross-kernel-type tests.

use crate::expr::{
    AffineIdx, ComputeDef, Epilogue, OperandAccess, ReduceOp, TensorDecl, TensorInit, VarRef,
};

/// Shape and parameters of one Conv2D+Bias+ReLU group — one row of the
/// paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dShape {
    /// Batch size.
    pub n: usize,
    /// Input feature-map height.
    pub h: usize,
    /// Input feature-map width.
    pub w: usize,
    /// Output channels.
    pub co: usize,
    /// Input channels.
    pub ci: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (height, width).
    pub stride: (usize, usize),
    /// Zero padding (height, width).
    pub pad: (usize, usize),
}

impl Conv2dShape {
    /// Output height `(h + 2·pad_h - kh) / stride_h + 1`.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad.0 - self.kh) / self.stride.0 + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad.1 - self.kw) / self.stride.1 + 1
    }

    /// Multiply-accumulate count of the convolution.
    pub fn macs(&self) -> u64 {
        (self.n * self.co * self.out_h() * self.out_w() * self.ci * self.kh * self.kw) as u64
    }

    /// The five ResNet groups of the paper's Table II, in order.
    pub fn paper_groups() -> Vec<Conv2dShape> {
        vec![
            // group N  H    W    CO   CI  KH KW stride  pad
            Conv2dShape {
                n: 1,
                h: 224,
                w: 224,
                co: 64,
                ci: 3,
                kh: 7,
                kw: 7,
                stride: (2, 2),
                pad: (3, 3),
            },
            Conv2dShape {
                n: 1,
                h: 56,
                w: 56,
                co: 64,
                ci: 64,
                kh: 3,
                kw: 3,
                stride: (1, 1),
                pad: (1, 1),
            },
            Conv2dShape {
                n: 1,
                h: 56,
                w: 56,
                co: 128,
                ci: 64,
                kh: 3,
                kw: 3,
                stride: (2, 2),
                pad: (1, 1),
            },
            Conv2dShape {
                n: 1,
                h: 28,
                w: 28,
                co: 256,
                ci: 128,
                kh: 3,
                kw: 3,
                stride: (2, 2),
                pad: (1, 1),
            },
            Conv2dShape {
                n: 1,
                h: 14,
                w: 14,
                co: 512,
                ci: 256,
                kh: 3,
                kw: 3,
                stride: (2, 2),
                pad: (1, 1),
            },
        ]
    }

    /// Proportionally scaled variant: spatial extents divided by
    /// `spatial_div`, channel counts divided by `channel_div` (with floors
    /// keeping the kernel window applicable). Filter shape, stride and
    /// padding are preserved so the memory-access *structure* is unchanged.
    pub fn scaled(&self, spatial_div: usize, channel_div: usize) -> Conv2dShape {
        let h = (self.h / spatial_div).max(self.kh + self.stride.0);
        let w = (self.w / spatial_div).max(self.kw + self.stride.1);
        Conv2dShape {
            n: self.n,
            h,
            w,
            co: (self.co / channel_div).max(4),
            ci: (self.ci / channel_div).max(3),
            kh: self.kh,
            kw: self.kw,
            stride: self.stride,
            pad: self.pad,
        }
    }
}

/// Builds the fused `Conv2D+Bias+ReLU` compute definition (NCHW layout)
/// for a shape.
///
/// Padding is folded into the input tensor: the `ifm` buffer is declared
/// with shape `[N, CI, H + 2·pad_h, W + 2·pad_w]` and the loader
/// materializes zeros in the halo — the same materialization TVM's `pad`
/// stage performs. Inner loops therefore stay branch-free affine accesses.
///
/// # Example
///
/// ```
/// use simtune_tensor::{conv2d_bias_relu, Conv2dShape};
///
/// let shape = Conv2dShape { n: 1, h: 8, w: 8, co: 4, ci: 3, kh: 3, kw: 3,
///                           stride: (1, 1), pad: (1, 1) };
/// let def = conv2d_bias_relu(&shape);
/// assert_eq!(def.spatial_extents, vec![1, 4, 8, 8]);
/// def.validate().unwrap();
/// ```
pub fn conv2d_bias_relu(shape: &Conv2dShape) -> ComputeDef {
    let (sh, sw) = shape.stride;
    let (ph, pw) = shape.pad;
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let hp = shape.h + 2 * ph;
    let wp = shape.w + 2 * pw;

    // Spatial axes: s0=n, s1=co, s2=oh, s3=ow. Reduce: r0=ci, r1=kh, r2=kw.
    let (n, co, ci) = (VarRef::Spatial(0), VarRef::Spatial(1), VarRef::Reduce(0));
    let (i, j) = (VarRef::Spatial(2), VarRef::Spatial(3));
    let (kh, kw) = (VarRef::Reduce(1), VarRef::Reduce(2));

    ComputeDef {
        name: "conv2d_bias_relu".into(),
        tensors: vec![
            TensorDecl::new("ifm", vec![shape.n, shape.ci, hp, wp]).with_init(
                TensorInit::PaddedRandom {
                    inner: vec![shape.n, shape.ci, shape.h, shape.w],
                    pad: (ph, pw),
                },
            ),
            TensorDecl::new("weights", vec![shape.co, shape.ci, shape.kh, shape.kw]),
            TensorDecl::new("bias", vec![shape.co]),
            TensorDecl::new("ofm", vec![shape.n, shape.co, oh, ow]).with_init(TensorInit::Zeros),
        ],
        spatial_extents: vec![shape.n, shape.co, oh, ow],
        reduce_extents: vec![shape.ci, shape.kh, shape.kw],
        // ifm[n][ci][i*sh + kh][j*sw + kw]   (pre-padded input)
        lhs: OperandAccess {
            tensor: 0,
            index: vec![
                AffineIdx::var(n),
                AffineIdx::var(ci),
                AffineIdx::scaled(i, sh as i64).plus(kh, 1),
                AffineIdx::scaled(j, sw as i64).plus(kw, 1),
            ],
        },
        // weights[co][ci][kh][kw]
        rhs: Some(OperandAccess {
            tensor: 1,
            index: vec![
                AffineIdx::var(co),
                AffineIdx::var(ci),
                AffineIdx::var(kh),
                AffineIdx::var(kw),
            ],
        }),
        output: 3,
        epilogue: Some(Epilogue {
            bias: Some(OperandAccess {
                tensor: 2,
                index: vec![AffineIdx::var(co)],
            }),
            relu: true,
        }),
        acc_init: 0.0,
        reduce_op: ReduceOp::Sum,
    }
}

/// Fills the pre-padded `ifm` buffer: interior from `values` (row-major
/// `[n][ci][h][w]`), halo zeros. Returns the padded buffer.
///
/// # Panics
///
/// Panics if `values.len() != n*ci*h*w`.
pub fn pad_ifm(shape: &Conv2dShape, values: &[f32]) -> Vec<f32> {
    assert_eq!(values.len(), shape.n * shape.ci * shape.h * shape.w);
    let (ph, pw) = shape.pad;
    let hp = shape.h + 2 * ph;
    let wp = shape.w + 2 * pw;
    let mut out = vec![0.0f32; shape.n * shape.ci * hp * wp];
    for n in 0..shape.n {
        for c in 0..shape.ci {
            for y in 0..shape.h {
                let src = ((n * shape.ci + c) * shape.h + y) * shape.w;
                let dst = ((n * shape.ci + c) * hp + y + ph) * wp + pw;
                out[dst..dst + shape.w].copy_from_slice(&values[src..src + shape.w]);
            }
        }
    }
    out
}

/// Builds a plain MatMul `C[i,j] = Σ_k A[i,k]·B[k,j]` compute definition
/// (the paper's Listing 1).
///
/// # Example
///
/// ```
/// let def = simtune_tensor::matmul(16, 16, 16);
/// assert_eq!(def.macs(), 16 * 16 * 16);
/// def.validate().unwrap();
/// ```
pub fn matmul(n: usize, m: usize, l: usize) -> ComputeDef {
    let (i, j, k) = (VarRef::Spatial(0), VarRef::Spatial(1), VarRef::Reduce(0));
    ComputeDef {
        name: "matmul".into(),
        tensors: vec![
            TensorDecl::new("a", vec![n, l]),
            TensorDecl::new("b", vec![l, m]),
            TensorDecl::new("c", vec![n, m]).with_init(TensorInit::Zeros),
        ],
        spatial_extents: vec![n, m],
        reduce_extents: vec![l],
        lhs: OperandAccess {
            tensor: 0,
            index: vec![AffineIdx::var(i), AffineIdx::var(k)],
        },
        rhs: Some(OperandAccess {
            tensor: 1,
            index: vec![AffineIdx::var(k), AffineIdx::var(j)],
        }),
        output: 2,
        epilogue: None,
        acc_init: 0.0,
        reduce_op: ReduceOp::Sum,
    }
}

/// Shape of a 2-D max-pooling kernel (no padding: ResNet's pooling halo
/// would need −∞ padding, which the zero-halo loader cannot express).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pool2dShape {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Square pooling window size.
    pub k: usize,
    /// Stride in both dimensions.
    pub stride: usize,
}

impl Pool2dShape {
    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.h - self.k) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.w - self.k) / self.stride + 1
    }
}

/// Builds a MaxPool2D compute definition — a third kernel type whose
/// reduction combinator is `max` rather than `+`, exercising the
/// [`ReduceOp::Max`] lowering path.
///
/// # Example
///
/// ```
/// use simtune_tensor::{max_pool2d, Pool2dShape};
///
/// let def = max_pool2d(&Pool2dShape { n: 1, c: 4, h: 8, w: 8, k: 2, stride: 2 });
/// assert_eq!(def.spatial_extents, vec![1, 4, 4, 4]);
/// def.validate().unwrap();
/// ```
pub fn max_pool2d(shape: &Pool2dShape) -> ComputeDef {
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let (n, c) = (VarRef::Spatial(0), VarRef::Spatial(1));
    let (i, j) = (VarRef::Spatial(2), VarRef::Spatial(3));
    let (kh, kw) = (VarRef::Reduce(0), VarRef::Reduce(1));
    let s = shape.stride as i64;
    ComputeDef {
        name: "max_pool2d".into(),
        tensors: vec![
            TensorDecl::new("ifm", vec![shape.n, shape.c, shape.h, shape.w]),
            TensorDecl::new("ofm", vec![shape.n, shape.c, oh, ow]).with_init(TensorInit::Zeros),
        ],
        spatial_extents: vec![shape.n, shape.c, oh, ow],
        reduce_extents: vec![shape.k, shape.k],
        lhs: OperandAccess {
            tensor: 0,
            index: vec![
                AffineIdx::var(n),
                AffineIdx::var(c),
                AffineIdx::scaled(i, s).plus(kh, 1),
                AffineIdx::scaled(j, s).plus(kw, 1),
            ],
        },
        rhs: None,
        output: 1,
        epilogue: None,
        acc_init: f32::MIN,
        reduce_op: ReduceOp::Max,
    }
}

/// Depthwise Conv2D+Bias+ReLU (each channel convolved independently) —
/// an additional kernel type exercising a different reduction structure.
pub fn depthwise_conv2d_bias_relu(shape: &Conv2dShape) -> ComputeDef {
    let (sh, sw) = shape.stride;
    let (ph, pw) = shape.pad;
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let hp = shape.h + 2 * ph;
    let wp = shape.w + 2 * pw;
    let c = shape.ci; // depthwise: co == ci == c

    let (n, ch) = (VarRef::Spatial(0), VarRef::Spatial(1));
    let (i, j) = (VarRef::Spatial(2), VarRef::Spatial(3));
    let (kh, kw) = (VarRef::Reduce(0), VarRef::Reduce(1));

    ComputeDef {
        name: "depthwise_conv2d_bias_relu".into(),
        tensors: vec![
            TensorDecl::new("ifm", vec![shape.n, c, hp, wp]).with_init(TensorInit::PaddedRandom {
                inner: vec![shape.n, c, shape.h, shape.w],
                pad: (ph, pw),
            }),
            TensorDecl::new("weights", vec![c, shape.kh, shape.kw]),
            TensorDecl::new("bias", vec![c]),
            TensorDecl::new("ofm", vec![shape.n, c, oh, ow]).with_init(TensorInit::Zeros),
        ],
        spatial_extents: vec![shape.n, c, oh, ow],
        reduce_extents: vec![shape.kh, shape.kw],
        lhs: OperandAccess {
            tensor: 0,
            index: vec![
                AffineIdx::var(n),
                AffineIdx::var(ch),
                AffineIdx::scaled(i, sh as i64).plus(kh, 1),
                AffineIdx::scaled(j, sw as i64).plus(kw, 1),
            ],
        },
        rhs: Some(OperandAccess {
            tensor: 1,
            index: vec![AffineIdx::var(ch), AffineIdx::var(kh), AffineIdx::var(kw)],
        }),
        output: 3,
        epilogue: Some(Epilogue {
            bias: Some(OperandAccess {
                tensor: 2,
                index: vec![AffineIdx::var(ch)],
            }),
            relu: true,
        }),
        acc_init: 0.0,
        reduce_op: ReduceOp::Sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::fill_values;

    #[test]
    fn paper_groups_match_table_ii() {
        let g = Conv2dShape::paper_groups();
        assert_eq!(g.len(), 5);
        assert_eq!((g[0].h, g[0].w, g[0].co, g[0].ci), (224, 224, 64, 3));
        assert_eq!((g[0].kh, g[0].kw), (7, 7));
        assert_eq!(g[0].stride, (2, 2));
        assert_eq!(g[0].pad, (3, 3));
        assert_eq!((g[4].h, g[4].w, g[4].co, g[4].ci), (14, 14, 512, 256));
        for s in &g {
            conv2d_bias_relu(s).validate().expect("group validates");
        }
    }

    #[test]
    fn out_dims_match_resnet_expectations() {
        let g = Conv2dShape::paper_groups();
        assert_eq!((g[0].out_h(), g[0].out_w()), (112, 112));
        assert_eq!((g[1].out_h(), g[1].out_w()), (56, 56));
        assert_eq!((g[2].out_h(), g[2].out_w()), (28, 28));
    }

    #[test]
    fn scaled_preserves_filter_geometry() {
        let g0 = Conv2dShape::paper_groups()[0];
        let s = g0.scaled(4, 4);
        assert_eq!((s.kh, s.kw), (g0.kh, g0.kw));
        assert_eq!(s.stride, g0.stride);
        assert!(s.macs() < g0.macs() / 16);
        conv2d_bias_relu(&s).validate().expect("scaled validates");
    }

    #[test]
    fn conv_reference_matches_hand_computation() {
        // 1x1 input channel, 3x3 input, 2x2 kernel, no pad, stride 1.
        let shape = Conv2dShape {
            n: 1,
            h: 3,
            w: 3,
            co: 1,
            ci: 1,
            kh: 2,
            kw: 2,
            stride: (1, 1),
            pad: (0, 0),
        };
        let def = conv2d_bias_relu(&shape);
        let ifm = vec![1., 2., 3., 4., 5., 6., 7., 8., 9.];
        let padded = pad_ifm(&shape, &ifm);
        assert_eq!(padded, ifm, "no padding requested");
        let weights = vec![1., 0., 0., 1.]; // picks x[i][j] + x[i+1][j+1]
        let bias = vec![0.5];
        let out = def.reference(&[padded, weights, bias, vec![0.0; 4]]);
        // (1+5)+0.5, (2+6)+0.5, (4+8)+0.5, (5+9)+0.5
        assert_eq!(out, vec![6.5, 8.5, 12.5, 14.5]);
    }

    #[test]
    fn conv_reference_applies_relu() {
        let shape = Conv2dShape {
            n: 1,
            h: 2,
            w: 2,
            co: 1,
            ci: 1,
            kh: 1,
            kw: 1,
            stride: (1, 1),
            pad: (0, 0),
        };
        let def = conv2d_bias_relu(&shape);
        let out = def.reference(&[
            vec![-1.0, 2.0, -3.0, 4.0],
            vec![1.0],
            vec![0.0],
            vec![0.0; 4],
        ]);
        assert_eq!(out, vec![0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn pad_ifm_places_halo_zeros() {
        let shape = Conv2dShape {
            n: 1,
            h: 2,
            w: 2,
            co: 1,
            ci: 1,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            pad: (1, 1),
        };
        let padded = pad_ifm(&shape, &[1., 2., 3., 4.]);
        assert_eq!(padded.len(), 16);
        // Row 0 all zeros; row 1 = [0, 1, 2, 0].
        assert_eq!(&padded[0..4], &[0., 0., 0., 0.]);
        assert_eq!(&padded[4..8], &[0., 1., 2., 0.]);
        assert_eq!(&padded[8..12], &[0., 3., 4., 0.]);
    }

    #[test]
    fn matmul_and_depthwise_validate() {
        matmul(8, 8, 8).validate().unwrap();
        let shape = Conv2dShape {
            n: 1,
            h: 8,
            w: 8,
            co: 6,
            ci: 6,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            pad: (1, 1),
        };
        depthwise_conv2d_bias_relu(&shape).validate().unwrap();
    }

    #[test]
    fn padded_conv_reference_against_dense_formula() {
        // Randomized 2-channel case cross-checked against a direct
        // quadruple-loop implementation.
        let shape = Conv2dShape {
            n: 1,
            h: 5,
            w: 6,
            co: 3,
            ci: 2,
            kh: 3,
            kw: 3,
            stride: (2, 2),
            pad: (1, 1),
        };
        let def = conv2d_bias_relu(&shape);
        let ifm = fill_values(shape.n * shape.ci * shape.h * shape.w, 1);
        let weights = fill_values(shape.co * shape.ci * shape.kh * shape.kw, 2);
        let bias = fill_values(shape.co, 3);
        let padded = pad_ifm(&shape, &ifm);
        let got = def.reference(&[
            padded,
            weights.clone(),
            bias.clone(),
            vec![0.0; shape.co * shape.out_h() * shape.out_w()],
        ]);

        let (oh, ow) = (shape.out_h(), shape.out_w());
        let mut want = vec![0.0f32; shape.co * oh * ow];
        for co in 0..shape.co {
            for i in 0..oh {
                for j in 0..ow {
                    let mut acc = 0.0f32;
                    for ci in 0..shape.ci {
                        for kh in 0..shape.kh {
                            for kw in 0..shape.kw {
                                let y = (i * 2 + kh) as i64 - 1;
                                let x = (j * 2 + kw) as i64 - 1;
                                if y >= 0 && y < shape.h as i64 && x >= 0 && x < shape.w as i64 {
                                    let iv =
                                        ifm[(ci * shape.h + y as usize) * shape.w + x as usize];
                                    let wv = weights
                                        [((co * shape.ci + ci) * shape.kh + kh) * shape.kw + kw];
                                    acc += iv * wv;
                                }
                            }
                        }
                    }
                    want[(co * oh + i) * ow + j] = (acc + bias[co]).max(0.0);
                }
            }
        }
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-4, "mismatch: {g} vs {w}");
        }
    }
}
