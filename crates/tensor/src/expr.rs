//! Tensor-expression layer: the Tensor Expression (TE) stand-in.
//!
//! The paper's kernels are TVM TE compute definitions (its Listings 1
//! and 5). This module captures the same class of operators in a compact
//! normal form: an output tensor defined over *spatial* axes, reduced over
//! *reduce* axes, whose value is the sum over the reduction domain of a
//! product of operand loads with affine indices, optionally followed by an
//! elementwise epilogue (bias add + ReLU). That normal form covers MatMul,
//! Conv2D(+Bias+ReLU), depthwise convolution and friends — every kernel
//! the paper evaluates.

use std::fmt;

/// Reference to an iteration variable of a compute definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarRef {
    /// `i`-th spatial (parallel) axis of the output.
    Spatial(usize),
    /// `i`-th reduction axis.
    Reduce(usize),
}

impl fmt::Display for VarRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarRef::Spatial(i) => write!(f, "s{i}"),
            VarRef::Reduce(i) => write!(f, "r{i}"),
        }
    }
}

/// Affine index expression `Σ coef·var + constant` used to index one
/// dimension of an operand tensor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AffineIdx {
    /// `(variable, coefficient)` terms; variables appear at most once.
    pub terms: Vec<(VarRef, i64)>,
    /// Constant offset.
    pub constant: i64,
}

impl AffineIdx {
    /// The bare variable `v` (coefficient 1, no offset).
    pub fn var(v: VarRef) -> Self {
        AffineIdx {
            terms: vec![(v, 1)],
            constant: 0,
        }
    }

    /// `coef * v`.
    pub fn scaled(v: VarRef, coef: i64) -> Self {
        AffineIdx {
            terms: vec![(v, coef)],
            constant: 0,
        }
    }

    /// A constant index.
    pub fn constant(c: i64) -> Self {
        AffineIdx {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// Adds a term, merging coefficients of repeated variables.
    pub fn plus(mut self, v: VarRef, coef: i64) -> Self {
        if let Some(t) = self.terms.iter_mut().find(|(tv, _)| *tv == v) {
            t.1 += coef;
        } else {
            self.terms.push((v, coef));
        }
        self.terms.retain(|&(_, c)| c != 0);
        self
    }

    /// Adds a constant offset.
    pub fn plus_const(mut self, c: i64) -> Self {
        self.constant += c;
        self
    }

    /// Evaluates the expression for concrete variable values.
    pub fn eval(&self, spatial: &[usize], reduce: &[usize]) -> i64 {
        let mut v = self.constant;
        for &(var, coef) in &self.terms {
            let val = match var {
                VarRef::Spatial(i) => spatial[i] as i64,
                VarRef::Reduce(i) => reduce[i] as i64,
            };
            v += coef * val;
        }
        v
    }

    /// Coefficient of `v` (0 if absent).
    pub fn coef(&self, v: VarRef) -> i64 {
        self.terms
            .iter()
            .find(|(tv, _)| *tv == v)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }
}

/// How a tensor buffer is initialized when an executable is prepared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorInit {
    /// Deterministic pseudo-random values in [-1, 1).
    Random,
    /// Random interior of shape `inner` embedded in a zero halo of
    /// `pad = (pad_h, pad_w)` on the last two dimensions (pre-padded
    /// convolution inputs).
    PaddedRandom {
        /// Unpadded shape.
        inner: Vec<usize>,
        /// Halo widths on the last two dims.
        pad: (usize, usize),
    },
    /// All zeros (outputs, scratch).
    Zeros,
}

/// Declaration of a named tensor buffer with a row-major shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorDecl {
    /// Buffer name ("ifm", "weights", ...).
    pub name: String,
    /// Row-major shape.
    pub shape: Vec<usize>,
    /// Initialization policy when materialized into simulator memory.
    pub init: TensorInit,
}

impl TensorDecl {
    /// Creates a tensor declaration with [`TensorInit::Random`] contents.
    pub fn new(name: impl Into<String>, shape: Vec<usize>) -> Self {
        TensorDecl {
            name: name.into(),
            shape,
            init: TensorInit::Random,
        }
    }

    /// Sets the initialization policy, builder-style.
    pub fn with_init(mut self, init: TensorInit) -> Self {
        self.init = init;
        self
    }

    /// Materializes the buffer contents for a given seed.
    ///
    /// # Panics
    ///
    /// Panics if a `PaddedRandom` inner shape is inconsistent with the
    /// declared (padded) shape.
    pub fn materialize(&self, seed: u64) -> Vec<f32> {
        match &self.init {
            TensorInit::Random => fill_values(self.len(), seed),
            TensorInit::Zeros => vec![0.0; self.len()],
            TensorInit::PaddedRandom { inner, pad } => {
                let inner_len: usize = inner.iter().product();
                let values = fill_values(inner_len, seed);
                embed_padded(&self.shape, inner, *pad, &values)
            }
        }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// True for zero-element tensors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1; self.shape.len()];
        for i in (0..self.shape.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.shape[i + 1];
        }
        s
    }
}

/// An operand load: `tensor[idx0, idx1, ...]` with one affine index per
/// dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperandAccess {
    /// Index of the tensor in [`ComputeDef::tensors`].
    pub tensor: usize,
    /// One affine expression per tensor dimension.
    pub index: Vec<AffineIdx>,
}

impl OperandAccess {
    /// Flattens the multi-dimensional affine index into a single linear
    /// (element-offset) affine expression using the tensor's row-major
    /// strides.
    pub fn linearize(&self, decl: &TensorDecl) -> AffineIdx {
        let strides = decl.strides();
        let mut out = AffineIdx::default();
        for (dim, idx) in self.index.iter().enumerate() {
            let s = strides[dim] as i64;
            out.constant += idx.constant * s;
            for &(v, c) in &idx.terms {
                out = out.plus(v, c * s);
            }
        }
        out
    }
}

/// Elementwise epilogue applied to the reduction result
/// (`relu(acc + bias[...])` for the paper's Conv2D+Bias+ReLU kernels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Epilogue {
    /// Bias operand, indexed by spatial variables only.
    pub bias: Option<OperandAccess>,
    /// Apply `max(x, 0)` after the optional bias add.
    pub relu: bool,
}

/// The combining operator of the reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReduceOp {
    /// `acc += lhs · rhs` (convolutions, matrix products).
    #[default]
    Sum,
    /// `acc = max(acc, lhs · rhs)` (max pooling; `rhs` typically absent).
    Max,
}

impl ReduceOp {
    /// Combines an accumulator with a new value.
    pub fn combine(self, acc: f32, value: f32) -> f32 {
        match self {
            ReduceOp::Sum => acc + value,
            ReduceOp::Max => acc.max(value),
        }
    }
}

/// A complete compute definition in reduction normal form:
///
/// ```text
/// out[s0,…,sk] = epilogue( Σ_{r0,…,rm}  lhs[…] * rhs[…] )
/// ```
///
/// When `rhs` is `None` the product degenerates to a copy/reduction of a
/// single operand.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeDef {
    /// Kernel-type name ("conv2d_bias_relu", "matmul", ...). One score
    /// predictor is trained per (architecture, kernel type) — this name is
    /// the kernel-type key.
    pub name: String,
    /// All tensors: operands first, output last by convention.
    pub tensors: Vec<TensorDecl>,
    /// Extents of the spatial axes (equal to the output shape).
    pub spatial_extents: Vec<usize>,
    /// Extents of the reduction axes.
    pub reduce_extents: Vec<usize>,
    /// Left product operand.
    pub lhs: OperandAccess,
    /// Right product operand (None = single-operand reduction).
    pub rhs: Option<OperandAccess>,
    /// Index of the output tensor in `tensors`.
    pub output: usize,
    /// Optional bias/ReLU epilogue.
    pub epilogue: Option<Epilogue>,
    /// Initial accumulator value (0.0 for sums, a very negative value
    /// for max reductions).
    pub acc_init: f32,
    /// Reduction combinator.
    pub reduce_op: ReduceOp,
}

impl ComputeDef {
    /// Total multiply-accumulate operations
    /// (`Π spatial · Π reduce`).
    pub fn macs(&self) -> u64 {
        let s: u64 = self.spatial_extents.iter().map(|&e| e as u64).product();
        let r: u64 = self.reduce_extents.iter().map(|&e| e as u64).product();
        s * r
    }

    /// The output tensor declaration.
    pub fn output_decl(&self) -> &TensorDecl {
        &self.tensors[self.output]
    }

    /// Validates internal consistency (shapes, indices, bounds).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.output >= self.tensors.len() {
            return Err(format!("output tensor index {} out of range", self.output));
        }
        if self.output_decl().shape != self.spatial_extents {
            return Err(format!(
                "output shape {:?} != spatial extents {:?}",
                self.output_decl().shape,
                self.spatial_extents
            ));
        }
        let accesses: Vec<&OperandAccess> = std::iter::once(&self.lhs)
            .chain(self.rhs.iter())
            .chain(self.epilogue.iter().filter_map(|e| e.bias.as_ref()))
            .collect();
        for acc in accesses {
            let decl = self
                .tensors
                .get(acc.tensor)
                .ok_or_else(|| format!("operand tensor index {} out of range", acc.tensor))?;
            if acc.index.len() != decl.shape.len() {
                return Err(format!(
                    "operand {} has {} indices for {} dims",
                    decl.name,
                    acc.index.len(),
                    decl.shape.len()
                ));
            }
            // Bounds check at the extreme corners of the iteration space.
            for (dim, idx) in acc.index.iter().enumerate() {
                let (lo, hi) = self.index_range(idx);
                if lo < 0 || hi >= decl.shape[dim] as i64 {
                    return Err(format!(
                        "operand {} dim {dim} index range [{lo}, {hi}] exceeds extent {}",
                        decl.name, decl.shape[dim]
                    ));
                }
            }
        }
        for e in self.spatial_extents.iter().chain(&self.reduce_extents) {
            if *e == 0 {
                return Err("zero-extent axis".into());
            }
        }
        Ok(())
    }

    /// Min/max value an affine index takes over the iteration domain.
    fn index_range(&self, idx: &AffineIdx) -> (i64, i64) {
        let mut lo = idx.constant;
        let mut hi = idx.constant;
        for &(v, c) in &idx.terms {
            let extent = match v {
                VarRef::Spatial(i) => self.spatial_extents[i],
                VarRef::Reduce(i) => self.reduce_extents[i],
            } as i64;
            let (a, b) = (0, c * (extent - 1));
            lo += a.min(b);
            hi += a.max(b);
        }
        (lo, hi)
    }

    /// Evaluates the kernel on the host with the given input buffers —
    /// the reference implementation used to validate generated code.
    ///
    /// `inputs[i]` must hold the values of `tensors[i]` (output buffer
    /// content is ignored). Returns the output tensor values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` lengths do not match the tensor declarations.
    pub fn reference(&self, inputs: &[Vec<f32>]) -> Vec<f32> {
        assert_eq!(inputs.len(), self.tensors.len(), "one buffer per tensor");
        for (decl, buf) in self.tensors.iter().zip(inputs) {
            assert_eq!(buf.len(), decl.len(), "buffer size for {}", decl.name);
        }
        let out_len = self.output_decl().len();
        let mut out = vec![0.0f32; out_len];
        let mut spatial = vec![0usize; self.spatial_extents.len()];
        let mut flat = 0usize;
        loop {
            let mut acc = self.acc_init;
            let mut reduce = vec![0usize; self.reduce_extents.len()];
            loop {
                let l = self.load(&self.lhs, inputs, &spatial, &reduce);
                let r = match &self.rhs {
                    Some(r) => self.load(r, inputs, &spatial, &reduce),
                    None => 1.0,
                };
                acc = self.reduce_op.combine(acc, l * r);
                if !increment(&mut reduce, &self.reduce_extents) {
                    break;
                }
            }
            if let Some(epi) = &self.epilogue {
                if let Some(bias) = &epi.bias {
                    acc += self.load(bias, inputs, &spatial, &[]);
                }
                if epi.relu {
                    acc = acc.max(0.0);
                }
            }
            out[flat] = acc;
            flat += 1;
            if !increment(&mut spatial, &self.spatial_extents) {
                break;
            }
        }
        out
    }

    fn load(
        &self,
        acc: &OperandAccess,
        inputs: &[Vec<f32>],
        spatial: &[usize],
        reduce: &[usize],
    ) -> f32 {
        let decl = &self.tensors[acc.tensor];
        let strides = decl.strides();
        let mut off = 0i64;
        for (dim, idx) in acc.index.iter().enumerate() {
            off += idx.eval(spatial, reduce) * strides[dim] as i64;
        }
        inputs[acc.tensor][off as usize]
    }
}

/// Derives the per-tensor fill seed from an executable-level seed. Shared
/// by [`prepared_inputs`] and the executable builder so that the host
/// reference and the simulator operate on identical data.
pub fn tensor_seed(base: u64, tensor_index: usize) -> u64 {
    base.wrapping_add(tensor_index as u64)
        .wrapping_mul(0x517C_C1B7_2722_0A95)
}

/// Materializes every tensor of `def` for `seed`: inputs per their init
/// policy (seeded per-tensor), output zeroed. The returned buffers feed
/// both [`ComputeDef::reference`] and the executable builder, guaranteeing
/// host reference and simulator operate on identical data.
pub fn prepared_inputs(def: &ComputeDef, seed: u64) -> Vec<Vec<f32>> {
    def.tensors
        .iter()
        .enumerate()
        .map(|(i, decl)| {
            if i == def.output {
                vec![0.0; decl.len()]
            } else {
                decl.materialize(tensor_seed(seed, i))
            }
        })
        .collect()
}

/// Embeds `values` (shape `inner`) into a zero buffer of shape `padded`,
/// offset by `pad` on the last two dimensions.
fn embed_padded(
    padded: &[usize],
    inner: &[usize],
    pad: (usize, usize),
    values: &[f32],
) -> Vec<f32> {
    assert_eq!(padded.len(), inner.len(), "rank mismatch");
    assert!(padded.len() >= 2, "padded tensors need at least 2 dims");
    let r = padded.len();
    for d in 0..r - 2 {
        assert_eq!(padded[d], inner[d], "only last two dims may be padded");
    }
    assert_eq!(padded[r - 2], inner[r - 2] + 2 * pad.0, "height pad");
    assert_eq!(padded[r - 1], inner[r - 1] + 2 * pad.1, "width pad");
    let out_len: usize = padded.iter().product();
    let mut out = vec![0.0f32; out_len];
    let lead: usize = inner[..r - 2].iter().product();
    let (ih, iw) = (inner[r - 2], inner[r - 1]);
    let (ph, pw) = pad;
    let wp = padded[r - 1];
    let hp = padded[r - 2];
    for l in 0..lead {
        for y in 0..ih {
            let src = (l * ih + y) * iw;
            let dst = (l * hp + y + ph) * wp + pw;
            out[dst..dst + iw].copy_from_slice(&values[src..src + iw]);
        }
    }
    out
}

/// Advances a mixed-radix counter; returns false on wraparound.
fn increment(counter: &mut [usize], extents: &[usize]) -> bool {
    for i in (0..counter.len()).rev() {
        counter[i] += 1;
        if counter[i] < extents[i] {
            return true;
        }
        counter[i] = 0;
    }
    false
}

/// Deterministic pseudo-random fill for input tensors: values in
/// [-1, 1), reproducible from `seed`. Used both by the code generator
/// (tensor preparation) and the host reference.
pub fn fill_values(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_matmul() -> ComputeDef {
        // C[i,j] = Σ_k A[i,k] B[k,j], 2x3x4.
        let (n, m, l) = (2usize, 3usize, 4usize);
        ComputeDef {
            name: "matmul".into(),
            tensors: vec![
                TensorDecl::new("a", vec![n, l]),
                TensorDecl::new("b", vec![l, m]),
                TensorDecl::new("c", vec![n, m]),
            ],
            spatial_extents: vec![n, m],
            reduce_extents: vec![l],
            lhs: OperandAccess {
                tensor: 0,
                index: vec![
                    AffineIdx::var(VarRef::Spatial(0)),
                    AffineIdx::var(VarRef::Reduce(0)),
                ],
            },
            rhs: Some(OperandAccess {
                tensor: 1,
                index: vec![
                    AffineIdx::var(VarRef::Reduce(0)),
                    AffineIdx::var(VarRef::Spatial(1)),
                ],
            }),
            output: 2,
            epilogue: None,
            acc_init: 0.0,
            reduce_op: ReduceOp::Sum,
        }
    }

    #[test]
    fn affine_eval_and_coef() {
        let idx = AffineIdx::var(VarRef::Spatial(0))
            .plus(VarRef::Reduce(1), 2)
            .plus_const(3);
        assert_eq!(idx.eval(&[5], &[0, 7]), 5 + 14 + 3);
        assert_eq!(idx.coef(VarRef::Reduce(1)), 2);
        assert_eq!(idx.coef(VarRef::Spatial(9)), 0);
    }

    #[test]
    fn affine_merges_repeated_terms() {
        let idx = AffineIdx::var(VarRef::Spatial(0)).plus(VarRef::Spatial(0), 2);
        assert_eq!(idx.coef(VarRef::Spatial(0)), 3);
        let gone = AffineIdx::var(VarRef::Spatial(0)).plus(VarRef::Spatial(0), -1);
        assert!(gone.terms.is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        let t = TensorDecl::new("t", vec![2, 3, 4]);
        assert_eq!(t.strides(), vec![12, 4, 1]);
        assert_eq!(t.len(), 24);
    }

    #[test]
    fn linearize_matches_manual_strides() {
        let def = tiny_matmul();
        // A[i,k] over shape [2,4]: linear = 4*i + k.
        let lin = def.lhs.linearize(&def.tensors[0]);
        assert_eq!(lin.coef(VarRef::Spatial(0)), 4);
        assert_eq!(lin.coef(VarRef::Reduce(0)), 1);
        assert_eq!(lin.constant, 0);
    }

    #[test]
    fn reference_matmul_is_correct() {
        let def = tiny_matmul();
        // A = row-major [[1,2,3,4],[5,6,7,8]], B = identity-ish.
        let a = vec![1., 2., 3., 4., 5., 6., 7., 8.];
        // B: 4x3 with B[k][j] = 1 if k==j else 0 -> C = A's first 3 cols.
        let mut b = vec![0.0f32; 12];
        for k in 0..3 {
            b[k * 3 + k] = 1.0;
        }
        let c = def.reference(&[a, b, vec![0.0; 6]]);
        assert_eq!(c, vec![1., 2., 3., 5., 6., 7.]);
    }

    #[test]
    fn validate_catches_out_of_bounds() {
        let mut def = tiny_matmul();
        def.lhs.index[1] = AffineIdx::var(VarRef::Reduce(0)).plus_const(1); // k+1 overflows
        assert!(def.validate().is_err());
        let def = tiny_matmul();
        assert!(def.validate().is_ok());
    }

    #[test]
    fn validate_catches_shape_mismatch() {
        let mut def = tiny_matmul();
        def.spatial_extents = vec![2, 99];
        assert!(def.validate().is_err());
    }

    #[test]
    fn macs_counts_full_domain() {
        assert_eq!(tiny_matmul().macs(), 2 * 3 * 4);
    }

    #[test]
    fn fill_values_deterministic_and_bounded() {
        let a = fill_values(100, 7);
        let b = fill_values(100, 7);
        let c = fill_values(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
    }
}
