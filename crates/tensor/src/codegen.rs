//! Code generation: loop-nest IR → virtual-ISA programs.
//!
//! The generator lowers every schedule by the *same* deterministic rules,
//! so instruction-count differences between two schedules reflect real
//! structural differences (loop depth, unrolling, vectorization, register
//! pressure) rather than code-generator noise — which is what makes
//! relative comparisons across implementations meaningful for autotuning.
//!
//! Key mechanisms, mirroring what an `-O2` compiler does for such nests:
//!
//! * **Per-level address partials.** Each buffer access keeps a chain of
//!   pointer registers, one per loop level whose counter appears in its
//!   index; level `ℓ`'s pointer is `parent + 4·coef·counter`, recomputed
//!   once per iteration of loop `ℓ` — not per innermost iteration.
//! * **Unrolling folds constants.** Fully unrolled loops disappear; their
//!   contribution lands in the load/store immediate offset.
//! * **Register windows.** The reduction accumulator lives in a register
//!   across the window computed by lowering (`simtune-tensor::lower`).
//! * **Spilling.** Counters and partials are assigned registers innermost
//!   first; when the target's GPR file (16 on the x86-like target) runs
//!   out, the outermost entities live in stack slots with explicit
//!   load/store traffic — deep tiling on x86 pays real spill cost.

use crate::expr::{tensor_seed, ComputeDef, ReduceOp, TensorInit};
use crate::lower::{lower, Access, LoweredKernel, Nest, NestBody, NestLoop};
use crate::schedule::{LoopKind, Schedule, ScheduleError};
use crate::TargetIsa;
use simtune_isa::{
    BuildProgramError, Executable, Fpr, Gpr, Inst, Label, ProgramBuilder, Vr, STACK_BASE,
};
use std::error::Error;
use std::fmt;

// Reserved general-purpose registers.
const SCRATCH0: Gpr = Gpr(0);
const SCRATCH1: Gpr = Gpr(1);
const SP: Gpr = Gpr(2);
const POOL_FIRST: u8 = 3;

// Reserved float registers.
const F_ZERO: Fpr = Fpr(0);
const F_OP_A: Fpr = Fpr(1);
const F_OP_B: Fpr = Fpr(2);
const F_ACC: Fpr = Fpr(3);
const F_BIAS: Fpr = Fpr(4);
const F_TMP: Fpr = Fpr(5);

// Reserved vector registers.
const V_ACC: Vr = Vr(0);
const V_OP_A: Vr = Vr(1);
const V_OP_B: Vr = Vr(2);
const V_TMP: Vr = Vr(3);

/// Errors raised during code generation.
#[derive(Debug, Clone)]
pub enum CodegenError {
    /// The assembled program failed validation (indicates a generator bug).
    Build(BuildProgramError),
    /// A schedule constraint surfaced during lowering.
    Schedule(ScheduleError),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Build(e) => write!(f, "program assembly failed: {e}"),
            CodegenError::Schedule(e) => write!(f, "schedule rejected: {e}"),
        }
    }
}

impl Error for CodegenError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CodegenError::Build(e) => Some(e),
            CodegenError::Schedule(e) => Some(e),
        }
    }
}

impl From<BuildProgramError> for CodegenError {
    fn from(e: BuildProgramError) -> Self {
        CodegenError::Build(e)
    }
}

impl From<ScheduleError> for CodegenError {
    fn from(e: ScheduleError) -> Self {
        CodegenError::Schedule(e)
    }
}

/// Where an entity (loop counter or address partial) lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(Gpr),
    Stack(i64), // byte offset from SP
}

/// Compiles a lowered kernel into an [`Executable`] for `target`.
///
/// `seed` determines the input tensor contents (see
/// [`crate::prepared_inputs`]).
///
/// # Errors
///
/// Returns [`CodegenError::Build`] if the assembled program fails
/// validation — which indicates a bug in the generator, not bad input.
pub fn codegen(
    kernel: &LoweredKernel,
    target: &TargetIsa,
    name: &str,
    seed: u64,
) -> Result<Executable, CodegenError> {
    let mut b = ProgramBuilder::new();
    b.push(Inst::Li {
        rd: SP,
        imm: STACK_BASE as i64,
    });
    for nest in &kernel.nests {
        NestEmitter::new(&mut b, kernel, nest, target).emit()?;
    }
    b.push(Inst::Halt);
    let program = b.build()?;

    let mut exe = Executable::new(name, program, target.clone());
    for (i, buf) in kernel.buffers.iter().enumerate() {
        if matches!(buf.decl.init, TensorInit::Zeros) {
            continue; // memory reads as zero; no segment needed
        }
        exe = exe.with_segment(buf.base, buf.decl.materialize(tensor_seed(seed, i)));
    }
    Ok(exe)
}

/// Lowers and compiles in one step: the "builder" of the paper's
/// autotuning flow (Fig. 2), producing the standalone executable the
/// simulator interface runs.
///
/// # Errors
///
/// Returns [`CodegenError::Schedule`] for invalid schedules and
/// [`CodegenError::Build`] for internal assembly failures.
///
/// # Example
///
/// ```
/// use simtune_tensor::{build_executable, matmul, Schedule, TargetIsa};
///
/// let def = matmul(8, 8, 8);
/// let exe = build_executable(&def, &Schedule::default_for(&def),
///                            &TargetIsa::riscv_u74(), 42, "mm")?;
/// assert!(exe.program.len() > 10);
/// # Ok::<(), simtune_tensor::CodegenError>(())
/// ```
pub fn build_executable(
    def: &ComputeDef,
    schedule: &Schedule,
    target: &TargetIsa,
    seed: u64,
    name: &str,
) -> Result<Executable, CodegenError> {
    let kernel = lower(def, schedule, target)?;
    codegen(&kernel, target, name, seed)
}

/// Identifies an access site within a nest body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteId {
    Out,
    Lhs,
    Rhs,
    In,
    Bias,
}

struct Site<'a> {
    id: SiteId,
    access: &'a Access,
    /// Serial (extent > 1) loop levels whose counter appears in the index.
    chain: Vec<usize>,
    /// Locations: `locs[0]` = root pointer, `locs[1 + i]` = partial after
    /// applying `chain[i]`.
    locs: Vec<Loc>,
}

struct NestEmitter<'a, 'b> {
    b: &'a mut ProgramBuilder,
    kernel: &'b LoweredKernel,
    nest: &'b Nest,
    target: &'b TargetIsa,
    sites: Vec<Site<'b>>,
    counter_locs: Vec<Option<Loc>>, // per loop level; None = no counter
    /// Unrolled-instance values currently in scope: (level, value).
    unroll_env: Vec<(usize, usize)>,
    vector_leaf: Option<usize>,
}

impl<'a, 'b> NestEmitter<'a, 'b> {
    fn new(
        b: &'a mut ProgramBuilder,
        kernel: &'b LoweredKernel,
        nest: &'b Nest,
        target: &'b TargetIsa,
    ) -> Self {
        let vector_leaf = nest
            .loops
            .last()
            .filter(|l| l.kind == LoopKind::Vectorized)
            .map(|_| nest.loops.len() - 1);

        let accesses: Vec<(SiteId, &Access)> = match &nest.body {
            NestBody::InitStore { out, .. } => vec![(SiteId::Out, out)],
            NestBody::MacReduce { out, lhs, rhs, .. } => {
                let mut v = vec![(SiteId::Out, out), (SiteId::Lhs, lhs)];
                if let Some(r) = rhs {
                    v.push((SiteId::Rhs, r));
                }
                v
            }
            NestBody::Epilogue {
                out, input, bias, ..
            } => {
                let mut v = vec![(SiteId::Out, out), (SiteId::In, input)];
                if let Some(bi) = bias {
                    v.push((SiteId::Bias, bi));
                }
                v
            }
        };

        let is_chain_level = |l: usize| {
            let info: &NestLoop = &nest.loops[l];
            info.kind == LoopKind::Serial && info.extent > 1
        };
        let sites: Vec<Site> = accesses
            .into_iter()
            .map(|(id, access)| {
                let chain: Vec<usize> = access
                    .expr
                    .terms
                    .iter()
                    .map(|&(l, _)| l)
                    .filter(|&l| is_chain_level(l))
                    .collect();
                Site {
                    id,
                    access,
                    chain,
                    locs: Vec::new(),
                }
            })
            .collect();

        let mut em = NestEmitter {
            b,
            kernel,
            nest,
            target,
            sites,
            counter_locs: vec![None; nest.loops.len()],
            unroll_env: Vec::new(),
            vector_leaf,
        };
        em.allocate();
        em
    }

    /// Assigns registers (innermost first) then stack slots.
    fn allocate(&mut self) {
        // Entity list: (depth, kind, site index or level, chain position).
        // depth -1 = site roots.
        #[derive(Clone, Copy)]
        enum Ent {
            Counter(usize),        // level
            Partial(usize, usize), // site idx, chain pos
            Root(usize),           // site idx
        }
        let mut ents: Vec<(i64, Ent)> = Vec::new();
        for (l, info) in self.nest.loops.iter().enumerate() {
            if info.kind == LoopKind::Serial && info.extent > 1 {
                ents.push((l as i64, Ent::Counter(l)));
            }
        }
        for (s, site) in self.sites.iter().enumerate() {
            ents.push((-1, Ent::Root(s)));
            for (pos, &lvl) in site.chain.iter().enumerate() {
                ents.push((lvl as i64, Ent::Partial(s, pos)));
            }
        }
        // Deepest first gets registers.
        ents.sort_by_key(|&(d, _)| std::cmp::Reverse(d));

        let pool_len = self.target.gpr_count.saturating_sub(POOL_FIRST as usize);
        let mut next_reg = 0usize;
        let mut next_slot = 0i64;
        let take = |next_reg: &mut usize, next_slot: &mut i64| -> Loc {
            if *next_reg < pool_len {
                let r = Gpr(POOL_FIRST + *next_reg as u8);
                *next_reg += 1;
                Loc::Reg(r)
            } else {
                let s = Loc::Stack(*next_slot);
                *next_slot += 8;
                s
            }
        };

        // Pre-size site loc vectors: locs[0] root, then per chain level.
        for site in &mut self.sites {
            site.locs = vec![Loc::Stack(0); site.chain.len() + 1];
        }
        for (_, ent) in ents {
            let loc = take(&mut next_reg, &mut next_slot);
            match ent {
                Ent::Counter(l) => self.counter_locs[l] = Some(loc),
                Ent::Root(s) => self.sites[s].locs[0] = loc,
                Ent::Partial(s, pos) => self.sites[s].locs[pos + 1] = loc,
            }
        }
    }

    fn emit(mut self) -> Result<(), CodegenError> {
        // Nest prologue: constants + root pointers.
        match &self.nest.body {
            NestBody::InitStore { value, .. } => {
                self.b.push(Inst::Fli {
                    fd: F_ZERO,
                    imm: *value,
                });
            }
            NestBody::Epilogue { .. } => {
                self.b.push(Inst::Fli {
                    fd: F_ZERO,
                    imm: 0.0,
                });
            }
            NestBody::MacReduce { .. } => {}
        }
        for s in 0..self.sites.len() {
            let base = self.kernel.buffers[self.sites[s].access.buffer].base as i64;
            let root_val = base + 4 * self.sites[s].access.expr.constant;
            let loc = self.sites[s].locs[0];
            match loc {
                Loc::Reg(r) => {
                    self.b.push(Inst::Li {
                        rd: r,
                        imm: root_val,
                    });
                }
                Loc::Stack(off) => {
                    self.b.push(Inst::Li {
                        rd: SCRATCH0,
                        imm: root_val,
                    });
                    self.b.push(Inst::Sd {
                        rval: SCRATCH0,
                        rs: SP,
                        imm: off,
                    });
                }
            }
        }
        self.emit_level(0);
        Ok(())
    }

    fn window_entry(&self) -> Option<usize> {
        match &self.nest.body {
            NestBody::MacReduce { window_entry, .. } => Some(*window_entry),
            _ => None,
        }
    }

    fn emit_level(&mut self, level: usize) {
        if self.window_entry() == Some(level) {
            self.emit_acc_init();
        }
        if level == self.nest.loops.len() {
            self.emit_leaf();
        } else {
            let info = self.nest.loops[level];
            let effective_kind = if info.kind == LoopKind::Serial && info.extent == 1 {
                // Trivial loops are folded like single-instance unrolls.
                LoopKind::Unrolled
            } else {
                info.kind
            };
            match effective_kind {
                LoopKind::Serial => self.emit_serial(level, info.extent),
                LoopKind::Unrolled => {
                    for val in 0..info.extent {
                        self.unroll_env.push((level, val));
                        self.emit_level(level + 1);
                        self.unroll_env.pop();
                    }
                }
                LoopKind::Vectorized => {
                    // Handled by the leaf; just descend.
                    self.emit_level(level + 1);
                }
            }
        }
        if self.window_entry() == Some(level) {
            self.emit_acc_store();
        }
    }

    fn emit_serial(&mut self, level: usize, extent: usize) {
        let cnt = self.counter_locs[level].expect("serial loop has a counter");
        // counter = 0
        match cnt {
            Loc::Reg(r) => {
                self.b.push(Inst::Li { rd: r, imm: 0 });
            }
            Loc::Stack(off) => {
                self.b.push(Inst::Li {
                    rd: SCRATCH0,
                    imm: 0,
                });
                self.b.push(Inst::Sd {
                    rval: SCRATCH0,
                    rs: SP,
                    imm: off,
                });
            }
        }
        let top: Label = self.b.bind_new_label();

        // Address partial updates for sites indexed by this level.
        for s in 0..self.sites.len() {
            let Some(pos) = self.sites[s].chain.iter().position(|&l| l == level) else {
                continue;
            };
            let coef = self.sites[s].access.expr.coef(level);
            let parent = if pos == 0 {
                self.sites[s].locs[0]
            } else {
                self.sites[s].locs[pos]
            };
            let dest = self.sites[s].locs[pos + 1];
            // parent pointer -> register
            let parent_reg = self.read_to(parent, SCRATCH0);
            // counter -> register
            let cnt_reg = self.read_to(cnt, SCRATCH1);
            // scratch1 = counter * 4*coef ; dest = parent + scratch1
            self.b.push(Inst::Muli {
                rd: SCRATCH1,
                rs: cnt_reg,
                imm: 4 * coef,
            });
            match dest {
                Loc::Reg(r) => {
                    self.b.push(Inst::Add {
                        rd: r,
                        rs1: parent_reg,
                        rs2: SCRATCH1,
                    });
                }
                Loc::Stack(off) => {
                    self.b.push(Inst::Add {
                        rd: SCRATCH1,
                        rs1: parent_reg,
                        rs2: SCRATCH1,
                    });
                    self.b.push(Inst::Sd {
                        rval: SCRATCH1,
                        rs: SP,
                        imm: off,
                    });
                }
            }
        }

        self.emit_level(level + 1);

        // Latch: counter += 1; if counter < extent goto top.
        match cnt {
            Loc::Reg(r) => {
                self.b.push(Inst::Addi {
                    rd: r,
                    rs: r,
                    imm: 1,
                });
                self.b.push(Inst::Li {
                    rd: SCRATCH0,
                    imm: extent as i64,
                });
                self.b.branch_lt(r, SCRATCH0, top);
            }
            Loc::Stack(off) => {
                self.b.push(Inst::Ld {
                    rd: SCRATCH0,
                    rs: SP,
                    imm: off,
                });
                self.b.push(Inst::Addi {
                    rd: SCRATCH0,
                    rs: SCRATCH0,
                    imm: 1,
                });
                self.b.push(Inst::Sd {
                    rval: SCRATCH0,
                    rs: SP,
                    imm: off,
                });
                self.b.push(Inst::Li {
                    rd: SCRATCH1,
                    imm: extent as i64,
                });
                self.b.branch_lt(SCRATCH0, SCRATCH1, top);
            }
        }
    }

    /// Reads a location into a register (pass-through for `Loc::Reg`).
    fn read_to(&mut self, loc: Loc, scratch: Gpr) -> Gpr {
        match loc {
            Loc::Reg(r) => r,
            Loc::Stack(off) => {
                self.b.push(Inst::Ld {
                    rd: scratch,
                    rs: SP,
                    imm: off,
                });
                scratch
            }
        }
    }

    /// Pointer register for `site` valid at loop `level` (exclusive of
    /// deeper levels), plus the immediate byte offset contributed by
    /// enclosing unrolled instances.
    fn pointer_at(&mut self, site_idx: usize, level: usize, scratch: Gpr) -> (Gpr, i64) {
        let site = &self.sites[site_idx];
        let pos = site
            .chain
            .iter()
            .rposition(|&l| l < level)
            .map(|p| p + 1)
            .unwrap_or(0);
        let loc = site.locs[pos];
        let imm = self.unrolled_imm(site_idx);
        (self.read_to(loc, scratch), imm)
    }

    /// Immediate byte offset from unrolled instances in scope.
    fn unrolled_imm(&self, site_idx: usize) -> i64 {
        let expr = &self.sites[site_idx].access.expr;
        4 * self
            .unroll_env
            .iter()
            .map(|&(l, v)| expr.coef(l) * v as i64)
            .sum::<i64>()
    }

    fn site_index(&self, id: SiteId) -> usize {
        self.sites
            .iter()
            .position(|s| s.id == id)
            .expect("site exists for body kind")
    }

    fn is_vector_body(&self) -> bool {
        self.vector_leaf.is_some()
    }

    fn emit_acc_init(&mut self) {
        let NestBody::MacReduce {
            acc_init,
            window_entry,
            ..
        } = &self.nest.body
        else {
            return;
        };
        let (acc_init, window_entry) = (*acc_init, *window_entry);
        match acc_init {
            Some(v) => {
                if self.is_vector_body() {
                    self.b.push(Inst::Vsplat { vd: V_ACC, imm: v });
                } else {
                    self.b.push(Inst::Fli { fd: F_ACC, imm: v });
                }
            }
            None => {
                let out = self.site_index(SiteId::Out);
                let (ptr, imm) = self.pointer_at(out, window_entry, SCRATCH0);
                if self.is_vector_body() {
                    self.b.push(Inst::Vload {
                        vd: V_ACC,
                        rs: ptr,
                        imm,
                    });
                } else {
                    self.b.push(Inst::Flw {
                        fd: F_ACC,
                        rs: ptr,
                        imm,
                    });
                }
            }
        }
    }

    fn emit_acc_store(&mut self) {
        let NestBody::MacReduce { window_entry, .. } = &self.nest.body else {
            return;
        };
        let window_entry = *window_entry;
        let out = self.site_index(SiteId::Out);
        let (ptr, imm) = self.pointer_at(out, window_entry, SCRATCH0);
        if self.is_vector_body() {
            self.b.push(Inst::Vstore {
                vval: V_ACC,
                rs: ptr,
                imm,
            });
        } else {
            self.b.push(Inst::Fsw {
                fval: F_ACC,
                rs: ptr,
                imm,
            });
        }
    }

    fn emit_leaf(&mut self) {
        let n = self.nest.loops.len();
        match &self.nest.body {
            NestBody::InitStore { .. } => {
                let out = self.site_index(SiteId::Out);
                let (ptr, imm) = self.pointer_at(out, n, SCRATCH0);
                self.b.push(Inst::Fsw {
                    fval: F_ZERO,
                    rs: ptr,
                    imm,
                });
            }
            NestBody::Epilogue { bias, relu, .. } => {
                let relu = *relu;
                let has_bias = bias.is_some();
                let input = self.site_index(SiteId::In);
                let (iptr, iimm) = self.pointer_at(input, n, SCRATCH0);
                self.b.push(Inst::Flw {
                    fd: F_OP_A,
                    rs: iptr,
                    imm: iimm,
                });
                if has_bias {
                    let bsite = self.site_index(SiteId::Bias);
                    let (bptr, bimm) = self.pointer_at(bsite, n, SCRATCH0);
                    self.b.push(Inst::Flw {
                        fd: F_BIAS,
                        rs: bptr,
                        imm: bimm,
                    });
                    self.b.push(Inst::Fadd {
                        fd: F_TMP,
                        fs1: F_OP_A,
                        fs2: F_BIAS,
                    });
                } else {
                    self.b.push(Inst::Fadd {
                        fd: F_TMP,
                        fs1: F_OP_A,
                        fs2: F_ZERO,
                    });
                }
                if relu {
                    self.b.push(Inst::Fmax {
                        fd: F_TMP,
                        fs1: F_TMP,
                        fs2: F_ZERO,
                    });
                }
                let out = self.site_index(SiteId::Out);
                let (optr, oimm) = self.pointer_at(out, n, SCRATCH0);
                self.b.push(Inst::Fsw {
                    fval: F_TMP,
                    rs: optr,
                    imm: oimm,
                });
            }
            NestBody::MacReduce { rhs, reduce_op, .. } => {
                let has_rhs = rhs.is_some();
                let op = *reduce_op;
                if let Some(vlevel) = self.vector_leaf {
                    self.emit_vector_mac(vlevel, has_rhs, op);
                } else {
                    let lhs = self.site_index(SiteId::Lhs);
                    let (lptr, limm) = self.pointer_at(lhs, n, SCRATCH0);
                    self.b.push(Inst::Flw {
                        fd: F_OP_A,
                        rs: lptr,
                        imm: limm,
                    });
                    let value = if has_rhs {
                        let rsite = self.site_index(SiteId::Rhs);
                        let (rptr, rimm) = self.pointer_at(rsite, n, SCRATCH0);
                        self.b.push(Inst::Flw {
                            fd: F_OP_B,
                            rs: rptr,
                            imm: rimm,
                        });
                        if op == ReduceOp::Sum {
                            // Fused multiply-add straight into the window.
                            self.b.push(Inst::Fmadd {
                                fd: F_ACC,
                                fs1: F_OP_A,
                                fs2: F_OP_B,
                                fs3: F_ACC,
                            });
                            return;
                        }
                        self.b.push(Inst::Fmul {
                            fd: F_TMP,
                            fs1: F_OP_A,
                            fs2: F_OP_B,
                        });
                        F_TMP
                    } else {
                        F_OP_A
                    };
                    match op {
                        ReduceOp::Sum => self.b.push(Inst::Fadd {
                            fd: F_ACC,
                            fs1: F_ACC,
                            fs2: value,
                        }),
                        ReduceOp::Max => self.b.push(Inst::Fmax {
                            fd: F_ACC,
                            fs1: F_ACC,
                            fs2: value,
                        }),
                    };
                }
            }
        }
    }

    /// Vector MAC leaf: operand load strategy depends on each operand's
    /// stride along the vectorized loop.
    fn emit_vector_mac(&mut self, vlevel: usize, has_rhs: bool, op: ReduceOp) {
        let lanes = self.target.vector_lanes;
        let lhs = self.site_index(SiteId::Lhs);
        self.emit_vector_operand(lhs, vlevel, V_OP_A, lanes);
        let value = if has_rhs {
            let rsite = self.site_index(SiteId::Rhs);
            self.emit_vector_operand(rsite, vlevel, V_OP_B, lanes);
            if op == ReduceOp::Sum {
                self.b.push(Inst::Vfma {
                    vd: V_ACC,
                    vs1: V_OP_A,
                    vs2: V_OP_B,
                });
                return;
            }
            self.b.push(Inst::Vfmul {
                vd: V_TMP,
                vs1: V_OP_A,
                vs2: V_OP_B,
            });
            V_TMP
        } else {
            V_OP_A
        };
        match op {
            ReduceOp::Sum => self.b.push(Inst::Vfadd {
                vd: V_ACC,
                vs1: V_ACC,
                vs2: value,
            }),
            ReduceOp::Max => self.b.push(Inst::Vfmax {
                vd: V_ACC,
                vs1: V_ACC,
                vs2: value,
            }),
        };
    }

    fn emit_vector_operand(&mut self, site_idx: usize, vlevel: usize, dst: Vr, lanes: usize) {
        let coef = self.sites[site_idx].access.expr.coef(vlevel);
        let n = self.nest.loops.len();
        match coef {
            0 => {
                // Invariant along the vector: scalar load + broadcast.
                let (ptr, imm) = self.pointer_at(site_idx, n, SCRATCH0);
                self.b.push(Inst::Flw {
                    fd: F_OP_A,
                    rs: ptr,
                    imm,
                });
                self.b.push(Inst::Vbcast {
                    vd: dst,
                    fs: F_OP_A,
                });
            }
            1 => {
                // Unit stride: one vector load.
                let (ptr, imm) = self.pointer_at(site_idx, n, SCRATCH0);
                self.b.push(Inst::Vload {
                    vd: dst,
                    rs: ptr,
                    imm,
                });
            }
            c => {
                // Strided gather: one scalar load + insert per lane (what
                // compilers emit for non-unit-stride vector operands, e.g.
                // stride-2 convolution inputs).
                for lane in 0..lanes {
                    let (ptr, imm) = self.pointer_at(site_idx, n, SCRATCH0);
                    self.b.push(Inst::Flw {
                        fd: F_OP_A,
                        rs: ptr,
                        imm: imm + 4 * c * lane as i64,
                    });
                    self.b.push(Inst::Vinsert {
                        vd: dst,
                        fs: F_OP_A,
                        lane: lane as u8,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::matmul;

    #[test]
    fn build_executable_produces_runnable_code() {
        let def = matmul(4, 4, 4);
        let exe = build_executable(
            &def,
            &Schedule::default_for(&def),
            &TargetIsa::riscv_u74(),
            1,
            "mm",
        )
        .unwrap();
        assert_eq!(exe.target.name, "riscv");
        // Two input segments (a, b); the zeroed output needs none.
        assert_eq!(exe.data_segments.len(), 2);
    }

    #[test]
    fn invalid_schedule_surfaces_as_schedule_error() {
        let def = matmul(4, 4, 4);
        let mut s = Schedule::default_for(&def);
        s.order.pop();
        let err = build_executable(&def, &s, &TargetIsa::riscv_u74(), 1, "mm");
        assert!(matches!(err, Err(CodegenError::Schedule(_))));
    }

    #[test]
    fn error_display_mentions_cause() {
        let def = matmul(4, 4, 4);
        let mut s = Schedule::default_for(&def);
        s.order.pop();
        let err = build_executable(&def, &s, &TargetIsa::riscv_u74(), 1, "mm").unwrap_err();
        assert!(err.to_string().contains("schedule rejected"));
    }
}
