//! Auto-Scheduler-style sketch generation and random annotation.
//!
//! TVM's Auto-Scheduler (Ansor, paper Section II-A) derives *sketches* —
//! skeleton loop structures — from the kernel's DAG by rule application,
//! then fills their placeholders in a random *annotation* phase (tile
//! sizes, unroll, vectorize) and evolves the population. This module
//! provides the equivalent machinery for this crate's kernels without
//! manual templates:
//!
//! * [`SketchParams`] is the genotype: per-variable tiling factors, an
//!   interleaving pattern, and annotation flags.
//! * [`SketchGenerator::random`] samples a valid genotype; structural
//!   validity (dividing factors, lane-exact vector tiles) holds by
//!   construction.
//! * [`SketchGenerator::mutate`] perturbs one aspect — the evolutionary
//!   search neighborhood.
//! * [`SketchGenerator::schedule`] materializes a genotype into a
//!   [`Schedule`].

use crate::expr::{ComputeDef, VarRef};
use crate::schedule::{Schedule, Split, SubVar, MAX_UNROLL};
use crate::TargetIsa;
use rand::Rng;

/// Structural interleaving of spatial and reduction pieces, from
/// register-friendliest to deliberately poor (the search space must
/// contain bad programs for the tuner to learn from).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SketchPattern {
    /// All spatial pieces outer, full reduction innermost.
    ReduceInner,
    /// Outer reduction pieces between the spatial tiles.
    ReduceBlocked,
    /// Reduction pieces above the innermost spatial pieces.
    SpatialInner,
}

impl SketchPattern {
    /// All patterns, in preference order.
    pub fn all() -> [SketchPattern; 3] {
        [
            SketchPattern::ReduceInner,
            SketchPattern::ReduceBlocked,
            SketchPattern::SpatialInner,
        ]
    }
}

/// Tunable rules for the generator.
#[derive(Debug, Clone)]
pub struct SketchRules {
    /// Maximum candidate inner-tile size per spatial variable.
    pub max_spatial_tile: usize,
    /// Maximum candidate inner-tile size per reduction variable.
    pub max_reduce_tile: usize,
    /// Probability of annotating an eligible loop with `unroll`.
    pub unroll_prob: f64,
    /// Probability of vectorizing when the tile admits it.
    pub vectorize_prob: f64,
}

impl Default for SketchRules {
    fn default() -> Self {
        SketchRules {
            max_spatial_tile: 32,
            max_reduce_tile: 16,
            unroll_prob: 0.5,
            vectorize_prob: 0.6,
        }
    }
}

/// The annotation genotype produced and evolved by the generator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SketchParams {
    /// Inner tile size per spatial variable (1 = unsplit).
    pub spatial_tiles: Vec<usize>,
    /// Inner tile size per reduction variable (1 = unsplit).
    pub reduce_tiles: Vec<usize>,
    /// Loop interleaving pattern.
    pub pattern: SketchPattern,
    /// Vectorize the innermost spatial dimension (lane-exact tile added).
    pub vectorize: bool,
    /// Unroll the innermost reduction piece.
    pub unroll_reduce: bool,
    /// Unroll the innermost spatial piece (when small enough).
    pub unroll_spatial: bool,
}

/// Sketch-and-annotation generator for one kernel on one target.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use simtune_tensor::{matmul, SketchGenerator, TargetIsa};
///
/// let def = matmul(16, 16, 16);
/// let gen = SketchGenerator::new(&def, TargetIsa::arm_cortex_a72());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let params = gen.random(&mut rng);
/// let schedule = gen.schedule(&params);
/// schedule.apply(&def, &TargetIsa::arm_cortex_a72()).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct SketchGenerator {
    spatial_extents: Vec<usize>,
    reduce_extents: Vec<usize>,
    target: TargetIsa,
    rules: SketchRules,
}

impl SketchGenerator {
    /// Creates a generator with default rules.
    pub fn new(def: &ComputeDef, target: TargetIsa) -> Self {
        Self::with_rules(def, target, SketchRules::default())
    }

    /// Creates a generator with explicit rules.
    pub fn with_rules(def: &ComputeDef, target: TargetIsa, rules: SketchRules) -> Self {
        SketchGenerator {
            spatial_extents: def.spatial_extents.clone(),
            reduce_extents: def.reduce_extents.clone(),
            target,
            rules,
        }
    }

    /// The target this generator annotates for.
    pub fn target(&self) -> &TargetIsa {
        &self.target
    }

    /// Extents of the kernel's spatial variables, in variable order.
    pub fn spatial_extents(&self) -> &[usize] {
        &self.spatial_extents
    }

    /// Extents of the kernel's reduction variables, in variable order.
    pub fn reduce_extents(&self) -> &[usize] {
        &self.reduce_extents
    }

    /// The rules this generator samples under.
    pub fn rules(&self) -> &SketchRules {
        &self.rules
    }

    /// Normalizes an externally constructed genotype into the valid
    /// region: clears `vectorize` when the innermost tile is not
    /// lane-exact and drops unroll flags whose effective trip count
    /// exceeds [`MAX_UNROLL`] — the same clamping every sampled, mutated
    /// or crossed-over genotype goes through. Enumerative searches use
    /// this to project lattice points into the space the random sampler
    /// draws from.
    pub fn canonicalize(&self, p: &mut SketchParams) {
        self.clamp(p);
    }

    /// True when `p` lies inside this generator's search space: every
    /// tile divides its extent and respects the rule caps, and the
    /// annotation flags survive [`SketchGenerator::canonicalize`]
    /// unchanged.
    pub fn contains(&self, p: &SketchParams) -> bool {
        if p.spatial_tiles.len() != self.spatial_extents.len()
            || p.reduce_tiles.len() != self.reduce_extents.len()
        {
            return false;
        }
        let tiles_ok = |tiles: &[usize], extents: &[usize], cap: usize| {
            tiles
                .iter()
                .zip(extents)
                .all(|(&t, &e)| t >= 1 && t <= cap && e.is_multiple_of(t))
        };
        if !tiles_ok(
            &p.spatial_tiles,
            &self.spatial_extents,
            self.rules.max_spatial_tile,
        ) || !tiles_ok(
            &p.reduce_tiles,
            &self.reduce_extents,
            self.rules.max_reduce_tile,
        ) {
            return false;
        }
        let mut canonical = p.clone();
        self.clamp(&mut canonical);
        canonical == *p
    }

    /// Samples a random valid genotype.
    pub fn random<R: Rng>(&self, rng: &mut R) -> SketchParams {
        let spatial_tiles: Vec<usize> = self
            .spatial_extents
            .iter()
            .map(|&e| pick_divisor(e, self.rules.max_spatial_tile, rng))
            .collect();
        let reduce_tiles: Vec<usize> = self
            .reduce_extents
            .iter()
            .map(|&e| pick_divisor(e, self.rules.max_reduce_tile, rng))
            .collect();
        let pattern = match rng.gen_range(0..10) {
            0..=4 => SketchPattern::ReduceInner,
            5..=7 => SketchPattern::ReduceBlocked,
            _ => SketchPattern::SpatialInner,
        };
        let mut p = SketchParams {
            spatial_tiles,
            reduce_tiles,
            pattern,
            vectorize: false,
            unroll_reduce: rng.gen_bool(self.rules.unroll_prob),
            unroll_spatial: rng.gen_bool(self.rules.unroll_prob * 0.5),
        };
        if self.vectorizable(&p) && rng.gen_bool(self.rules.vectorize_prob) {
            p.vectorize = true;
        }
        self.clamp(&mut p);
        p
    }

    /// Perturbs one aspect of a genotype (tile size, pattern or a flag).
    pub fn mutate<R: Rng>(&self, params: &SketchParams, rng: &mut R) -> SketchParams {
        let mut p = params.clone();
        match rng.gen_range(0..5) {
            0 => {
                let i = rng.gen_range(0..p.spatial_tiles.len());
                p.spatial_tiles[i] =
                    pick_divisor(self.spatial_extents[i], self.rules.max_spatial_tile, rng);
            }
            1 => {
                if !p.reduce_tiles.is_empty() {
                    let i = rng.gen_range(0..p.reduce_tiles.len());
                    p.reduce_tiles[i] =
                        pick_divisor(self.reduce_extents[i], self.rules.max_reduce_tile, rng);
                }
            }
            2 => {
                let all = SketchPattern::all();
                p.pattern = all[rng.gen_range(0..all.len())];
            }
            3 => p.unroll_reduce = !p.unroll_reduce,
            _ => {
                p.vectorize = !p.vectorize && self.vectorizable(&p);
            }
        }
        self.clamp(&mut p);
        p
    }

    /// Crossover: take each gene from one of the two parents.
    pub fn crossover<R: Rng>(
        &self,
        a: &SketchParams,
        b: &SketchParams,
        rng: &mut R,
    ) -> SketchParams {
        let mut p = SketchParams {
            spatial_tiles: a
                .spatial_tiles
                .iter()
                .zip(&b.spatial_tiles)
                .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
                .collect(),
            reduce_tiles: a
                .reduce_tiles
                .iter()
                .zip(&b.reduce_tiles)
                .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
                .collect(),
            pattern: if rng.gen_bool(0.5) {
                a.pattern
            } else {
                b.pattern
            },
            vectorize: if rng.gen_bool(0.5) {
                a.vectorize
            } else {
                b.vectorize
            },
            unroll_reduce: if rng.gen_bool(0.5) {
                a.unroll_reduce
            } else {
                b.unroll_reduce
            },
            unroll_spatial: if rng.gen_bool(0.5) {
                a.unroll_spatial
            } else {
                b.unroll_spatial
            },
        };
        if p.vectorize && !self.vectorizable(&p) {
            p.vectorize = false;
        }
        self.clamp(&mut p);
        p
    }

    /// True when the innermost spatial tile admits a lane-exact vector
    /// piece on this target.
    fn vectorizable(&self, p: &SketchParams) -> bool {
        if !self.target.has_vectors() {
            return false;
        }
        let last = p.spatial_tiles.len() - 1;
        p.spatial_tiles[last].is_multiple_of(self.target.vector_lanes)
            && p.spatial_tiles[last] >= self.target.vector_lanes
    }

    /// Keeps unroll flags within [`MAX_UNROLL`] after tile changes.
    fn clamp(&self, p: &mut SketchParams) {
        if p.vectorize && !self.vectorizable(p) {
            p.vectorize = false;
        }
        if p.unroll_reduce {
            let last_tile = p.reduce_tiles.last().copied().unwrap_or(1);
            let eff = if last_tile > 1 {
                last_tile
            } else {
                // Unsplit: unrolling applies to the whole innermost
                // reduce var.
                self.reduce_extents.last().copied().unwrap_or(1)
            };
            if eff > MAX_UNROLL {
                p.unroll_reduce = false;
            }
        }
        if p.unroll_spatial {
            let last = p.spatial_tiles.len() - 1;
            let eff = if p.vectorize {
                p.spatial_tiles[last] / self.target.vector_lanes
            } else {
                p.spatial_tiles[last]
            };
            if eff == 0 || eff > 8 {
                p.unroll_spatial = false;
            }
        }
    }

    /// Materializes a genotype into a schedule.
    pub fn schedule(&self, p: &SketchParams) -> Schedule {
        let lanes = self.target.vector_lanes;
        let mut splits = Vec::new();
        let mut outer_sp = Vec::new(); // piece 0 of each spatial var
        let mut inner_sp = Vec::new(); // inner pieces of spatial vars
        let mut vector_piece = None;

        for (i, (&extent, &tile)) in self
            .spatial_extents
            .iter()
            .zip(&p.spatial_tiles)
            .enumerate()
        {
            let var = VarRef::Spatial(i);
            let last = i == p.spatial_tiles.len() - 1;
            if p.vectorize && last {
                // tile = mid * lanes: pieces [extent/tile, tile/lanes, lanes].
                splits.push(Split {
                    var,
                    factors: vec![tile / lanes, lanes],
                });
                outer_sp.push(SubVar { var, piece: 0 });
                inner_sp.push(SubVar { var, piece: 1 });
                vector_piece = Some(SubVar { var, piece: 2 });
            } else if tile > 1 && tile < extent {
                splits.push(Split {
                    var,
                    factors: vec![tile],
                });
                outer_sp.push(SubVar { var, piece: 0 });
                inner_sp.push(SubVar { var, piece: 1 });
            } else {
                // Unsplit (tile 1 or tile == extent): single piece. Treat
                // tile == extent as "whole var inner".
                if tile == extent && tile > 1 {
                    inner_sp.push(SubVar::whole(var));
                } else {
                    outer_sp.push(SubVar::whole(var));
                }
            }
        }

        let mut outer_rd = Vec::new();
        let mut inner_rd = Vec::new();
        for (i, (&extent, &tile)) in self.reduce_extents.iter().zip(&p.reduce_tiles).enumerate() {
            let var = VarRef::Reduce(i);
            if tile > 1 && tile < extent {
                splits.push(Split {
                    var,
                    factors: vec![tile],
                });
                outer_rd.push(SubVar { var, piece: 0 });
                inner_rd.push(SubVar { var, piece: 1 });
            } else {
                inner_rd.push(SubVar::whole(var));
            }
        }

        let mut order = Vec::new();
        match p.pattern {
            SketchPattern::ReduceInner => {
                order.extend(&outer_sp);
                order.extend(&inner_sp);
                order.extend(&outer_rd);
                order.extend(&inner_rd);
            }
            SketchPattern::ReduceBlocked => {
                order.extend(&outer_sp);
                order.extend(&outer_rd);
                order.extend(&inner_sp);
                order.extend(&inner_rd);
            }
            SketchPattern::SpatialInner => {
                order.extend(&outer_sp);
                order.extend(&outer_rd);
                order.extend(&inner_rd);
                order.extend(&inner_sp);
            }
        }
        if let Some(v) = vector_piece {
            order.push(v);
        }

        let mut unroll = Vec::new();
        if p.unroll_reduce {
            if let Some(last) = inner_rd.last() {
                unroll.push(*last);
            }
        }
        if p.unroll_spatial {
            if let Some(last) = inner_sp.last() {
                unroll.push(*last);
            }
        }

        Schedule {
            splits,
            order,
            unroll,
            vectorize: vector_piece,
            parallel: None,
        }
    }
}

/// Uniformly picks a divisor of `n` that is at most `cap`.
fn pick_divisor<R: Rng>(n: usize, cap: usize, rng: &mut R) -> usize {
    let divs: Vec<usize> = (1..=n.min(cap)).filter(|d| n.is_multiple_of(*d)).collect();
    divs[rng.gen_range(0..divs.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{conv2d_bias_relu, matmul, Conv2dShape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn conv_def() -> ComputeDef {
        conv2d_bias_relu(&Conv2dShape {
            n: 1,
            h: 12,
            w: 16,
            co: 8,
            ci: 4,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            pad: (1, 1),
        })
    }

    #[test]
    fn random_sketches_always_apply() {
        for target in TargetIsa::paper_targets() {
            let def = conv_def();
            let gen = SketchGenerator::new(&def, target.clone());
            let mut rng = StdRng::seed_from_u64(17);
            for i in 0..200 {
                let p = gen.random(&mut rng);
                let s = gen.schedule(&p);
                s.apply(&def, &target)
                    .unwrap_or_else(|e| panic!("sketch {i} invalid on {}: {e}", target.name));
            }
        }
    }

    #[test]
    fn mutations_preserve_validity() {
        let def = conv_def();
        let target = TargetIsa::x86_ryzen_5800x();
        let gen = SketchGenerator::new(&def, target.clone());
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = gen.random(&mut rng);
        for i in 0..300 {
            p = gen.mutate(&p, &mut rng);
            let s = gen.schedule(&p);
            s.apply(&def, &target)
                .unwrap_or_else(|e| panic!("mutation {i} invalid: {e}"));
        }
    }

    #[test]
    fn crossover_preserves_validity() {
        let def = matmul(16, 24, 32);
        let target = TargetIsa::arm_cortex_a72();
        let gen = SketchGenerator::new(&def, target.clone());
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..100 {
            let a = gen.random(&mut rng);
            let b = gen.random(&mut rng);
            let c = gen.crossover(&a, &b, &mut rng);
            gen.schedule(&c).apply(&def, &target).expect("valid child");
        }
    }

    #[test]
    fn scalar_target_never_vectorizes() {
        let def = conv_def();
        let gen = SketchGenerator::new(&def, TargetIsa::riscv_u74());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!gen.random(&mut rng).vectorize);
        }
    }

    #[test]
    fn sketches_are_diverse() {
        let def = conv_def();
        let gen = SketchGenerator::new(&def, TargetIsa::x86_ryzen_5800x());
        let mut rng = StdRng::seed_from_u64(9);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..100 {
            distinct.insert(format!("{:?}", gen.random(&mut rng)));
        }
        assert!(
            distinct.len() > 50,
            "only {} distinct sketches",
            distinct.len()
        );
    }

    #[test]
    fn sampled_genotypes_are_contained_and_canonical() {
        let def = conv_def();
        for target in TargetIsa::paper_targets() {
            let gen = SketchGenerator::new(&def, target);
            let mut rng = StdRng::seed_from_u64(31);
            for _ in 0..100 {
                let p = gen.random(&mut rng);
                assert!(gen.contains(&p), "sampled genotype outside space: {p:?}");
                let mut c = p.clone();
                gen.canonicalize(&mut c);
                assert_eq!(c, p, "sampled genotype must already be canonical");
            }
        }
    }

    #[test]
    fn contains_rejects_invalid_genotypes() {
        let def = conv_def();
        let gen = SketchGenerator::new(&def, TargetIsa::x86_ryzen_5800x());
        let mut rng = StdRng::seed_from_u64(4);
        let valid = gen.random(&mut rng);

        let mut bad_tile = valid.clone();
        bad_tile.spatial_tiles[0] = 7; // no extent here is divisible by 7
        assert!(!gen.contains(&bad_tile));

        let mut bad_arity = valid.clone();
        bad_arity.reduce_tiles.pop();
        assert!(!gen.contains(&bad_arity));

        // Vectorize on a scalar target is outside the space.
        let scalar = SketchGenerator::new(&def, TargetIsa::riscv_u74());
        let mut vec_on_scalar = scalar.random(&mut rng);
        vec_on_scalar.vectorize = true;
        assert!(!scalar.contains(&vec_on_scalar));
    }

    #[test]
    fn pick_divisor_respects_cap_and_divides() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = pick_divisor(24, 8, &mut rng);
            assert!(d <= 8 && 24 % d == 0);
        }
    }
}
