//! End-to-end correctness: every schedule a search space or sketch
//! generator produces must compute the same function as the host
//! reference, on every target, through lowering, code generation and
//! instruction-accurate simulation.
//!
//! This is the load-bearing guarantee of the whole reproduction: the
//! autotuner compares *implementations*, so all implementations must be
//! implementations *of the kernel*.

use rand::rngs::StdRng;
use rand::SeedableRng;
use simtune_cache::HierarchyConfig;
use simtune_tensor::{
    conv2d_bias_relu, depthwise_conv2d_bias_relu, matmul, validate_schedule, ConfigSpace,
    Conv2dShape, Schedule, SketchGenerator, TargetIsa, DEFAULT_TOLERANCE,
};

fn small_conv() -> Conv2dShape {
    Conv2dShape {
        n: 1,
        h: 10,
        w: 16,
        co: 8,
        ci: 4,
        kh: 3,
        kw: 3,
        stride: (1, 1),
        pad: (1, 1),
    }
}

fn strided_conv() -> Conv2dShape {
    Conv2dShape {
        n: 1,
        h: 9,
        w: 17,
        co: 4,
        ci: 3,
        kh: 3,
        kw: 3,
        stride: (2, 2),
        pad: (1, 1),
    }
}

fn hierarchy() -> HierarchyConfig {
    HierarchyConfig::tiny_for_tests()
}

#[test]
fn default_schedules_correct_on_all_targets() {
    let defs = vec![
        conv2d_bias_relu(&small_conv()),
        conv2d_bias_relu(&strided_conv()),
        depthwise_conv2d_bias_relu(&Conv2dShape {
            n: 1,
            h: 8,
            w: 8,
            co: 6,
            ci: 6,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            pad: (1, 1),
        }),
        matmul(7, 9, 11),
    ];
    for target in TargetIsa::paper_targets() {
        for def in &defs {
            validate_schedule(
                def,
                &Schedule::default_for(def),
                &target,
                &hierarchy(),
                42,
                DEFAULT_TOLERANCE,
            )
            .unwrap_or_else(|e| panic!("{} default on {}: {e}", def.name, target.name));
        }
    }
}

#[test]
fn random_sketches_correct_on_all_targets() {
    let def = conv2d_bias_relu(&small_conv());
    for target in TargetIsa::paper_targets() {
        let gen = SketchGenerator::new(&def, target.clone());
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for i in 0..20 {
            let params = gen.random(&mut rng);
            let schedule = gen.schedule(&params);
            validate_schedule(&def, &schedule, &target, &hierarchy(), 7, DEFAULT_TOLERANCE)
                .unwrap_or_else(|e| {
                    panic!("sketch {i} on {}: {e}\nparams: {params:?}", target.name)
                });
        }
    }
}

#[test]
fn random_sketches_correct_for_strided_conv() {
    // Stride-2 convs exercise the strided-gather vector path.
    let def = conv2d_bias_relu(&strided_conv());
    for target in TargetIsa::paper_targets() {
        let gen = SketchGenerator::new(&def, target.clone());
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for i in 0..12 {
            let params = gen.random(&mut rng);
            let schedule = gen.schedule(&params);
            validate_schedule(&def, &schedule, &target, &hierarchy(), 3, DEFAULT_TOLERANCE)
                .unwrap_or_else(|e| {
                    panic!(
                        "strided sketch {i} on {}: {e}\nparams: {params:?}",
                        target.name
                    )
                });
        }
    }
}

#[test]
fn template_configs_correct_where_valid() {
    let def = conv2d_bias_relu(&small_conv());
    for target in TargetIsa::paper_targets() {
        let space = ConfigSpace::conv2d(&def, &target);
        let mut rng = StdRng::seed_from_u64(99);
        let mut validated = 0;
        let mut attempts = 0;
        while validated < 15 && attempts < 400 {
            attempts += 1;
            let cfg = space.sample(&mut rng);
            let Ok(schedule) = space.schedule(&def, &cfg) else {
                continue;
            };
            if schedule.apply(&def, &target).is_err() {
                continue; // invalid configuration: tuner penalizes it
            }
            validate_schedule(&def, &schedule, &target, &hierarchy(), 5, DEFAULT_TOLERANCE)
                .unwrap_or_else(|e| panic!("config {cfg:?} on {}: {e}", target.name));
            validated += 1;
        }
        assert!(
            validated >= 15,
            "not enough valid configs on {}: {validated}",
            target.name
        );
    }
}

#[test]
fn matmul_template_configs_correct_where_valid() {
    let def = matmul(16, 24, 12);
    for target in TargetIsa::paper_targets() {
        let space = ConfigSpace::matmul(&def, &target);
        let mut rng = StdRng::seed_from_u64(1234);
        let mut validated = 0;
        let mut attempts = 0;
        while validated < 12 && attempts < 300 {
            attempts += 1;
            let cfg = space.sample(&mut rng);
            let Ok(schedule) = space.schedule(&def, &cfg) else {
                continue;
            };
            if schedule.apply(&def, &target).is_err() {
                continue;
            }
            validate_schedule(&def, &schedule, &target, &hierarchy(), 5, DEFAULT_TOLERANCE)
                .unwrap_or_else(|e| panic!("config {cfg:?} on {}: {e}", target.name));
            validated += 1;
        }
        assert!(
            validated >= 12,
            "not enough valid configs on {}",
            target.name
        );
    }
}

#[test]
fn different_schedules_produce_different_instruction_counts() {
    // Sanity: the search space is not degenerate — schedules differ in
    // observable simulator statistics.
    use simtune_isa::{simulate, RunLimits};
    use simtune_tensor::build_executable;

    let def = conv2d_bias_relu(&small_conv());
    let target = TargetIsa::x86_ryzen_5800x();
    let gen = SketchGenerator::new(&def, target.clone());
    let mut rng = StdRng::seed_from_u64(4);
    let mut totals = std::collections::HashSet::new();
    for _ in 0..10 {
        let schedule = gen.schedule(&gen.random(&mut rng));
        if schedule.apply(&def, &target).is_err() {
            continue;
        }
        let exe = build_executable(&def, &schedule, &target, 1, "probe").unwrap();
        let out = simulate(&exe, &hierarchy(), RunLimits::default()).unwrap();
        totals.insert(out.stats.inst_mix.total());
    }
    assert!(
        totals.len() >= 5,
        "schedules should differ in instruction counts: {totals:?}"
    );
}

#[test]
fn max_pool_default_and_sketched_schedules_are_correct() {
    use simtune_tensor::{max_pool2d, Pool2dShape};

    let def = max_pool2d(&Pool2dShape {
        n: 1,
        c: 6,
        h: 12,
        w: 16,
        k: 2,
        stride: 2,
    });
    for target in TargetIsa::paper_targets() {
        validate_schedule(
            &def,
            &Schedule::default_for(&def),
            &target,
            &hierarchy(),
            1,
            DEFAULT_TOLERANCE,
        )
        .unwrap_or_else(|e| panic!("max_pool default on {}: {e}", target.name));

        let gen = SketchGenerator::new(&def, target.clone());
        let mut rng = StdRng::seed_from_u64(0xF00D);
        for i in 0..10 {
            let schedule = gen.schedule(&gen.random(&mut rng));
            validate_schedule(&def, &schedule, &target, &hierarchy(), 2, DEFAULT_TOLERANCE)
                .unwrap_or_else(|e| panic!("max_pool sketch {i} on {}: {e}", target.name));
        }
    }
}

#[test]
fn max_pool_reference_matches_hand_computation() {
    use simtune_tensor::{max_pool2d, prepared_inputs, Pool2dShape};

    let shape = Pool2dShape {
        n: 1,
        c: 1,
        h: 4,
        w: 4,
        k: 2,
        stride: 2,
    };
    let def = max_pool2d(&shape);
    let mut inputs = prepared_inputs(&def, 0);
    inputs[0] = (1..=16).map(|v| v as f32).collect();
    let out = def.reference(&inputs);
    // Row-major 4x4 of 1..16 pooled 2x2/2 -> max of each quadrant.
    assert_eq!(out, vec![6.0, 8.0, 14.0, 16.0]);
}
