use std::error::Error;
use std::fmt;

/// Errors produced by linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Dimensions of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A factorization required a (strictly) positive-definite or
    /// non-singular matrix and the input was not.
    NotPositiveDefinite {
        /// Index of the pivot where the factorization broke down.
        pivot: usize,
    },
    /// LU factorization found no usable pivot (matrix is singular to
    /// working precision).
    Singular {
        /// Index of the pivot where the factorization broke down.
        pivot: usize,
    },
    /// A constructor was given rows of unequal length or an empty shape.
    MalformedInput(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular to working precision (pivot {pivot})")
            }
            LinalgError::MalformedInput(msg) => write!(f, "malformed input: {msg}"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        let e = LinalgError::NotPositiveDefinite { pivot: 3 };
        assert!(e.to_string().contains("pivot 3"));
    }
}
