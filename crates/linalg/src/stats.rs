//! Summary statistics shared by the feature pipeline, the measurement
//! harness and the experiment reports.
//!
//! All functions treat an empty input as a hard precondition violation and
//! panic, because every call site in `simtune` constructs its inputs and an
//! empty slice always indicates a logic error upstream.

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median. For even-length inputs returns the mean of the two middle
/// elements (the convention used for the paper's `N_exe = 15` repetitions,
/// which are odd anyway).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty slice");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("median: NaN in input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Linear-interpolation quantile, `q` in `[0, 1]`.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Indices that sort `xs` ascending (stable; `NaN`-free input assumed).
///
/// # Panics
///
/// Panics if `xs` contains NaN.
pub fn argsort(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("argsort: NaN in input"));
    idx
}

/// Index of the minimum element.
///
/// # Panics
///
/// Panics if `xs` is empty or contains NaN.
pub fn argmin(xs: &[f64]) -> usize {
    assert!(!xs.is_empty(), "argmin of empty slice");
    let mut best = 0;
    for i in 1..xs.len() {
        if xs[i].partial_cmp(&xs[best]).expect("argmin: NaN in input") == std::cmp::Ordering::Less {
            best = i;
        }
    }
    best
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns 0.0 when either slice has zero variance.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Spearman rank correlation: Pearson correlation of the rank vectors.
/// This is the natural quality measure for a *score* predictor, which only
/// has to order implementations correctly (Section III-D of the paper).
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    fn ranks(v: &[f64]) -> Vec<f64> {
        let order = argsort(v);
        let mut r = vec![0.0; v.len()];
        for (rank, &i) in order.iter().enumerate() {
            r[i] = rank as f64;
        }
        r
    }
    pearson(&ranks(xs), &ranks(ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[5.0]), 5.0);
    }

    #[test]
    fn quantile_endpoints_and_interpolation() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 40.0);
        assert!((quantile(&xs, 0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn argsort_orders_indices() {
        assert_eq!(argsort(&[3.0, 1.0, 2.0]), vec![1, 2, 0]);
        assert_eq!(argsort(&[]), Vec::<usize>::new());
    }

    #[test]
    fn argmin_finds_first_minimum() {
        assert_eq!(argmin(&[3.0, 1.0, 1.0, 2.0]), 1);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[1.0; 4]), 0.0);
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but non-linear relation: Spearman 1, Pearson < 1.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y) < 1.0);
    }

    #[test]
    #[should_panic(expected = "mean of empty slice")]
    fn mean_empty_panics() {
        let _ = mean(&[]);
    }
}
