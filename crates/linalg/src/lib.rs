//! Small dense linear algebra for the `simtune` predictors.
//!
//! The predictor crate needs exactly the operations implemented here:
//! dense row-major matrices, matrix products, Cholesky and LU
//! factorizations with triangular solves (for multiple linear regression
//! normal equations and Gaussian-process posteriors), and a handful of
//! summary statistics (mean / median / variance / quantiles) used by the
//! feature pipeline and the measurement harness.
//!
//! Everything is `f64` and written for clarity over raw speed; the matrices
//! involved are at most a few thousand rows.
//!
//! # Example
//!
//! ```
//! use simtune_linalg::Matrix;
//!
//! # fn main() -> Result<(), simtune_linalg::LinalgError> {
//! // Solve the SPD system A x = b via Cholesky.
//! let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]])?;
//! let b = vec![1.0, 2.0];
//! let chol = a.cholesky()?;
//! let x = chol.solve(&b)?;
//! let r = a.mat_vec(&x);
//! assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod decompose;
mod error;
mod matrix;
pub mod stats;

pub use decompose::{Cholesky, Lu};
pub use error::LinalgError;
pub use matrix::Matrix;

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` in place.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
