use crate::{LinalgError, Matrix};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix.
///
/// Used by the Gaussian-process predictor (kernel matrix inversion and
/// log-determinants) and by ridge-regularized normal equations.
///
/// # Example
///
/// ```
/// use simtune_linalg::Matrix;
///
/// # fn main() -> Result<(), simtune_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![25.0, 15.0], vec![15.0, 18.0]])?;
/// let chol = a.cholesky()?;
/// let x = chol.solve(&[40.0, 33.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely (upper triangle is zero).
    l: Matrix,
}

impl Cholesky {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for non-square input and
    /// [`LinalgError::NotPositiveDefinite`] if a pivot is not strictly
    /// positive.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len()` differs from
    /// the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                sum -= self.l[(i, k)] * yk;
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l[(k, i)] * xk;
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `L y = b` only (forward substitution). Needed for GP
    /// predictive variances.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on length mismatch.
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve_lower",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                sum -= self.l[(i, k)] * yk;
            }
            y[i] = sum / self.l[(i, i)];
        }
        Ok(y)
    }

    /// `log |A| = 2 Σ log L_ii`, used in the GP marginal likelihood.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// LU factorization with partial pivoting, `P A = L U`.
///
/// Used for general (possibly non-SPD) linear solves such as unregularized
/// normal equations.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined LU storage: unit lower triangle below the diagonal, U on
    /// and above it.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
}

impl Lu {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for non-square input and
    /// [`LinalgError::Singular`] if no usable pivot exists.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "lu",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Partial pivoting: find the largest remaining entry in `col`.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in col + 1..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LinalgError::Singular { pivot: col });
            }
            if pivot_row != col {
                perm.swap(col, pivot_row);
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            let inv = 1.0 / lu[(col, col)];
            for r in col + 1..n {
                let factor = lu[(r, col)] * inv;
                lu[(r, col)] = factor;
                for j in col + 1..n {
                    let delta = factor * lu[(col, j)];
                    lu[(r, j)] -= delta;
                }
            }
        }
        Ok(Lu { lu, perm })
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on length mismatch.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward/back substitution.
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 1..n {
            let mut sum = y[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                sum -= self.lu[(i, k)] * yk;
            }
            y[i] = sum;
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.lu[(i, k)] * xk;
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }
}

impl Matrix {
    /// Convenience wrapper for [`Cholesky::new`].
    ///
    /// # Errors
    ///
    /// See [`Cholesky::new`].
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        Cholesky::new(self)
    }

    /// Convenience wrapper for [`Lu::new`].
    ///
    /// # Errors
    ///
    /// See [`Lu::new`].
    pub fn lu(&self) -> Result<Lu, LinalgError> {
        Lu::new(self)
    }

    /// Solves `A x = b`, trying Cholesky first (fast path for SPD matrices)
    /// and falling back to pivoted LU.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the matrix is singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        match self.cholesky() {
            Ok(c) => c.solve(b),
            Err(_) => self.lu()?.solve(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Matrix {
        // Deterministic pseudo-random SPD matrix: B Bᵀ + n·I.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let b = Matrix::from_fn(n, n, |_, _| next());
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(n as f64);
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd(6, 42);
        let c = a.cholesky().unwrap();
        let recon = c.l().matmul(&c.l().transpose()).unwrap();
        assert!(recon.sub(&a).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn cholesky_solve_residual_small() {
        let a = spd(8, 7);
        let b: Vec<f64> = (0..8).map(|i| i as f64 - 3.0).collect();
        let x = a.cholesky().unwrap().solve(&b).unwrap();
        let r = a.mat_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9, "residual too large");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn cholesky_log_det_matches_known() {
        // A = diag(4, 9) -> |A| = 36.
        let a = Matrix::from_rows(&[vec![4.0, 0.0], vec![0.0, 9.0]]).unwrap();
        let c = a.cholesky().unwrap();
        assert!((c.log_det() - 36.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn lu_solves_nonsymmetric() {
        let a = Matrix::from_rows(&[
            vec![0.0, 2.0, 1.0],
            vec![1.0, -2.0, -3.0],
            vec![-1.0, 1.0, 2.0],
        ])
        .unwrap();
        let b = vec![-8.0, 0.0, 3.0];
        let x = a.lu().unwrap().solve(&b).unwrap();
        let r = a.mat_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn generic_solve_falls_back_to_lu() {
        // Indefinite but non-singular: Cholesky fails, LU succeeds.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_lower_is_forward_substitution() {
        let a = spd(5, 3);
        let c = a.cholesky().unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let y = c.solve_lower(&b).unwrap();
        let r = c.l().mat_vec(&y);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }
}
