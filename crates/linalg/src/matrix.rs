use crate::LinalgError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major `f64` matrix.
///
/// This is the single data structure shared by all predictors. It supports
/// the usual constructors, element access via `m[(i, j)]`, products,
/// transposes and row/column extraction.
///
/// # Example
///
/// ```
/// use simtune_linalg::Matrix;
///
/// # fn main() -> Result<(), simtune_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c[(1, 0)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix with every element set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of equally sized rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::MalformedInput`] if `rows` is empty or the
    /// rows have different lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::MalformedInput(
                "from_rows requires at least one non-empty row".into(),
            ));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::MalformedInput(
                "from_rows requires rows of equal length".into(),
            ));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::MalformedInput`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::MalformedInput(format!(
                "from_vec: expected {} elements, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(i, j)` for each element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the `i`-th row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows the `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies the `j`-th column into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Flat row-major view of the underlying storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner accesses contiguous.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for j in 0..rrow.len() {
                    orow[j] += a * rrow[j];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols`.
    pub fn mat_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "mat_vec: length mismatch");
        (0..self.rows).map(|i| crate::dot(self.row(i), v)).collect()
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self` scaled by `alpha`.
    pub fn scale(&self, alpha: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * alpha).collect(),
        }
    }

    /// Adds `alpha` to every diagonal element in place (useful as jitter
    /// before a Cholesky factorization).
    pub fn add_diagonal(&mut self, alpha: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += alpha;
        }
    }

    /// Gram matrix `selfᵀ * self` (always square, `cols x cols`).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += a * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Maximum absolute element, or 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn constructors_and_shape() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.as_slice(), &[0.0; 6]);
        let f = Matrix::filled(1, 2, 7.0);
        assert_eq!(f.as_slice(), &[7.0, 7.0]);
        let e = Matrix::identity(3);
        assert_eq!(e[(1, 1)], 1.0);
        assert_eq!(e[(1, 2)], 0.0);
    }

    #[test]
    fn from_rows_validates() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 10 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t.transpose(), m);
        assert_eq!(t[(2, 1)], m[(1, 2)]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let p = m.matmul(&Matrix::identity(3)).unwrap();
        assert_eq!(p, m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(approx(c[(0, 0)], 19.0));
        assert!(approx(c[(0, 1)], 22.0));
        assert!(approx(c[(1, 0)], 43.0));
        assert!(approx(c[(1, 1)], 50.0));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn mat_vec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let v = a.mat_vec(&[1.0, 1.0]);
        assert_eq!(v, vec![3.0, 7.0]);
    }

    #[test]
    fn gram_is_symmetric_and_correct() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let g = a.gram();
        let expected = a.transpose().matmul(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx(g[(i, j)], expected[(i, j)]));
                assert!(approx(g[(i, j)], g[(j, i)]));
            }
        }
    }

    #[test]
    fn add_sub_scale_diagonal() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        assert_eq!(a.add(&b).unwrap(), Matrix::filled(2, 2, 3.0));
        assert_eq!(b.sub(&a).unwrap(), Matrix::filled(2, 2, 1.0));
        assert_eq!(a.scale(3.0), Matrix::filled(2, 2, 3.0));
        let mut d = Matrix::zeros(2, 2);
        d.add_diagonal(5.0);
        assert_eq!(d[(0, 0)], 5.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn row_col_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }
}
