//! Property test: the lock-striped `SimCache` is observably identical
//! to the historical single-lock cache on every fingerprint and every
//! operation sequence — sharding only changes contention, never
//! behavior. Covers unbounded caches and the bounded epoch-eviction
//! contract (a full generation flushes wholesale in both layouts).

use proptest::prelude::*;
use simtune_core::{Fidelity, SimCache, SimReport};
use simtune_isa::SimStats;

/// A distinct, variable-length fingerprint per key index, so keys
/// exercise different shards and different byte lengths.
fn key(idx: u8) -> Vec<u8> {
    let mut k = format!("fingerprint-{idx}-").into_bytes();
    k.extend(std::iter::repeat_n(idx, usize::from(idx) % 7));
    k
}

fn report(marker: u64) -> SimReport {
    SimReport {
        stats: SimStats {
            host_nanos: marker,
            ..SimStats::default()
        },
        backend: "accurate".into(),
        fidelity: Fidelity::Accurate,
        extrapolated: false,
        cycles: None,
    }
}

/// Zips the vendored stub's parallel vectors into an op sequence (the
/// stub has no tuple strategies).
fn zip_ops(idxs: &[u8], inserts: &[bool], markers: &[u64]) -> Vec<(u8, bool, u64)> {
    idxs.iter()
        .enumerate()
        .map(|(i, &idx)| (idx, inserts[i % inserts.len()], markers[i % markers.len()]))
        .collect()
}

/// Replays one op sequence on both layouts, asserting lockstep
/// observable equality after every step.
fn assert_equivalent(
    single: &SimCache,
    sharded: &SimCache,
    ops: &[(u8, bool, u64)],
) -> Result<(), TestCaseError> {
    for &(idx, is_insert, marker) in ops {
        let k = key(idx);
        if is_insert {
            single.insert(k.clone(), report(marker));
            sharded.insert(k, report(marker));
        } else {
            let a = single.lookup(&k);
            let b = sharded.lookup(&k);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(single.len(), sharded.len());
        prop_assert_eq!(single.stats(), sharded.stats());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unbounded: single-lock and 8-way sharded caches agree on every
    /// fingerprint, every lookup result and every counter.
    #[test]
    fn sharded_cache_matches_single_lock(
        idxs in prop::collection::vec(0u8..24, 1..120),
        inserts in prop::collection::vec(any::<bool>(), 1..120),
        markers in prop::collection::vec(0u64..1000, 1..120),
    ) {
        let ops = zip_ops(&idxs, &inserts, &markers);
        let single = SimCache::with_shards(1);
        let sharded = SimCache::with_shards(8);
        assert_equivalent(&single, &sharded, &ops)?;
    }

    /// Bounded: the epoch-eviction contract (insert of a new key into a
    /// full generation flushes the whole map) is layout-independent,
    /// because capacity is tracked globally, not per shard.
    #[test]
    fn bounded_sharded_cache_matches_single_lock(
        idxs in prop::collection::vec(0u8..24, 1..120),
        inserts in prop::collection::vec(any::<bool>(), 1..120),
        markers in prop::collection::vec(0u64..1000, 1..120),
        cap in 1usize..12,
    ) {
        let ops = zip_ops(&idxs, &inserts, &markers);
        let single = SimCache::bounded_with_shards(cap, 1);
        let sharded = SimCache::bounded_with_shards(cap, 8);
        assert_equivalent(&single, &sharded, &ops)?;
        prop_assert!(single.len() <= cap);
    }

    /// The resident set never exceeds the configured capacity, at any
    /// shard count.
    #[test]
    fn bounded_cache_respects_capacity(
        inserts in prop::collection::vec(0u8..40, 1..200),
        cap in 1usize..10,
        shards in 1usize..9,
    ) {
        let cache = SimCache::bounded_with_shards(cap, shards);
        for (i, idx) in inserts.iter().enumerate() {
            cache.insert(key(*idx), report(i as u64));
            prop_assert!(cache.len() <= cap);
        }
    }
}
