//! Strategy determinism: the same seed and strategy must reproduce the
//! identical search — same candidates, same visit order, same best —
//! regardless of how many parallel simulator instances evaluate the
//! batches. Parallelism changes *who executes* a candidate, never
//! *which* candidate runs or in which history slot it lands.

use simtune_core::{
    collect_group_data, tune_with_predictor, CollectOptions, ScorePredictor, StrategySpec,
    TuneOptions, TuneResult,
};
use simtune_hw::TargetSpec;
use simtune_predict::PredictorKind;
use simtune_tensor::{matmul, ComputeDef};

fn workload() -> (ComputeDef, TargetSpec, ScorePredictor) {
    let def = matmul(8, 8, 8);
    let spec = TargetSpec::riscv_u74();
    let data = collect_group_data(
        &def,
        &spec,
        0,
        &CollectOptions {
            n_impls: 16,
            n_parallel: 4,
            seed: 5,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        },
    )
    .expect("collects");
    let mut predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
    predictor
        .train(std::slice::from_ref(&data))
        .expect("trains");
    (def, spec, predictor)
}

fn run(
    def: &ComputeDef,
    spec: &TargetSpec,
    predictor: &ScorePredictor,
    strategy: StrategySpec,
    n_parallel: usize,
) -> TuneResult {
    tune_with_predictor(
        def,
        spec,
        predictor,
        &TuneOptions {
            n_trials: 12,
            batch_size: 4,
            n_parallel,
            seed: 17,
            strategy,
            ..TuneOptions::default()
        },
    )
    .expect("tunes")
}

#[test]
fn every_strategy_is_deterministic_across_parallelism() {
    let (def, spec, predictor) = workload();
    for strategy in StrategySpec::all() {
        let label = strategy.label();
        let reference = run(&def, &spec, &predictor, strategy.clone(), 1);
        for n_parallel in [2usize, 4] {
            let other = run(&def, &spec, &predictor, strategy.clone(), n_parallel);
            // Identical visit order: candidate i of one run is candidate
            // i of the other, bit for bit.
            assert_eq!(
                reference.history.len(),
                other.history.len(),
                "{label}: history length diverged at n_parallel={n_parallel}"
            );
            for (i, (a, b)) in reference.history.iter().zip(&other.history).enumerate() {
                assert_eq!(
                    a.description, b.description,
                    "{label}: visit order diverged at slot {i}, n_parallel={n_parallel}"
                );
                assert_eq!(
                    a.score, b.score,
                    "{label}: score diverged at slot {i}, n_parallel={n_parallel}"
                );
            }
            // Identical best candidate.
            assert_eq!(
                reference.best_index, other.best_index,
                "{label}: best index diverged at n_parallel={n_parallel}"
            );
            assert_eq!(reference.best().description, other.best().description);
            // Identical convergence counters.
            assert_eq!(
                reference.convergence, other.convergence,
                "{label}: convergence diverged at n_parallel={n_parallel}"
            );
        }
    }
}

#[test]
fn same_seed_reruns_are_bit_identical() {
    let (def, spec, predictor) = workload();
    for strategy in StrategySpec::all() {
        let a = run(&def, &spec, &predictor, strategy.clone(), 4);
        let b = run(&def, &spec, &predictor, strategy, 4);
        let descs = |r: &TuneResult| -> Vec<String> {
            r.history.iter().map(|t| t.description.clone()).collect()
        };
        assert_eq!(descs(&a), descs(&b));
        assert_eq!(a.best_index, b.best_index);
        assert_eq!(a.simulations, b.simulations);
    }
}
