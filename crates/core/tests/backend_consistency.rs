//! Cross-backend consistency: the reduced-fidelity tiers must stay
//! anchored to the reference simulator.
//!
//! * `FastCountBackend` executes the same functional CPU as
//!   `AccurateBackend`, so retired-instruction mixes must agree
//!   *exactly* on every kernel of the paper's workload set;
//! * `SampledBackend` at sample fraction 1.0 covers the whole program,
//!   so its statistics (instruction mix *and* cache counters) must equal
//!   the accurate backend's.

use rand::rngs::StdRng;
use rand::SeedableRng;
use simtune_core::{AccurateBackend, FastCountBackend, KernelBuilder, SampledBackend, SimBackend};
use simtune_hw::TargetSpec;
use simtune_isa::{Executable, RunLimits};
use simtune_tensor::{conv2d_bias_relu, matmul, ComputeDef, Schedule, SketchGenerator};

/// The paper's five Conv2D+Bias+ReLU groups (Table II) at smoke scale
/// (spatial/8, channels/8 — the CI-sized variant), plus the matmul
/// kernel used for cross-kernel-type experiments.
fn workload_set() -> Vec<ComputeDef> {
    let mut defs: Vec<ComputeDef> = simtune_tensor::Conv2dShape::paper_groups()
        .iter()
        .map(|g| conv2d_bias_relu(&g.scaled(8, 8)))
        .collect();
    defs.push(matmul(12, 12, 12));
    defs
}

/// One default-schedule executable plus one randomly scheduled variant
/// per kernel, so layout-sensitive code paths (tiling, vectorization)
/// are exercised too.
fn candidates(def: &ComputeDef, spec: &TargetSpec, seed: u64) -> Vec<Executable> {
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let mut out = vec![builder
        .build(
            &Schedule::default_for(def),
            &format!("{}-default", def.name),
        )
        .expect("default schedule builds")];
    let generator = SketchGenerator::new(def, spec.isa.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    for attempt in 0..50 {
        let schedule = generator.schedule(&generator.random(&mut rng));
        if let Ok(exe) = builder.build(&schedule, &format!("{}-r{attempt}", def.name)) {
            out.push(exe);
            break;
        }
    }
    out
}

#[test]
fn fast_count_matches_accurate_on_paper_workloads() {
    let spec = TargetSpec::riscv_u74();
    let accurate = AccurateBackend::new(spec.hierarchy.clone());
    let fast = FastCountBackend::matching(&spec.hierarchy);
    let limits = RunLimits::default();
    for def in workload_set() {
        for exe in candidates(&def, &spec, 0xC0DE) {
            let a = accurate.run_one(&exe, &limits).expect("accurate runs");
            let f = fast.run_one(&exe, &limits).expect("fast-count runs");
            assert_eq!(
                a.stats.inst_mix, f.stats.inst_mix,
                "retired-instruction mix diverged on {}",
                exe.name
            );
            // The raw access volume is preserved: every fast-count access
            // is an L1 "miss", so L1 accesses match the accurate run's.
            assert_eq!(
                a.stats.cache.l1d.read_accesses(),
                f.stats.cache.l1d.read_misses,
                "data-read volume diverged on {}",
                exe.name
            );
            assert_eq!(
                a.stats.cache.l1d.write_accesses(),
                f.stats.cache.l1d.write_misses,
                "data-write volume diverged on {}",
                exe.name
            );
        }
    }
}

#[test]
fn sampled_at_fraction_one_equals_accurate_on_paper_workloads() {
    let spec = TargetSpec::riscv_u74();
    let accurate = AccurateBackend::new(spec.hierarchy.clone());
    let sampled = SampledBackend::new(spec.hierarchy.clone(), 1.0).expect("valid fraction");
    let limits = RunLimits::default();
    for def in workload_set() {
        for exe in candidates(&def, &spec, 0x5EED) {
            let a = accurate.run_one(&exe, &limits).expect("accurate runs");
            let s = sampled.run_one(&exe, &limits).expect("sampled runs");
            assert!(
                !s.extrapolated,
                "fraction 1.0 must cover the whole run on {}",
                exe.name
            );
            assert_eq!(a.stats.inst_mix, s.stats.inst_mix, "mix on {}", exe.name);
            assert_eq!(a.stats.cache, s.stats.cache, "cache on {}", exe.name);
        }
    }
}
