//! The determinism contract of the fidelity-escalation flows: same
//! seed + same policy ⇒ bit-identical [`TuneResult`] at every
//! `n_parallel`, for the static top-k policy and the learned
//! uncertainty policy alike.
//!
//! The uncertainty flow is the delicate one — its online model is
//! trained *during* the sweep, so any parallelism-dependent reordering
//! of observations would change what the model learns and thereby which
//! candidates escalate. Everything model-facing runs on the producer
//! thread in submission order, which is what these tests pin.

use simtune_core::{
    collect_group_data, tune_with_fidelity_escalation, CollectOptions, EscalatedTuneResult,
    EscalationOptions, EscalationPolicy, ScorePredictor, StrategySpec, TuneOptions,
    UncertaintyPolicy,
};
use simtune_hw::TargetSpec;
use simtune_predict::PredictorKind;
use simtune_tensor::{matmul, ComputeDef};

fn workload() -> (ComputeDef, TargetSpec) {
    (matmul(8, 8, 8), TargetSpec::riscv_u74())
}

fn trained_predictor(def: &ComputeDef, spec: &TargetSpec) -> ScorePredictor {
    let data = collect_group_data(
        def,
        spec,
        0,
        &CollectOptions {
            n_impls: 16,
            n_parallel: 4,
            seed: 5,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        },
    )
    .expect("training data collects");
    let mut predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
    predictor
        .train(std::slice::from_ref(&data))
        .expect("predictor trains");
    predictor
}

fn run(
    def: &ComputeDef,
    spec: &TargetSpec,
    predictor: &ScorePredictor,
    esc: &EscalationOptions,
    n_parallel: usize,
) -> EscalatedTuneResult {
    // A guided strategy makes the test sharp: evolutionary proposals
    // depend on observed scores, so any score divergence across
    // parallelism degrees would cascade into different candidates.
    let opts = TuneOptions {
        n_trials: 24,
        batch_size: 8,
        n_parallel,
        seed: 9,
        strategy: StrategySpec::Evolutionary,
        ..TuneOptions::default()
    };
    tune_with_fidelity_escalation(def, spec, predictor, &opts, esc).expect("escalated tune runs")
}

/// Everything except wall-clock timings must match bit-for-bit.
fn assert_identical(a: &EscalatedTuneResult, b: &EscalatedTuneResult, label: &str) {
    assert_eq!(
        a.result.history.len(),
        b.result.history.len(),
        "{label}: history length"
    );
    for (i, (ra, rb)) in a.result.history.iter().zip(&b.result.history).enumerate() {
        assert_eq!(ra.description, rb.description, "{label}: candidate {i}");
        assert_eq!(
            ra.score.to_bits(),
            rb.score.to_bits(),
            "{label}: score of candidate {i} ({} vs {})",
            ra.score,
            rb.score
        );
    }
    assert_eq!(
        a.result.best_index, b.result.best_index,
        "{label}: best index"
    );
    assert_eq!(a.explore_runs, b.explore_runs, "{label}: explore runs");
    assert_eq!(a.accurate_runs, b.accurate_runs, "{label}: accurate runs");
    assert_eq!(
        a.result.predictor, b.result.predictor,
        "{label}: predictor stats"
    );
}

fn uncertainty(kind: PredictorKind) -> EscalationOptions {
    EscalationOptions {
        policy: EscalationPolicy::Uncertainty(UncertaintyPolicy {
            predictor: kind,
            confidence: 1.0,
            min_train: 4,
            refit_every: 4,
            budget: None,
        }),
        ..EscalationOptions::default()
    }
}

#[test]
fn uncertainty_escalation_is_identical_at_every_parallelism() {
    let (def, spec) = workload();
    let predictor = trained_predictor(&def, &spec);
    for kind in [PredictorKind::LinReg, PredictorKind::Xgboost] {
        let esc = uncertainty(kind);
        let base = run(&def, &spec, &predictor, &esc, 1);
        assert!(base.result.best().score.is_finite());
        assert!(base.result.predictor.is_some());
        for n_parallel in [2, 4] {
            let other = run(&def, &spec, &predictor, &esc, n_parallel);
            assert_identical(
                &base,
                &other,
                &format!("{} n_parallel={n_parallel}", kind.label()),
            );
        }
    }
}

#[test]
fn topk_escalation_is_identical_at_every_parallelism() {
    let (def, spec) = workload();
    let predictor = trained_predictor(&def, &spec);
    let esc = EscalationOptions::default();
    let base = run(&def, &spec, &predictor, &esc, 1);
    for n_parallel in [2, 4] {
        let other = run(&def, &spec, &predictor, &esc, n_parallel);
        assert_identical(&base, &other, &format!("top-k n_parallel={n_parallel}"));
    }
}

#[test]
fn uncertainty_escalation_reruns_are_bit_identical() {
    let (def, spec) = workload();
    let predictor = trained_predictor(&def, &spec);
    let esc = uncertainty(PredictorKind::LinReg);
    let a = run(&def, &spec, &predictor, &esc, 4);
    let b = run(&def, &spec, &predictor, &esc, 4);
    assert_identical(&a, &b, "rerun at n_parallel=4");
}
