//! Property suite for the [`SimCache`] fingerprint on torture programs
//! — the collision contract behind the v3 snapshot schema.
//!
//! The memo layer replays stored reports whenever two requests share a
//! fingerprint, so the fingerprint function carries the entire
//! correctness burden: two requests may collide **iff** they are the
//! same simulation — same program (by disassembly), same data bits,
//! same target, same fidelity digest, same limits, same engine.
//! Torture programs make good probes because near-identical variants
//! (one instruction changed, one data bit flipped) are easy to derive
//! from a seed.

use proptest::prelude::*;
use simtune_core::{memo_fingerprint, Fidelity, SimCache, SimReport};
use simtune_isa::{
    torture_program_with, EngineKind, Executable, RunLimits, SimStats, TargetIsa, TortureConfig,
    DATA_BASE,
};

fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn torture_exe(seed: u64, name: &str, data: Vec<f32>) -> Executable {
    let program = torture_program_with(&TortureConfig::baseline(), seed);
    let target = TargetIsa::paper_targets()[(seed % 3) as usize].clone();
    Executable::new(name, program, target).with_segment(DATA_BASE, data)
}

fn key(exe: &Executable, digest: &str, max_insts: u64, engine: EngineKind) -> Vec<u8> {
    memo_fingerprint(exe, digest, &RunLimits { max_insts }, engine)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// Identical simulations collide, whatever the executable's *name*:
    /// trial labels must not fragment the cache.
    #[test]
    fn equal_requests_collide_across_names(seed in any::<u64>(), data_word in any::<u32>()) {
        let data = vec![f32::from_bits(data_word), 2.0, -0.0];
        let a = torture_exe(seed, "trial-1", data.clone());
        let b = torture_exe(seed, "trial-2", data);
        let ka = key(&a, "accurate @ cfg", 1_000, EngineKind::Decoded);
        let kb = key(&b, "accurate @ cfg", 1_000, EngineKind::Decoded);
        prop_assert_eq!(ka, kb);
    }

    /// Any differing component misses: program, data bits, engine,
    /// fidelity digest (tier, parameters or configuration), limits,
    /// target.
    #[test]
    fn any_differing_component_misses(seed in any::<u64>()) {
        let base = torture_exe(seed, "t", vec![1.0, 2.0]);
        let k0 = key(&base, "accurate @ cfg", 1_000, EngineKind::Decoded);

        // Different program (next seed -- generator decorrelation is
        // pinned by the isa contract suite).
        let other_prog = torture_exe(seed.wrapping_add(1), "t", vec![1.0, 2.0]);
        prop_assume!(other_prog.program != base.program);
        prop_assert_ne!(
            &k0,
            &key(&other_prog, "accurate @ cfg", 1_000, EngineKind::Decoded)
        );

        // One data bit flipped (0.0 vs -0.0 differ only in sign bit).
        let bitflip = torture_exe(seed, "t", vec![1.0, 2.0 + 1e-6]);
        prop_assert_ne!(
            &k0,
            &key(&bitflip, "accurate @ cfg", 1_000, EngineKind::Decoded)
        );

        // Engine, fidelity tier, tier parameters, configuration, limits.
        prop_assert_ne!(
            &k0,
            &key(&base, "accurate @ cfg", 1_000, EngineKind::Batch)
        );
        prop_assert_ne!(
            &k0,
            &key(&base, "fast-count @ cfg", 1_000, EngineKind::Decoded)
        );
        prop_assert_ne!(
            &k0,
            &key(&base, "sampled:fraction=0.5 @ cfg", 1_000, EngineKind::Decoded)
        );
        prop_assert_ne!(
            &k0,
            &key(&base, "pipelined:btb=512,ras=8 @ cfg", 1_000, EngineKind::Decoded)
        );
        prop_assert_ne!(
            &key(&base, "pipelined:btb=512,ras=8 @ cfg", 1_000, EngineKind::Decoded),
            &key(&base, "pipelined:btb=256,ras=8 @ cfg", 1_000, EngineKind::Decoded)
        );
        prop_assert_ne!(
            &k0,
            &key(&base, "accurate @ cfg2", 1_000, EngineKind::Decoded)
        );
        prop_assert_ne!(
            &k0,
            &key(&base, "accurate @ cfg", 2_000, EngineKind::Decoded)
        );

        // Different target ISA.
        let mut retargeted = base.clone();
        retargeted.target = if base.target.name == TargetIsa::riscv_u74().name {
            TargetIsa::arm_cortex_a72()
        } else {
            TargetIsa::riscv_u74()
        };
        prop_assert_ne!(
            &k0,
            &key(&retargeted, "accurate @ cfg", 1_000, EngineKind::Decoded)
        );
    }

    /// End-to-end through the cache: a planted report is replayed for
    /// the colliding request and invisible to a differing one.
    #[test]
    fn cache_replays_collisions_only(seed in any::<u64>()) {
        let cache = SimCache::new();
        let exe = torture_exe(seed, "plant", vec![3.0]);
        let k = key(&exe, "accurate @ cfg", 1_000, EngineKind::Decoded);
        let planted = SimReport {
            stats: SimStats::default(),
            backend: "accurate".into(),
            fidelity: Fidelity::Accurate,
            extrapolated: false,
            cycles: None,
        };
        cache.insert(k.clone(), planted.clone());
        prop_assert_eq!(cache.lookup(&k), Some(planted));
        let miss = key(&exe, "accurate @ cfg", 999, EngineKind::Decoded);
        prop_assert_eq!(cache.lookup(&miss), None);
    }
}
