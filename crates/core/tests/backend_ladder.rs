//! Backend fidelity-ladder contracts on the torture corpus.
//!
//! The tiers' stated relationships to [`AccurateBackend`], pinned over
//! structured torture programs (loop nests, irregular branches,
//! pathological strides — not just well-behaved kernels):
//!
//! * [`FastCountBackend`]: the retired-instruction mix and the
//!   line-granular fetch/access *totals* are bit-identical to accurate;
//!   only the hit/miss split is absent.
//! * [`SampledBackend`] at fraction 1.0: statistics equal accurate's
//!   exactly (wall time aside) and nothing is flagged extrapolated.
//! * [`SampledBackend`] at a partial fraction: the prefix is simulated
//!   exactly like an accurate prefix run of the same budget, the
//!   linear extrapolation is reproducible bit-for-bit from that
//!   prefix, and `extrapolated` is flagged precisely when the prefix
//!   did not cover the run.
//! * [`PipelinedBackend`]: architectural statistics identical to the
//!   interp reference on every corpus scenario, and the extra
//!   [`simtune_core::CycleBreakdown`] byte-identical across replay
//!   engines and `n_parallel` 1/2/4.

use simtune_cache::HierarchyConfig;
use simtune_core::diffharness::DiffHarness;
use simtune_core::{
    AccurateBackend, FastCountBackend, FidelitySpec, PipelinedBackend, SampledBackend, SimBackend,
    SimSession, DEFAULT_BTB_ENTRIES, DEFAULT_RAS_DEPTH,
};
use simtune_isa::{EngineKind, RunLimits, TortureConfig};

fn hier() -> HierarchyConfig {
    HierarchyConfig::tiny_for_tests()
}

/// (executable, decoded) torture pairs across the corpus; skips seeds
/// whose programs fault (fault agreement is the diffharness suite's
/// job — here we compare statistics of completed runs).
fn corpus_cases() -> Vec<(String, simtune_isa::Executable, simtune_isa::DecodedProgram)> {
    let accurate = AccurateBackend::new(hier());
    let mut cases = Vec::new();
    for (name, cfg) in TortureConfig::corpus() {
        for seed in 0..6 {
            let exe = DiffHarness::make_executable(name, &cfg, seed, seed + 17);
            let decoded = exe.decode().expect("torture programs decode");
            if accurate
                .run_one_decoded(&exe, &decoded, &RunLimits::default())
                .is_ok()
            {
                cases.push((format!("{name}/{seed}"), exe, decoded));
            }
        }
    }
    assert!(cases.len() > 40, "corpus sweep too small: {}", cases.len());
    cases
}

#[test]
fn fast_count_matches_accurate_instruction_and_access_totals() {
    let accurate = AccurateBackend::new(hier());
    let fast = FastCountBackend::matching(&hier());
    let limits = RunLimits::default();
    for (ctx, exe, decoded) in corpus_cases() {
        let a = accurate.run_one_decoded(&exe, &decoded, &limits).unwrap();
        let f = fast.run_one_decoded(&exe, &decoded, &limits).unwrap();
        assert_eq!(a.stats.inst_mix, f.stats.inst_mix, "{ctx}: inst mix");
        let ac = &a.stats.cache;
        let fc = &f.stats.cache;
        assert_eq!(
            ac.l1i.read_hits + ac.l1i.read_misses,
            fc.l1i.read_hits + fc.l1i.read_misses,
            "{ctx}: fetch totals"
        );
        assert_eq!(
            ac.l1d.read_hits + ac.l1d.read_misses,
            fc.l1d.read_hits + fc.l1d.read_misses,
            "{ctx}: data-read totals"
        );
        assert_eq!(
            ac.l1d.write_hits + ac.l1d.write_misses,
            fc.l1d.write_hits + fc.l1d.write_misses,
            "{ctx}: data-write totals"
        );
        // The counting tier models no cache: every access is a miss.
        assert_eq!(fc.l1i.read_hits, 0, "{ctx}");
        assert_eq!(fc.l1d.read_hits + fc.l1d.write_hits, 0, "{ctx}");
        assert!(!f.extrapolated, "{ctx}");
    }
}

#[test]
fn sampled_full_fraction_equals_accurate_on_torture_programs() {
    let accurate = AccurateBackend::new(hier());
    let sampled = SampledBackend::new(hier(), 1.0).unwrap();
    let limits = RunLimits::default();
    for (ctx, exe, decoded) in corpus_cases() {
        let a = accurate.run_one_decoded(&exe, &decoded, &limits).unwrap();
        let s = sampled.run_one_decoded(&exe, &decoded, &limits).unwrap();
        assert!(!s.extrapolated, "{ctx}: full fraction never extrapolates");
        assert_eq!(a.stats.inst_mix, s.stats.inst_mix, "{ctx}");
        assert_eq!(a.stats.cache, s.stats.cache, "{ctx}");
    }
}

#[test]
fn sampled_partial_prefix_matches_accurate_prefix_and_flags_extrapolation() {
    let fraction = 0.5;
    let sampled = SampledBackend::new(hier(), fraction)
        .unwrap()
        .with_min_insts(1);
    let limits = RunLimits::default();
    let mut extrapolated_cases = 0;
    for (ctx, exe, decoded) in corpus_cases() {
        let s = sampled.run_one_decoded(&exe, &decoded, &limits).unwrap();

        // Recompute the tier's own recipe from primitives: a counting
        // pass sizes the run, an accurate prefix of the same budget is
        // simulated, and (when the prefix is partial) every counter is
        // scaled by total/retired. The backend must match bit-for-bit.
        let line = hier().line_bytes();
        let count = simtune_isa::simulate_counting_decoded(&exe, &decoded, line, limits).unwrap();
        let total = count.stats.inst_mix.total();
        let budget = ((total as f64 * fraction).ceil() as u64).max(1);
        let (prefix, completed) =
            simtune_isa::simulate_prefix_decoded(&exe, &decoded, &hier(), limits, budget).unwrap();

        assert_eq!(s.extrapolated, !completed, "{ctx}: extrapolation flag");
        if completed {
            assert_eq!(s.stats.inst_mix, prefix.stats.inst_mix, "{ctx}");
            assert_eq!(s.stats.cache, prefix.stats.cache, "{ctx}");
        } else {
            extrapolated_cases += 1;
            let retired = prefix.stats.inst_mix.total();
            assert!(retired >= budget, "{ctx}: prefix stopped early");
            // Scaled counters are exactly reproducible: floor division
            // component-wise, same as the backend's extrapolation.
            let scale = |v: u64| ((v as u128 * total as u128) / retired.max(1) as u128) as u64;
            assert_eq!(
                s.stats.inst_mix.total(),
                {
                    let m = &prefix.stats.inst_mix;
                    scale(m.int_alu)
                        + scale(m.fp_alu)
                        + scale(m.vec_alu)
                        + scale(m.loads)
                        + scale(m.stores)
                        + scale(m.branches)
                        + scale(m.other)
                },
                "{ctx}: extrapolated mix total"
            );
            assert_eq!(
                s.stats.cache.l1d.read_misses,
                scale(prefix.stats.cache.l1d.read_misses),
                "{ctx}: extrapolated l1d read misses"
            );
            assert_eq!(
                s.stats.cache.dram_reads,
                scale(prefix.stats.cache.dram_reads),
                "{ctx}: extrapolated dram reads"
            );
        }
    }
    assert!(
        extrapolated_cases > 10,
        "partial sampling must actually extrapolate on torture programs \
         (got {extrapolated_cases})"
    );
}

#[test]
fn pipelined_matches_interp_architectural_statistics_on_the_corpus() {
    // The timing tier replays the same functional semantics as the
    // interp reference; only the cache statistics may move (the
    // prefetcher shares the trial's hierarchy) and cycles appear.
    let accurate = AccurateBackend::new(hier());
    let pipelined = PipelinedBackend::new(hier(), DEFAULT_BTB_ENTRIES, DEFAULT_RAS_DEPTH);
    let limits = RunLimits::default();
    for (ctx, exe, decoded) in corpus_cases() {
        let a = accurate
            .run_one_decoded_on(&exe, &decoded, &limits, EngineKind::Interp)
            .unwrap();
        let p = pipelined.run_one_decoded(&exe, &decoded, &limits).unwrap();
        assert_eq!(a.stats.inst_mix, p.stats.inst_mix, "{ctx}: inst mix");
        assert!(!p.extrapolated, "{ctx}");
        let cycles = p.cycles.expect("pipelined tier reports a breakdown");
        assert!(
            cycles.total() >= p.stats.inst_mix.total() as f64,
            "{ctx}: an in-order pipeline retires at most one inst/cycle"
        );
    }
}

#[test]
fn pipelined_cycles_are_byte_identical_across_parallelism_and_engines() {
    // Every (engine, n_parallel) session over the same corpus slice
    // must report bit-equal cycle breakdowns — the determinism contract
    // that makes the timing tier usable under memoization.
    let cases = corpus_cases();
    let exes: Vec<simtune_isa::Executable> = cases
        .iter()
        .step_by(5)
        .map(|(_, exe, _)| exe.clone())
        .collect();
    let spec = FidelitySpec::Pipelined {
        btb: DEFAULT_BTB_ENTRIES,
        ras: DEFAULT_RAS_DEPTH,
    };
    let mut reference: Option<Vec<[u64; 3]>> = None;
    for engine in EngineKind::ALL {
        for n_parallel in [1, 2, 4] {
            let session = SimSession::builder()
                .fidelity(&spec, &hier())
                .n_parallel(n_parallel)
                .engine(engine)
                .build()
                .unwrap();
            let bits: Vec<[u64; 3]> = session
                .run(&exes)
                .into_iter()
                .map(|r| {
                    let c = r.unwrap().cycles.expect("pipelined session reports cycles");
                    [
                        c.pipeline.to_bits(),
                        c.memory.to_bits(),
                        c.control.to_bits(),
                    ]
                })
                .collect();
            match &reference {
                None => reference = Some(bits),
                Some(first) => assert_eq!(
                    first, &bits,
                    "{engine} at n_parallel = {n_parallel} moved the cycle counts"
                ),
            }
        }
    }
}

#[test]
fn every_tier_honors_engine_selection_identically() {
    // The same report must come back whatever replay engine a tier is
    // pinned to — the property that lets sessions treat the engine as a
    // pure host-speed knob.
    let tiers: Vec<Box<dyn SimBackend>> = vec![
        Box::new(AccurateBackend::new(hier())),
        Box::new(FastCountBackend::matching(&hier())),
        Box::new(SampledBackend::new(hier(), 0.5).unwrap().with_min_insts(1)),
        Box::new(PipelinedBackend::new(
            hier(),
            DEFAULT_BTB_ENTRIES,
            DEFAULT_RAS_DEPTH,
        )),
    ];
    let limits = RunLimits::default();
    for (ctx, exe, decoded) in corpus_cases().into_iter().step_by(7) {
        for tier in &tiers {
            let mut reports = EngineKind::ALL.iter().map(|&engine| {
                let mut r = tier
                    .run_one_decoded_on(&exe, &decoded, &limits, engine)
                    .unwrap();
                r.stats.host_nanos = 0;
                r
            });
            let first = reports.next().unwrap();
            for r in reports {
                assert_eq!(first, r, "{ctx}: {} disagrees across engines", tier.name());
            }
        }
    }
}
