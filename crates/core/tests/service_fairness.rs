//! The multi-tenant contract, end to end:
//!
//! * **Isolation** — two tenants tuning concurrently on one shared
//!   `SimService` each reproduce, bit for bit, the result they would
//!   have gotten tuning alone, at every pool width. Fair round-robin
//!   scheduling changes *when* a batch runs, never *what* it computes.
//! * **Warm start** — a tune over a cache restored from a snapshot
//!   reproduces the cold run's result exactly while executing zero
//!   simulations: every submission is answered by the memo.

use simtune_core::{
    collect_group_data, tune_with_predictor, CollectOptions, ScorePredictor, SimCache, SimService,
    SnapshotLoad, TuneOptions, TuneResult,
};
use simtune_hw::TargetSpec;
use simtune_predict::PredictorKind;
use simtune_tensor::{matmul, ComputeDef};
use std::sync::Arc;

struct Workload {
    def: ComputeDef,
    spec: TargetSpec,
    predictor: ScorePredictor,
    opts: TuneOptions,
}

fn workload(dim: usize, seed: u64) -> Workload {
    let def = matmul(dim, dim, dim);
    let spec = TargetSpec::riscv_u74();
    let data = collect_group_data(
        &def,
        &spec,
        0,
        &CollectOptions {
            n_impls: 14,
            n_parallel: 4,
            seed,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        },
    )
    .expect("collects");
    let mut predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", seed);
    predictor
        .train(std::slice::from_ref(&data))
        .expect("trains");
    let opts = TuneOptions {
        n_trials: 10,
        batch_size: 3,
        seed,
        ..TuneOptions::default()
    };
    Workload {
        def,
        spec,
        predictor,
        opts,
    }
}

/// Everything in a `TuneResult` that must be reproducible. Timings are
/// wall clock and deliberately excluded.
fn digest(r: &TuneResult) -> (Vec<(String, f64)>, usize, String, usize) {
    (
        r.history
            .iter()
            .map(|t| (t.description.clone(), t.score))
            .collect(),
        r.best_index,
        r.best().description.clone(),
        r.simulations,
    )
}

#[test]
fn concurrent_tenants_reproduce_their_solo_results_at_every_pool_width() {
    // The ground truth: each workload tuned alone, sequentially.
    // `ScorePredictor` is not `Sync` (it boxes a regressor), so each
    // concurrent tenant rebuilds its workload in its own thread;
    // collection and training are seed-deterministic, so the rebuilt
    // predictor scores identically to these baseline ones.
    let solo_a = {
        let a = workload(8, 11);
        digest(&tune_with_predictor(&a.def, &a.spec, &a.predictor, &a.opts).expect("a"))
    };
    let solo_b = {
        let b = workload(6, 23);
        digest(&tune_with_predictor(&b.def, &b.spec, &b.predictor, &b.opts).expect("b"))
    };
    let hierarchy = TargetSpec::riscv_u74().hierarchy;

    for n_parallel in [1usize, 2, 4] {
        let service = SimService::builder().n_parallel(n_parallel).build();
        let ta = service.open_accurate("alice", &hierarchy).expect("alice");
        let tb = service.open_accurate("bob", &hierarchy).expect("bob");

        let (ra, rb) = std::thread::scope(|s| {
            let ja = s.spawn(|| {
                let a = workload(8, 11);
                ta.tune(&a.def, &a.spec, &a.predictor, &a.opts)
                    .expect("alice")
            });
            let jb = s.spawn(|| {
                let b = workload(6, 23);
                tb.tune(&b.def, &b.spec, &b.predictor, &b.opts)
                    .expect("bob")
            });
            (
                ja.join().expect("alice thread"),
                jb.join().expect("bob thread"),
            )
        });

        assert_eq!(
            digest(&ra),
            solo_a,
            "alice diverged from her solo run at n_parallel={n_parallel}"
        );
        assert_eq!(
            digest(&rb),
            solo_b,
            "bob diverged from his solo run at n_parallel={n_parallel}"
        );

        // Per-tenant accounting is deterministic too: every submission
        // was a memo miss the first time its config appeared, and both
        // tenants did real work on the shared pool.
        let sa = ta.stats();
        let sb = tb.stats();
        assert!(sa.pool.trials > 0, "alice executed on the shared pool");
        assert!(sb.pool.trials > 0, "bob executed on the shared pool");
        assert_eq!(
            sa.memo.hits + sa.memo.misses,
            ra.simulations as u64,
            "alice's memo counters cover exactly her submissions"
        );
        assert_eq!(
            sb.memo.hits + sb.memo.misses,
            rb.simulations as u64,
            "bob's memo counters cover exactly his submissions"
        );
    }
}

#[test]
fn warm_loaded_snapshot_reproduces_the_cold_tune_with_zero_executions() {
    let w = workload(8, 42);
    let snap = std::env::temp_dir().join(format!("simtune_warm_tune_{}.json", std::process::id()));

    // Cold: tune on a fresh service, snapshot the cache it filled.
    let cold_service = SimService::builder().n_parallel(2).build();
    let cold = cold_service
        .open_accurate("cold", &w.spec.hierarchy)
        .expect("cold tenant");
    let cold_result = cold
        .tune(&w.def, &w.spec, &w.predictor, &w.opts)
        .expect("cold tune");
    assert!(cold.stats().pool.trials > 0, "cold run must execute");
    let written = cold_service.save_snapshot(&snap).expect("snapshot");
    assert!(written > 0);

    // Warm: a brand-new service whose only knowledge is the snapshot.
    let cache = Arc::new(SimCache::new());
    assert_eq!(
        cache.load_from(&snap).expect("load"),
        SnapshotLoad::Loaded(written)
    );
    let warm_service = SimService::builder().n_parallel(2).cache(cache).build();
    let warm = warm_service
        .open_accurate("warm", &w.spec.hierarchy)
        .expect("warm tenant");
    let warm_result = warm
        .tune(&w.def, &w.spec, &w.predictor, &w.opts)
        .expect("warm tune");

    assert_eq!(
        digest(&warm_result),
        digest(&cold_result),
        "warm tune must be bit-identical to the cold one"
    );
    let stats = warm.stats();
    assert_eq!(stats.pool.trials, 0, "warm tune must execute nothing");
    assert_eq!(stats.memo.misses, 0, "every submission must hit the memo");
    assert_eq!(stats.memo.hits, warm_result.simulations as u64);
    std::fs::remove_file(&snap).ok();
}
