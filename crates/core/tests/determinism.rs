//! Cross-thread determinism of the simulator runner: the same seed must
//! produce byte-identical simulator statistics whether candidates run on
//! 1, 2 or 4 parallel simulator instances. This is the trust layer every
//! future sharding/batching optimization is measured against.

use simtune_cache::HierarchyConfig;
use simtune_core::{KernelBuilder, SimulatorRunner};
use simtune_isa::{Executable, SimStats};
use simtune_tensor::{matmul, Schedule, TargetIsa};

const DATA_SEED: u64 = 0xD5EED;

fn build_candidates(n: usize) -> Vec<Executable> {
    let def = matmul(6, 8, 5);
    let mut builder = KernelBuilder::new(def.clone(), TargetIsa::riscv_u74());
    builder.data_seed = DATA_SEED;
    let schedule = Schedule::default_for(&def);
    (0..n)
        .map(|i| {
            builder
                .build(&schedule, &format!("cand{i}"))
                .expect("builds")
        })
        .collect()
}

/// Runs the candidates and strips `host_nanos`, the only field that
/// reflects host wall-clock rather than simulated behaviour; the
/// remaining statistics must be byte-identical across thread counts.
fn simulated_stats(n_parallel: usize, exes: &[Executable]) -> Vec<SimStats> {
    let runner = SimulatorRunner::new(HierarchyConfig::riscv_u74()).with_n_parallel(n_parallel);
    runner
        .run(exes)
        .into_iter()
        .map(|r| {
            let mut s = r.expect("simulation succeeds");
            s.host_nanos = 0;
            s
        })
        .collect()
}

#[test]
fn same_seed_identical_stats_across_thread_counts() {
    let exes = build_candidates(9);
    let serial = simulated_stats(1, &exes);
    for n_parallel in [2, 4] {
        let parallel = simulated_stats(n_parallel, &exes);
        assert_eq!(
            serial, parallel,
            "n_parallel = {n_parallel} diverged from the serial run"
        );
    }
}

#[test]
fn repeated_parallel_runs_are_reproducible() {
    // Two fresh runner instances at the same parallelism: no shared
    // state, still identical output (the scheduler order must not leak
    // into the statistics).
    let exes = build_candidates(8);
    assert_eq!(simulated_stats(4, &exes), simulated_stats(4, &exes));
}

#[test]
fn different_data_seed_changes_nothing_but_data() {
    // The instruction stream is seed-independent for a fixed schedule;
    // only the prepared tensor payloads differ. Instruction counts must
    // therefore match across builder seeds.
    let def = matmul(6, 8, 5);
    let schedule = Schedule::default_for(&def);
    let mut a = KernelBuilder::new(def.clone(), TargetIsa::riscv_u74());
    a.data_seed = 1;
    let mut b = KernelBuilder::new(def, TargetIsa::riscv_u74());
    b.data_seed = 2;
    let ea = a.build(&schedule, "a").expect("builds");
    let eb = b.build(&schedule, "b").expect("builds");
    let sa = simulated_stats(1, &[ea]);
    let sb = simulated_stats(1, &[eb]);
    assert_eq!(sa[0].inst_mix, sb[0].inst_mix);
}
