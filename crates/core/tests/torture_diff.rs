//! End-to-end differential-harness suite: the whole scenario corpus
//! through the full engine × fidelity × parallelism matrix, plus the
//! shrinker acceptance criterion — an injected synthetic divergence
//! must delta-debug down to a repro of at most 16 instructions.

use simtune_cache::HierarchyConfig;
use simtune_core::diffharness::DiffHarness;
use simtune_core::{AccurateBackend, BackendError, Fidelity, SimBackend, SimReport};
use simtune_isa::{
    shrink_program, torture_program_with, Executable, Inst, RunLimits, TortureConfig,
};
use std::sync::OnceLock;

/// One harness for the whole suite: its six worker-pool sessions are
/// the expensive part, and every test reuses them.
fn harness() -> &'static DiffHarness {
    static H: OnceLock<DiffHarness> = OnceLock::new();
    H.get_or_init(DiffHarness::tiny)
}

#[test]
fn corpus_sweep_finds_no_divergence_across_the_matrix() {
    let mut faulted = 0u32;
    for (scenario, cfg) in TortureConfig::corpus() {
        for seed in 0..4 {
            let outcome = harness().run_case(scenario, &cfg, seed);
            assert!(
                outcome.passed(),
                "{scenario} seed {seed} diverged:\n{}",
                outcome
                    .divergences
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n")
            );
            // 41 = 3 engine diffs + 5 tiers × 4 engines (incl. the
            // pipelined timing tier) + 6 sessions × 3 trials.
            assert!(outcome.combos > 40, "{scenario} seed {seed}: matrix shrank");
            faulted += outcome.faulted as u32;
        }
    }
    // The fault-prone scenario must actually exercise the error-identity
    // half of the diff, not just the statistics half. Its fault sites
    // are guarded by data-dependent branches, so scan further seeds
    // until one trips.
    let (_, fault_cfg) = TortureConfig::corpus()
        .into_iter()
        .find(|(n, _)| *n == "fault-prone")
        .expect("corpus has a fault-prone scenario");
    for seed in 4..256 {
        if faulted > 0 {
            break;
        }
        let outcome = harness().run_case("fault-prone", &fault_cfg, seed);
        assert!(outcome.passed(), "fault-prone seed {seed} diverged");
        faulted += outcome.faulted as u32;
    }
    assert!(faulted > 0, "no case faulted — fault injection is dead");
}

#[test]
fn shrink_case_returns_none_when_nothing_diverges() {
    assert!(harness()
        .shrink_case("baseline", &TortureConfig::baseline(), 3)
        .is_none());
}

/// An accurate backend with a planted bug: whenever the program
/// contains a `Mul`, one retired-instruction counter is inflated. The
/// divergence is thus reachable from program *content*, which is what
/// the shrinker minimizes over.
struct MulCorruptingBackend {
    inner: AccurateBackend,
}

impl MulCorruptingBackend {
    fn new() -> Self {
        MulCorruptingBackend {
            inner: AccurateBackend::new(HierarchyConfig::tiny_for_tests()),
        }
    }

    fn corrupt(&self, exe: &Executable, mut report: SimReport) -> SimReport {
        if exe
            .program
            .insts()
            .iter()
            .any(|i| matches!(i, Inst::Mul { .. }))
        {
            report.stats.inst_mix.int_alu += 1;
        }
        report
    }
}

impl SimBackend for MulCorruptingBackend {
    fn name(&self) -> &str {
        "accurate-with-planted-bug"
    }

    fn fidelity(&self) -> Fidelity {
        Fidelity::Accurate
    }

    fn run_one(&self, exe: &Executable, limits: &RunLimits) -> Result<SimReport, BackendError> {
        self.inner
            .run_one(exe, limits)
            .map(|r| self.corrupt(exe, r))
    }

    fn run_one_decoded_on(
        &self,
        exe: &Executable,
        decoded: &simtune_isa::DecodedProgram,
        limits: &RunLimits,
        engine: simtune_isa::EngineKind,
    ) -> Result<SimReport, BackendError> {
        self.inner
            .run_one_decoded_on(exe, decoded, limits, engine)
            .map(|r| self.corrupt(exe, r))
    }
}

#[test]
fn shrinker_reduces_injected_divergence_to_a_tiny_repro() {
    let harness = harness();
    let reference = AccurateBackend::new(HierarchyConfig::tiny_for_tests());
    let buggy = MulCorruptingBackend::new();
    let engine = simtune_isa::EngineKind::Decoded;

    // Find a torture case that trips the planted bug (contains a Mul
    // and completes). The baseline corpus is Mul-rich, so the first
    // seeds suffice.
    let (exe, original_len) = (0..32)
        .find_map(|seed| {
            let prog = torture_program_with(&TortureConfig::baseline(), seed);
            let len = prog.len();
            let exe = DiffHarness::make_executable("baseline", &TortureConfig::baseline(), seed, 7);
            (!harness
                .diff_backend_pair(&reference, &buggy, &exe, engine)
                .is_empty())
            .then_some((exe, len))
        })
        .expect("some baseline seed must trip the planted Mul bug");
    assert!(
        original_len > 16,
        "witness program already tiny ({original_len} insts) — not a shrink test"
    );

    let shrunk = shrink_program(&exe.program, |candidate| {
        let cand = Executable {
            program: candidate.clone(),
            ..exe.clone()
        };
        !harness
            .diff_backend_pair(&reference, &buggy, &cand, engine)
            .is_empty()
    });

    // The acceptance bar: a minimal repro of at most 16 instructions
    // that still diverges.
    assert!(
        shrunk.len() <= 16,
        "shrinker left {} of {} instructions",
        shrunk.len(),
        original_len
    );
    let still = Executable {
        program: shrunk.clone(),
        ..exe.clone()
    };
    assert!(
        !harness
            .diff_backend_pair(&reference, &buggy, &still, engine)
            .is_empty(),
        "shrunk program no longer diverges:\n{}",
        shrunk.disassemble()
    );
    assert!(
        shrunk.insts().iter().any(|i| matches!(i, Inst::Mul { .. })),
        "minimal repro lost the triggering opcode"
    );
}
