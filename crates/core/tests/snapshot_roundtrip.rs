//! Property test: a `SimCache` snapshot is a lossless, layout-free
//! round trip. Whatever mix of fidelities, shard counts and capacity
//! bounds produced the cache, `save_to` → `load_from` must rebuild
//! bit-identical `SimReport`s — and two equal caches must serialize to
//! byte-identical files, so snapshots can be compared and deduplicated
//! by content.

use proptest::prelude::*;
use simtune_core::{CycleBreakdown, Fidelity, SimCache, SimReport, SnapshotLoad};
use simtune_isa::SimStats;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fingerprints embed raw little-endian f32 bytes in production, so the
/// keys here deliberately include non-UTF-8 bytes.
fn key(idx: u8) -> Vec<u8> {
    let mut k = vec![0xFF, idx, 0x00];
    k.extend(format!("snap-{idx}").into_bytes());
    k.extend(std::iter::repeat_n(idx, usize::from(idx) % 5));
    k
}

fn fidelity(selector: u8, marker: u64) -> Fidelity {
    match selector % 5 {
        0 => Fidelity::Accurate,
        1 => Fidelity::CountOnly,
        2 => Fidelity::Sampled {
            fraction: (marker % 1000) as f64 / 1000.0,
        },
        3 => Fidelity::Pipelined,
        _ => Fidelity::Custom,
    }
}

fn report(marker: u64, selector: u8) -> SimReport {
    let fid = fidelity(selector, marker);
    SimReport {
        stats: SimStats {
            host_nanos: marker,
            ..SimStats::default()
        },
        backend: format!("backend-{}", selector % 3),
        fidelity: fid,
        extrapolated: matches!(fid, Fidelity::Sampled { .. }),
        // Fractional components so the round trip covers the bit-exact
        // f64 encoding, not just integral values.
        cycles: matches!(fid, Fidelity::Pipelined).then(|| CycleBreakdown {
            pipeline: marker as f64 + 0.25,
            memory: (marker % 97) as f64 / 3.0,
            control: (marker % 13) as f64,
        }),
    }
}

/// A process-unique, test-unique temp path; proptest shrinking reruns
/// cases, so every invocation gets a fresh file.
fn temp_snapshot() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "simtune_snapshot_prop_{}_{n}.json",
        std::process::id()
    ))
}

fn fill(cache: &SimCache, idxs: &[u8], markers: &[u64], selectors: &[u8]) {
    for (i, &idx) in idxs.iter().enumerate() {
        cache.insert(
            key(idx),
            report(markers[i % markers.len()], selectors[i % selectors.len()]),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unbounded, across shard layouts: every surviving entry loads
    /// back bit-identical, and re-saving the loaded cache reproduces
    /// the original file byte for byte.
    #[test]
    fn snapshot_roundtrips_sharded_caches(
        idxs in prop::collection::vec(0u8..32, 1..80),
        markers in prop::collection::vec(0u64..100_000, 1..80),
        selectors in prop::collection::vec(any::<u8>(), 1..80),
        save_shards in 1usize..9,
        load_shards in 1usize..9,
    ) {
        let path = temp_snapshot();
        let original = SimCache::with_shards(save_shards);
        fill(&original, &idxs, &markers, &selectors);
        let written = original.save_to(&path).expect("saves");
        prop_assert_eq!(written, original.len());

        let restored = SimCache::with_shards(load_shards);
        let loaded = restored.load_from(&path).expect("reads");
        prop_assert_eq!(loaded, SnapshotLoad::Loaded(written));
        prop_assert_eq!(restored.len(), original.len());
        for &idx in &idxs {
            let k = key(idx);
            prop_assert_eq!(original.lookup(&k), restored.lookup(&k));
        }

        // Equal contents ⇒ equal bytes, regardless of shard layout.
        let again = temp_snapshot();
        restored.save_to(&again).expect("re-saves");
        prop_assert_eq!(
            std::fs::read(&path).expect("original bytes"),
            std::fs::read(&again).expect("re-saved bytes")
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&again).ok();
    }

    /// Bounded: a snapshot of a bounded cache restores its resident
    /// set, and loading into a bounded cache never exceeds capacity.
    #[test]
    fn snapshot_roundtrips_bounded_caches(
        idxs in prop::collection::vec(0u8..32, 1..80),
        markers in prop::collection::vec(0u64..100_000, 1..80),
        selectors in prop::collection::vec(any::<u8>(), 1..80),
        cap in 1usize..16,
        shards in 1usize..9,
    ) {
        let path = temp_snapshot();
        let original = SimCache::bounded_with_shards(cap, shards);
        fill(&original, &idxs, &markers, &selectors);
        prop_assert!(original.len() <= cap);
        let written = original.save_to(&path).expect("saves");
        prop_assert_eq!(written, original.len());

        // Restoring into an unbounded cache keeps every entry…
        let unbounded = SimCache::new();
        unbounded.load_from(&path).expect("reads");
        prop_assert_eq!(unbounded.len(), written);

        // …and restoring into an equally bounded cache obeys its cap.
        let bounded = SimCache::bounded_with_shards(cap, 1);
        bounded.load_from(&path).expect("reads");
        prop_assert!(bounded.len() <= cap);
        std::fs::remove_file(&path).ok();
    }
}
