//! Determinism of the persistent worker-pool pipeline: a fixed-seed
//! tuning sweep must produce a bit-identical `TuneResult` — same
//! candidates, same visit order, same scores, same best — at every
//! `n_parallel`, and with an (unbounded) memo cache attached the
//! cache's hit/miss counters must match too, because the hit/miss
//! decision is made on the submitting thread in submission order, never
//! by racing workers.
//!
//! This is the acceptance gate for the pool + pipelining tentpole: if
//! overlap or chunked work-stealing ever leaks into results or memo
//! accounting, these tests catch it.

use simtune_core::{
    collect_group_data, tune_with_predictor, CollectOptions, EngineKind, ScorePredictor, SimCache,
    SimSession, StrategySpec, TuneOptions, TuneResult,
};
use simtune_hw::TargetSpec;
use simtune_predict::PredictorKind;
use simtune_tensor::{matmul, ComputeDef, Schedule, TargetIsa};
use std::sync::Arc;

const PARALLELISMS: [usize; 4] = [1, 2, 4, 8];

fn workload() -> (ComputeDef, TargetSpec, ScorePredictor) {
    let def = matmul(8, 8, 8);
    let spec = TargetSpec::riscv_u74();
    let data = collect_group_data(
        &def,
        &spec,
        0,
        &CollectOptions {
            n_impls: 16,
            n_parallel: 4,
            seed: 5,
            max_attempts_factor: 40,
            ..CollectOptions::default()
        },
    )
    .expect("collects");
    let mut predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
    predictor
        .train(std::slice::from_ref(&data))
        .expect("trains");
    (def, spec, predictor)
}

/// Everything observable about a tuning run except wall-clock timings.
fn digest(r: &TuneResult) -> (Vec<(String, u64)>, usize, String, u64, u64, usize) {
    (
        r.history
            .iter()
            .map(|rec| (rec.description.clone(), rec.score.to_bits()))
            .collect(),
        r.best_index,
        r.strategy.clone(),
        r.convergence.observed,
        r.convergence.trials_to_best,
        r.simulations,
    )
}

#[test]
fn memoized_sweep_is_bit_identical_at_every_parallelism() {
    let (def, spec, predictor) = workload();
    let mut reference = None;
    for n_parallel in PARALLELISMS {
        // A fresh cache per parallelism level: the counters themselves
        // are part of the contract being compared.
        let cache = Arc::new(SimCache::new());
        let result = tune_with_predictor(
            &def,
            &spec,
            &predictor,
            &TuneOptions {
                n_trials: 24,
                batch_size: 6,
                n_parallel,
                seed: 17,
                memo_cache: Some(cache.clone()),
                ..TuneOptions::default()
            },
        )
        .expect("tunes");
        let d = (digest(&result), cache.stats().hits, cache.stats().misses);
        match &reference {
            None => reference = Some(d),
            Some(first) => assert_eq!(
                first, &d,
                "n_parallel = {n_parallel} diverged from the serial run"
            ),
        }
    }
    // Sanity: the sweep actually produced work and counters.
    let (digest, hits, misses) = reference.unwrap();
    assert_eq!(digest.0.len(), 24);
    assert_eq!(hits + misses, 24, "every trial consults the cache once");
}

#[test]
fn soa_batched_sweep_is_bit_identical_to_decoded_at_every_parallelism() {
    // The SoA replay path regroups a batch's trials and finishes
    // diverged lanes scalar — none of which may leak into results: a
    // sweep on `EngineKind::Batch` must reproduce the decoded-engine
    // sweep bit-for-bit at every parallelism.
    let (def, spec, predictor) = workload();
    let mut reference = None;
    for engine in [EngineKind::Decoded, EngineKind::Batch] {
        for n_parallel in [1, 2, 4] {
            let result = tune_with_predictor(
                &def,
                &spec,
                &predictor,
                &TuneOptions {
                    n_trials: 24,
                    batch_size: 6,
                    n_parallel,
                    seed: 17,
                    engine,
                    ..TuneOptions::default()
                },
            )
            .expect("tunes");
            assert!(
                result.replay_nanos > 0,
                "scored trials must accumulate replay time"
            );
            let d = digest(&result);
            match &reference {
                None => reference = Some(d),
                Some(first) => assert_eq!(
                    first, &d,
                    "{engine} at n_parallel = {n_parallel} diverged from the decoded serial run"
                ),
            }
        }
    }
}

#[test]
fn guided_strategies_stay_deterministic_under_the_pool() {
    // Evolutionary search is not pipeline-safe: the loop must fall back
    // to strict sequencing and still match across thread counts.
    let (def, spec, predictor) = workload();
    for strategy in [StrategySpec::Evolutionary, StrategySpec::Annealing] {
        let mut reference = None;
        for n_parallel in PARALLELISMS {
            let result = tune_with_predictor(
                &def,
                &spec,
                &predictor,
                &TuneOptions {
                    n_trials: 16,
                    batch_size: 4,
                    n_parallel,
                    seed: 23,
                    strategy: strategy.clone(),
                    ..TuneOptions::default()
                },
            )
            .expect("tunes");
            let d = digest(&result);
            match &reference {
                None => reference = Some(d),
                Some(first) => assert_eq!(
                    first,
                    &d,
                    "{} at n_parallel = {n_parallel} diverged",
                    strategy.label()
                ),
            }
        }
    }
}

#[test]
fn duplicate_heavy_batches_keep_deterministic_memo_counts() {
    // One schedule under many names, submitted as one batch: the first
    // trial executes (miss), every other rides along as a follower
    // (hit) — at every parallelism, including the duplicates racing the
    // leader's completion.
    let def = matmul(6, 6, 6);
    let builder = simtune_core::KernelBuilder::new(def.clone(), TargetIsa::riscv_u74());
    let schedule = Schedule::default_for(&def);
    let exes: Vec<_> = (0..12)
        .map(|i| builder.build(&schedule, &format!("dup{i}")).unwrap())
        .collect();
    for n_parallel in PARALLELISMS {
        let cache = Arc::new(SimCache::new());
        let session = SimSession::builder()
            .accurate(&simtune_cache::HierarchyConfig::riscv_u74())
            .n_parallel(n_parallel)
            .memo_cache(cache.clone())
            .build()
            .unwrap();
        let reports: Vec<_> = session
            .run(&exes)
            .into_iter()
            .map(|r| r.expect("simulates"))
            .collect();
        assert_eq!(cache.stats().misses, 1, "n_parallel = {n_parallel}");
        assert_eq!(cache.stats().hits, 11, "n_parallel = {n_parallel}");
        assert_eq!(cache.len(), 1);
        for r in &reports[1..] {
            assert_eq!(r, &reports[0], "followers replay the leader's report");
        }
        let pool = session.pool_stats();
        assert_eq!(pool.trials, 1, "only the leader executed");
    }
}

#[test]
fn submit_overlaps_with_caller_work_and_preserves_order() {
    // The async path: submit two batches back to back, do "producer
    // work" in between, then drain both — results must line up with
    // submission order, and the session must keep serving afterwards.
    let def = matmul(6, 8, 5);
    let builder = simtune_core::KernelBuilder::new(def.clone(), TargetIsa::riscv_u74());
    let schedule = Schedule::default_for(&def);
    let batch_a: Vec<_> = (0..5)
        .map(|i| builder.build(&schedule, &format!("a{i}")).unwrap())
        .collect();
    let batch_b: Vec<_> = (0..5)
        .map(|i| builder.build(&schedule, &format!("b{i}")).unwrap())
        .collect();
    let session = SimSession::builder()
        .fast_count(&simtune_cache::HierarchyConfig::riscv_u74())
        .n_parallel(4)
        .build()
        .unwrap();
    let ticket_a = session.submit(batch_a.clone());
    let ticket_b = session.submit(batch_b.clone());
    let serial: Vec<_> = session.run(&batch_a);
    let a = ticket_a.wait();
    let b = ticket_b.wait();
    for ((x, y), z) in a.iter().zip(&b).zip(&serial) {
        let (x, y, z) = (
            x.as_ref().unwrap(),
            y.as_ref().unwrap(),
            z.as_ref().unwrap(),
        );
        assert_eq!(x.stats.inst_mix, y.stats.inst_mix);
        assert_eq!(x.stats.inst_mix, z.stats.inst_mix);
    }
    let stats = session.pool_stats();
    assert_eq!(stats.trials, 15);
    assert_eq!(stats.batches, 3);
    assert!(stats.busy_nanos > 0);
    assert!(stats.utilization() <= 1.0);
}
