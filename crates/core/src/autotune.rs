//! Tuners and the execution-phase tuning loop.
//!
//! Mirrors the search side of the paper's Fig. 2: a pluggable
//! [`SearchStrategy`] generates candidate implementations batch-wise;
//! candidates are built, executed on `n_parallel` simulators, scored (by
//! a trained score predictor or by hardware measurement), and the
//! strategy evolves the next batch from the scores. Which strategy runs
//! is selected through [`TuneOptions::strategy`]; the default
//! [`RandomSearch`](crate::RandomSearch) reproduces the historical
//! random-sampling tuner bit-for-bit.

use crate::backend::{SimBackend, SimSession};
use crate::features::WindowKind;
use crate::fidelity::FidelitySpec;
use crate::memo::SimCache;
use crate::metrics::{ConvergenceStats, PredictorStats, StageTimings};
use crate::pool::BatchTicket;
use crate::predicted::{shared_predictor, OnlinePredictor, PredictedBackend, Prediction};
use crate::runner::{HardwareRunner, KernelBuilder};
use crate::score::ScorePredictor;
use crate::search::{Evaluation, SearchStrategy, StrategySpec};
use crate::CoreError;
use simtune_hw::TargetSpec;
use simtune_isa::EngineKind;
use simtune_predict::PredictorKind;
use simtune_tensor::{ComputeDef, Schedule, SketchGenerator, SketchParams};
use std::sync::Arc;
use std::time::Instant;

/// Options of one tuning session.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Total candidates to evaluate.
    pub n_trials: usize,
    /// Candidates per batch (the Auto-Scheduler generates batch-wise).
    pub batch_size: usize,
    /// Parallel simulator instances.
    pub n_parallel: usize,
    /// Window policy for score normalization during inference.
    pub window: WindowKind,
    /// Base seed (drives the search strategy and, for the hardware flow,
    /// the measurement noise).
    pub seed: u64,
    /// Which [`SearchStrategy`] proposes candidates. The default
    /// [`StrategySpec::Random`] reproduces the pre-subsystem sampling
    /// loop bit-identically; [`StrategySpec::Custom`] plugs in any boxed
    /// user strategy.
    pub strategy: StrategySpec,
    /// Simulation memo cache attached to every session this tuning run
    /// creates. Share one `Arc<SimCache>` across runs (or with
    /// [`crate::CollectOptions::memo_cache`]) so candidates revisited
    /// anywhere in the workflow skip the backend entirely. `None`
    /// disables memoization.
    pub memo_cache: Option<Arc<SimCache>>,
    /// Replay engine used by every simulator session this run creates —
    /// a pure host-speed knob, pinned bit-identical across engines by
    /// the equivalence suite. [`EngineKind::Batch`] additionally lets
    /// backends that support it replay same-program trials of one
    /// submission as a single SoA batch.
    pub engine: EngineKind,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            n_trials: 64,
            batch_size: 16,
            n_parallel: 8,
            window: WindowKind::Dynamic,
            seed: 0,
            strategy: StrategySpec::default(),
            memo_cache: None,
            engine: EngineKind::default(),
        }
    }
}

/// One evaluated candidate in a tuning history.
#[derive(Debug, Clone)]
pub struct TuneRecord {
    /// Genotype description.
    pub description: String,
    /// The applied schedule.
    pub schedule: Schedule,
    /// Score assigned during tuning (lower = better; predictor score or
    /// measured seconds depending on the flow).
    pub score: f64,
}

/// Result of a tuning session.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Every evaluated candidate, in evaluation order.
    pub history: Vec<TuneRecord>,
    /// Index of the best candidate in `history`.
    pub best_index: usize,
    /// Label of the strategy that drove the search.
    pub strategy: String,
    /// The strategy's convergence counters at the end of the run.
    pub convergence: ConvergenceStats,
    /// Executions submitted to the backing evaluator: simulator runs for
    /// the simulator flows, hardware measurements for
    /// [`tune_on_hardware`]. With a memo cache attached this counts
    /// submissions, not backend executions — see
    /// [`crate::SimCache::stats`] for hit/miss counters.
    pub simulations: usize,
    /// Producer-side wall time per pipeline stage. `sim_nanos` only
    /// counts time the loop *blocked* on simulation — with a
    /// pipeline-safe strategy, simulation overlapped by the build of the
    /// next batch is invisible here. Wall-clock values: identical
    /// reruns produce identical history but different timings.
    pub timings: StageTimings,
    /// Online-model counters when the run used the learned
    /// [`EscalationPolicy::Uncertainty`] tier; `None` for every other
    /// flow.
    pub predictor: Option<PredictorStats>,
    /// Host nanoseconds the backends reported spending inside simulator
    /// replay for this run's scored candidates (Σ
    /// [`simtune_isa::SimStats::host_nanos`] over successful reports;
    /// memo hits contribute the stored value). The denominator for the
    /// per-engine replay-throughput counters in the perf harness; `0`
    /// for [`tune_on_hardware`], which never replays.
    pub replay_nanos: u64,
}

impl TuneResult {
    /// The best candidate's record.
    pub fn best(&self) -> &TuneRecord {
        &self.history[self.best_index]
    }
}

/// Execution-phase tuning (Fig. 4-II): candidates run **only on the
/// simulator**; a trained [`ScorePredictor`] turns statistics into
/// scores. The target hardware is not needed — the scenario that enables
/// pre-silicon tuning and cross-ISA tuning on x86 hosts.
///
/// The strategy configured in [`TuneOptions::strategy`] proposes the
/// candidates; every strategy composes with the memo cache and any
/// backend because the loop is strategy-agnostic.
///
/// # Errors
///
/// Propagates pipeline failures; individual failed candidates are
/// penalized, not fatal.
pub fn tune_with_predictor(
    def: &ComputeDef,
    spec: &TargetSpec,
    predictor: &ScorePredictor,
    opts: &TuneOptions,
) -> Result<TuneResult, CoreError> {
    let session = SimSession::builder()
        .accurate(&spec.hierarchy)
        .n_parallel(opts.n_parallel)
        .memo_cache_opt(opts.memo_cache.clone())
        .engine(opts.engine)
        .build()?;
    tune_with_predictor_on(def, spec, predictor, opts, &session)
}

/// [`tune_with_predictor`] on a caller-provided session instead of a
/// freshly built one — the entry point [`crate::SimService`] tenants
/// use, so N concurrent tuning loops share one worker pool and one memo
/// cache. `opts.n_parallel` and `opts.memo_cache` are ignored in favor
/// of the session's own pool and cache.
///
/// # Errors
///
/// Propagates pipeline failures; individual failed candidates are
/// penalized, not fatal.
pub fn tune_with_predictor_on(
    def: &ComputeDef,
    spec: &TargetSpec,
    predictor: &ScorePredictor,
    opts: &TuneOptions,
    session: &SimSession,
) -> Result<TuneResult, CoreError> {
    if !predictor.is_trained() {
        return Err(CoreError::Pipeline("predictor is not trained".into()));
    }
    let generator = SketchGenerator::new(def, spec.isa.clone());
    let mut strategy = opts.strategy.build_sketch(generator.clone(), opts.seed);
    let (history, sim_runs, timings, replay_nanos) =
        explore(&generator, def, predictor, strategy.as_mut(), opts, session)?;
    finish(history, strategy.as_ref(), sim_runs, timings, replay_nanos)
}

/// A proposed-and-built batch whose simulation is in flight on the
/// session's worker pool.
struct StagedBatch<P> {
    kept: Vec<P>,
    failed: Vec<P>,
    ticket: BatchTicket,
}

impl<P> StagedBatch<P> {
    fn trials(&self) -> usize {
        self.kept.len() + self.failed.len()
    }
}

/// The shared exploration loop: the strategy proposes batch-wise, the
/// loop builds, runs on `session`'s backend, scores with `predictor`,
/// and feeds the evaluations back. Returns the full evaluation history,
/// the number of simulations submitted (successful builds handed to the
/// session, whether memoized, failed or completed), the per-stage
/// producer timings and the summed replay host-nanoseconds.
///
/// The loop is *pipelined*: batches are submitted asynchronously
/// ([`SimSession::submit`]), and when the strategy's proposals cannot
/// depend on scores ([`SearchStrategy::pipeline_safe`]) the next batch
/// is proposed and built **while the previous one simulates** on the
/// persistent pool — the Pac-Sim overlap trick, applied to lowering.
/// Guided strategies keep strict propose → simulate → observe
/// sequencing, so the visit order is bit-identical to the sequential
/// loop for every strategy, at every `n_parallel`.
fn explore(
    generator: &SketchGenerator,
    def: &ComputeDef,
    predictor: &ScorePredictor,
    strategy: &mut dyn SearchStrategy<SketchParams>,
    opts: &TuneOptions,
    session: &SimSession,
) -> Result<(Vec<TuneRecord>, usize, StageTimings, u64), CoreError> {
    let builder = KernelBuilder::new(def.clone(), generator.target().clone());

    let mut history: Vec<TuneRecord> = Vec::new();
    let mut evaluations: Vec<Evaluation<SketchParams>> = Vec::new();
    let mut sim_runs = 0usize;
    let mut timings = StageTimings::default();
    let mut replay_nanos = 0u64;
    let pipelined = strategy.pipeline_safe();
    // One normalizer for the whole session: the window means evolve over
    // the full candidate stream, not per batch.
    let mut normalizer = crate::features::WindowNormalizer::new(opts.window);
    let mut inflight: Option<StagedBatch<SketchParams>> = None;
    let mut exhausted = false;
    loop {
        // Stage the next batch. With a pipeline-safe strategy this
        // happens while `inflight` is still simulating; otherwise only
        // when nothing is in flight (scores must reach `observe` first).
        let committed = history.len() + inflight.as_ref().map_or(0, StagedBatch::trials);
        let staged = if !exhausted && committed < opts.n_trials && (pipelined || inflight.is_none())
        {
            let want = opts.batch_size.min(opts.n_trials - committed);
            let t0 = Instant::now();
            let batch = strategy.propose(&evaluations, want);
            timings.propose_nanos += t0.elapsed().as_nanos() as u64;
            if batch.is_empty() {
                exhausted = true; // search space exhausted
                None
            } else {
                // Build; drop failures with a penalty score.
                let t0 = Instant::now();
                let mut exes = Vec::new();
                let mut kept: Vec<SketchParams> = Vec::new();
                let mut failed: Vec<SketchParams> = Vec::new();
                for p in batch {
                    let schedule = generator.schedule(&p);
                    match builder.build(&schedule, &format!("{}t{committed}", def.name)) {
                        Ok(e) => {
                            exes.push(e);
                            kept.push(p);
                        }
                        Err(_) => failed.push(p),
                    }
                }
                timings.build_nanos += t0.elapsed().as_nanos() as u64;
                sim_runs += exes.len();
                let ticket = session.submit(exes);
                Some(StagedBatch {
                    kept,
                    failed,
                    ticket,
                })
            }
        } else {
            None
        };

        let finished = inflight.take();
        inflight = staged;
        let Some(done) = finished else {
            if inflight.is_none() {
                break;
            }
            continue;
        };

        // Drain, score and observe the finished batch in submission
        // order — parallelism and pipelining never reorder the stream
        // the window normalizer and the strategy see.
        let t0 = Instant::now();
        let stats = done.ticket.wait();
        timings.sim_nanos += t0.elapsed().as_nanos() as u64;
        let t0 = Instant::now();
        let mut batch_evals: Vec<Evaluation<SketchParams>> = Vec::new();
        for (p, s) in done.kept.into_iter().zip(stats) {
            let score = match s {
                Ok(report) => {
                    replay_nanos += report.stats.host_nanos;
                    predictor.score_streaming(&report.stats, &mut normalizer)?
                }
                Err(_) => f64::INFINITY,
            };
            batch_evals.push(Evaluation { point: p, score });
        }
        for p in done.failed {
            batch_evals.push(Evaluation {
                point: p,
                score: f64::INFINITY,
            });
        }
        strategy.observe(&batch_evals);
        for e in &batch_evals {
            history.push(TuneRecord {
                schedule: generator.schedule(&e.point),
                description: format!("{:?}", e.point),
                score: e.score,
            });
        }
        evaluations.extend(batch_evals);
        timings.score_nanos += t0.elapsed().as_nanos() as u64;
    }
    Ok((history, sim_runs, timings, replay_nanos))
}

/// Options of the fidelity-escalation mode: how many finalists graduate
/// from the cheap exploration tier to the accurate tier.
#[derive(Debug, Clone)]
pub struct EscalationOptions {
    /// Finalists re-simulated on the accurate backend (the paper-style
    /// trade: exploration breadth at low fidelity, final ranking at full
    /// fidelity).
    pub top_k: usize,
    /// Exploration tier, named uniformly as a [`FidelitySpec`] — e.g.
    /// `FidelitySpec::Pipelined { .. }` for cycle-aware exploration.
    /// When unset, falls back to `sample_fraction` and then to the
    /// default [`FidelitySpec::FastCount`].
    pub explore: Option<FidelitySpec>,
    /// When set (and [`EscalationOptions::explore`] is not), exploration
    /// uses a [`crate::SampledBackend`] at this fraction instead of the
    /// default [`crate::FastCountBackend`] — a middle tier for workloads whose ranking
    /// is cache-sensitive. Prefer `explore:
    /// Some(FidelitySpec::Sampled { fraction })`, which this field
    /// predates.
    pub sample_fraction: Option<f64>,
    /// How candidates graduate to the accurate tier. The default
    /// [`EscalationPolicy::TopK`] keeps the original static-finalist
    /// behavior (and is the only mode that reads `top_k`);
    /// [`EscalationPolicy::Uncertainty`] activates the learned
    /// [`crate::PredictedBackend`] tier with active-learning
    /// escalation.
    pub policy: EscalationPolicy,
}

impl Default for EscalationOptions {
    fn default() -> Self {
        EscalationOptions {
            top_k: 8,
            explore: None,
            sample_fraction: None,
            policy: EscalationPolicy::TopK,
        }
    }
}

/// The exploration tier an [`EscalationOptions`] names: `explore` wins,
/// the legacy `sample_fraction` shim comes second, and the historical
/// fast-count default closes the chain.
fn explore_spec(esc: &EscalationOptions) -> FidelitySpec {
    esc.explore
        .clone()
        .or_else(|| {
            esc.sample_fraction
                .map(|fraction| FidelitySpec::Sampled { fraction })
        })
        .unwrap_or(FidelitySpec::FastCount)
}

/// Which candidates graduate from the cheap exploration tier to the
/// accurate tier in [`tune_with_fidelity_escalation`].
#[derive(Debug, Clone, Default)]
pub enum EscalationPolicy {
    /// Static finalists: after exploration, the `top_k` best cheap-tier
    /// scores are re-simulated accurately — simple, but pays for
    /// `top_k` accurate runs no matter how confident the ranking is.
    #[default]
    TopK,
    /// Uncertainty-driven active learning: an online model
    /// ([`crate::OnlinePredictor`]) is trained on escalated candidates
    /// *during* the sweep, and a candidate graduates only while the
    /// model is cold or its lower confidence bound still overlaps the
    /// incumbent best accurate score. The final winner is always
    /// re-verified on the accurate tier.
    Uncertainty(UncertaintyPolicy),
}

/// Tuning knobs of [`EscalationPolicy::Uncertainty`].
#[derive(Debug, Clone)]
pub struct UncertaintyPolicy {
    /// Model family the online predictor trains. The default
    /// [`PredictorKind::Bayes`] provides a true GP posterior variance;
    /// the other families report ensemble or residual spreads.
    pub predictor: PredictorKind,
    /// Confidence multiplier `β`: a candidate escalates while
    /// `mean − β·std ≤ incumbent`. Larger values escalate more
    /// (cautious); `0.0` escalates only candidates predicted to beat
    /// the incumbent outright.
    pub confidence: f64,
    /// Observations required before the first fit. Until the model has
    /// seen this many accurate scores, candidates escalate outright
    /// (the cold start that produces the first training set) — so keep
    /// this comfortably below the sweep's trial count.
    pub min_train: usize,
    /// The model refits (on the full observation history) once this
    /// many new observations accumulated since the last fit.
    pub refit_every: usize,
    /// Hard cap on in-sweep accurate simulations (cold start
    /// included). `None` leaves escalation bounded only by the
    /// confidence test. The final winner verification always runs and
    /// is *not* counted against this budget; set the budget at least
    /// `min_train` high or the model never trains.
    pub budget: Option<usize>,
}

impl Default for UncertaintyPolicy {
    fn default() -> Self {
        UncertaintyPolicy {
            predictor: PredictorKind::Bayes,
            confidence: 1.0,
            min_train: 6,
            refit_every: 4,
            budget: None,
        }
    }
}

/// Result of a fidelity-escalated tuning session.
#[derive(Debug, Clone)]
pub struct EscalatedTuneResult {
    /// Full history: exploration records keep their cheap-tier scores;
    /// finalist records carry accurate-tier scores. `result.best_index`
    /// always points at a finalist.
    pub result: TuneResult,
    /// Name of the backend used for exploration rounds.
    pub explore_backend: String,
    /// Name of the backend used for the finalists.
    pub final_backend: String,
    /// Cheap-tier simulations executed.
    pub explore_runs: usize,
    /// Accurate simulations executed (≤ `top_k`, against `n_trials` for
    /// an accurate-only session).
    pub accurate_runs: usize,
}

/// Fidelity-escalation tuning (the trade the paper's Fig. 1 spans): a
/// cheap exploration tier (any [`FidelitySpec`] via
/// [`EscalationOptions::explore`]; fast-count by default) scores every
/// exploration candidate, then only the `top_k` finalists are
/// re-simulated on the instruction-accurate backend and the best
/// finalist wins. The host pays for `top_k` accurate simulations
/// instead of `n_trials`.
///
/// # Example
///
/// ```no_run
/// use simtune_core::{
///     tune_with_fidelity_escalation, EscalationOptions, ScorePredictor, StrategySpec,
///     TuneOptions,
/// };
/// use simtune_hw::TargetSpec;
/// use simtune_predict::PredictorKind;
/// use simtune_tensor::matmul;
///
/// # fn main() -> Result<(), simtune_core::CoreError> {
/// let def = matmul(16, 16, 16);
/// let spec = TargetSpec::riscv_u74();
/// # let trained_predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
/// let opts = TuneOptions {
///     n_trials: 64,
///     strategy: StrategySpec::Evolutionary,
///     ..TuneOptions::default()
/// };
/// let esc = EscalationOptions { top_k: 6, ..EscalationOptions::default() };
/// let out = tune_with_fidelity_escalation(&def, &spec, &trained_predictor, &opts, &esc)?;
/// assert!(out.accurate_runs <= 6);
/// println!("best candidate: {}", out.result.best().description);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates pipeline failures; returns [`CoreError::Pipeline`] when
/// the predictor is untrained, `top_k` is zero, or no finalist survives.
pub fn tune_with_fidelity_escalation(
    def: &ComputeDef,
    spec: &TargetSpec,
    predictor: &ScorePredictor,
    opts: &TuneOptions,
    esc: &EscalationOptions,
) -> Result<EscalatedTuneResult, CoreError> {
    if !predictor.is_trained() {
        return Err(CoreError::Pipeline("predictor is not trained".into()));
    }
    if let EscalationPolicy::Uncertainty(pol) = &esc.policy {
        if !pol.confidence.is_finite() || pol.confidence < 0.0 {
            return Err(CoreError::Pipeline(
                "uncertainty escalation needs a finite confidence >= 0".into(),
            ));
        }
        return tune_with_uncertainty_escalation(def, spec, predictor, opts, esc, pol);
    }
    if esc.top_k == 0 {
        return Err(CoreError::Pipeline(
            "fidelity escalation needs top_k >= 1".into(),
        ));
    }
    let explore_backend: Arc<dyn SimBackend> = explore_spec(esc).build(&spec.hierarchy)?;
    let explore_name = explore_backend.name().to_string();
    let session = SimSession::builder()
        .backend(explore_backend)
        .n_parallel(opts.n_parallel)
        .memo_cache_opt(opts.memo_cache.clone())
        .engine(opts.engine)
        .build()?;
    let generator = SketchGenerator::new(def, spec.isa.clone());
    let mut strategy = opts.strategy.build_sketch(generator.clone(), opts.seed);
    let (mut history, explore_runs, mut timings, mut replay_nanos) = explore(
        &generator,
        def,
        predictor,
        strategy.as_mut(),
        opts,
        &session,
    )?;

    // Graduate the top-k cheap-tier candidates to the accurate tier.
    let mut order: Vec<usize> = (0..history.len())
        .filter(|&i| history[i].score.is_finite())
        .collect();
    order.sort_by(|&a, &b| {
        history[a]
            .score
            .partial_cmp(&history[b].score)
            .expect("finite scores")
    });
    order.truncate(esc.top_k);

    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let t0 = Instant::now();
    let mut finalist_idx = Vec::with_capacity(order.len());
    let mut finalist_exes = Vec::with_capacity(order.len());
    for &i in &order {
        // Rebuilding is deterministic (fixed data seed), so the finalist
        // executes byte-for-byte what the exploration round saw.
        if let Ok(exe) = builder.build(&history[i].schedule, &format!("{}f{i}", def.name)) {
            finalist_idx.push(i);
            finalist_exes.push(exe);
        }
    }
    timings.build_nanos += t0.elapsed().as_nanos() as u64;
    let accurate = SimSession::builder()
        .accurate(&spec.hierarchy)
        .n_parallel(opts.n_parallel)
        .memo_cache_opt(opts.memo_cache.clone())
        .engine(opts.engine)
        .build()?;
    let final_name = accurate.backend_name().to_string();
    let accurate_runs = finalist_exes.len();
    let t0 = Instant::now();
    let reports = accurate.run_stats(&finalist_exes);
    timings.sim_nanos += t0.elapsed().as_nanos() as u64;

    let mut survivors = Vec::new();
    let mut survivor_stats = Vec::new();
    for (i, r) in finalist_idx.iter().zip(reports) {
        if let Ok(stats) = r {
            replay_nanos += stats.host_nanos;
            survivors.push(*i);
            survivor_stats.push(stats);
        }
    }
    if survivors.is_empty() {
        return Err(CoreError::Pipeline(
            "no finalist survived accurate re-simulation".into(),
        ));
    }
    // Batch scoring keeps the finalists' normalization consistent with
    // one another — the ranking that decides the winner.
    let scores = predictor.score_group(&survivor_stats)?;
    let mut best = (survivors[0], f64::INFINITY);
    for (&i, &s) in survivors.iter().zip(&scores) {
        history[i].score = s;
        if s < best.1 {
            best = (i, s);
        }
    }
    Ok(EscalatedTuneResult {
        result: TuneResult {
            history,
            best_index: best.0,
            strategy: strategy.name().to_string(),
            convergence: strategy.convergence(),
            simulations: explore_runs + accurate_runs,
            timings,
            predictor: None,
            replay_nanos,
        },
        explore_backend: explore_name,
        final_backend: final_name,
        explore_runs,
        accurate_runs,
    })
}

/// The [`EscalationPolicy::Uncertainty`] flow: active-learning
/// escalation over the [`PredictedBackend`] tier. One batch at a time:
///
/// 1. propose, build and run every candidate on the cheap tier (the
///    [`PredictedBackend`] over counting/sampled statistics);
/// 2. in submission order, extract each candidate's feature vector,
///    compute the [`ScorePredictor`]'s cheap-tier *provisional* score
///    and query the online model, which learns the **residual** between
///    provisional and accurate scores (multi-fidelity delta learning) —
///    its corrected prediction is `provisional + residual mean`;
/// 3. escalate the most promising candidates first (lowest provisional
///    score during the cold start, lowest corrected mean once the model
///    answers) whose lower confidence bound `mean − β·std` still
///    overlaps the incumbent best accurate score, within the budget;
/// 4. run the escalated candidates' *original* executables accurately
///    (byte-for-byte what the cheap tier saw), feed the observed
///    residuals back as training pairs, and refit on the batch boundary.
///
/// Non-escalated candidates keep the corrected mean (or, during the
/// cold start, the provisional score) — so the history mixes accurate
/// and predicted scores, and the winner is re-verified after the sweep:
/// while the best-scoring candidate holds a predicted score it is
/// re-simulated accurately and rescored. The returned winner therefore
/// always carries an accurate-tier score.
///
/// All model training and querying happens here, on the producer
/// thread, in submission order — `n_parallel` only changes how fast
/// batches simulate, never what the model sees, which is what the
/// escalation-determinism suite pins.
fn tune_with_uncertainty_escalation(
    def: &ComputeDef,
    spec: &TargetSpec,
    predictor: &ScorePredictor,
    opts: &TuneOptions,
    esc: &EscalationOptions,
    pol: &UncertaintyPolicy,
) -> Result<EscalatedTuneResult, CoreError> {
    let inner: Arc<dyn SimBackend> = explore_spec(esc).build(&spec.hierarchy)?;
    let online = shared_predictor(OnlinePredictor::new(
        pol.predictor,
        opts.seed ^ 0x9E37,
        pol.min_train,
        pol.refit_every,
    ));
    let tier = PredictedBackend::new(inner, Arc::clone(&online));
    let explore_name = tier.name().to_string();
    let cheap = SimSession::builder()
        .backend(Arc::new(tier))
        .n_parallel(opts.n_parallel)
        .memo_cache_opt(opts.memo_cache.clone())
        .engine(opts.engine)
        .build()?;
    let accurate = SimSession::builder()
        .accurate(&spec.hierarchy)
        .n_parallel(opts.n_parallel)
        .memo_cache_opt(opts.memo_cache.clone())
        .engine(opts.engine)
        .build()?;
    let final_name = accurate.backend_name().to_string();

    let generator = SketchGenerator::new(def, spec.isa.clone());
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let mut strategy = opts.strategy.build_sketch(generator.clone(), opts.seed);
    let fc = predictor.feature_config();
    // Two normalizer streams: the feature stream sees every cheap-tier
    // sample (model inputs), the accurate stream only escalated
    // candidates (training labels / final scores). Both are fed in
    // submission order only.
    let mut feat_norm = crate::features::WindowNormalizer::new(opts.window);
    let mut acc_norm = crate::features::WindowNormalizer::new(opts.window);

    let mut history: Vec<TuneRecord> = Vec::new();
    let mut verified: Vec<bool> = Vec::new();
    let mut evaluations: Vec<Evaluation<SketchParams>> = Vec::new();
    let mut pred_pairs: Vec<(f64, f64)> = Vec::new();
    let mut stats = PredictorStats::default();
    let mut timings = StageTimings::default();
    let mut explore_runs = 0usize;
    let mut accurate_runs = 0usize;
    let mut replay_nanos = 0u64;
    let mut incumbent = f64::INFINITY;

    while history.len() < opts.n_trials {
        let committed = history.len();
        let want = opts.batch_size.min(opts.n_trials - committed);
        let t0 = Instant::now();
        let batch = strategy.propose(&evaluations, want);
        timings.propose_nanos += t0.elapsed().as_nanos() as u64;
        if batch.is_empty() {
            break;
        }
        let t0 = Instant::now();
        let mut kept: Vec<SketchParams> = Vec::new();
        let mut kept_exes = Vec::new();
        let mut failed: Vec<SketchParams> = Vec::new();
        for p in batch {
            let schedule = generator.schedule(&p);
            match builder.build(&schedule, &format!("{}t{committed}", def.name)) {
                Ok(e) => {
                    kept_exes.push(e);
                    kept.push(p);
                }
                Err(_) => failed.push(p),
            }
        }
        timings.build_nanos += t0.elapsed().as_nanos() as u64;
        explore_runs += kept_exes.len();
        let t0 = Instant::now();
        let reports = cheap.run(&kept_exes);
        timings.sim_nanos += t0.elapsed().as_nanos() as u64;

        // Decision pass, two phases. Phase 1 — strictly in submission
        // order (the normalizer streams and the model must see
        // candidates exactly as submitted): features, the cheap-tier
        // provisional score, and the model query. The online model
        // learns the *residual* between the provisional and the
        // accurate score (multi-fidelity delta learning): with zero
        // observations the tier already ranks like the offline
        // predictor, and every escalation refines the correction.
        let t0 = Instant::now();
        let mut model = online.lock().expect("predictor lock");
        let n_kept = kept.len();
        let mut features_of: Vec<Option<Vec<f64>>> = Vec::with_capacity(n_kept);
        let mut provisional: Vec<f64> = vec![f64::INFINITY; n_kept];
        let mut predictions: Vec<Option<Prediction>> = Vec::with_capacity(n_kept);
        for (i, rep) in reports.iter().enumerate() {
            let Ok(report) = rep else {
                features_of.push(None);
                predictions.push(None);
                continue;
            };
            replay_nanos += report.stats.host_nanos;
            let raw = crate::features::raw_sample(&report.stats, fc);
            feat_norm.feed(&raw);
            let feats = feat_norm.features(&raw, fc);
            provisional[i] = predictor.score_features(&feats)?;
            let q = model.predict(&feats).map(|p| Prediction {
                mean: provisional[i] + p.mean,
                std: p.std,
            });
            if q.is_some() {
                stats.queries += 1;
            }
            features_of.push(Some(feats));
            predictions.push(q);
        }

        // Phase 2: pick the escalation set most-promising-first — by
        // provisional score during the cold start, by corrected mean
        // once the model answers — so a tight budget is spent on the
        // candidates most likely to beat the incumbent. The stable
        // sort keeps ties in submission order, so the selection stays
        // bit-deterministic at every `n_parallel`.
        let mut escalate = vec![false; n_kept];
        let mut eligible: Vec<usize> = (0..n_kept).filter(|&i| features_of[i].is_some()).collect();
        let promise =
            |i: usize| -> f64 { predictions[i].as_ref().map_or(provisional[i], |p| p.mean) };
        eligible.sort_by(|&a, &b| promise(a).total_cmp(&promise(b)));
        let mut planned = 0usize;
        for &i in &eligible {
            if pol.budget.is_some_and(|b| accurate_runs + planned >= b) {
                break;
            }
            let esc_now = match &predictions[i] {
                // Cold start: simulate until the first training set
                // exists. `planned` keeps one batch from overshooting
                // `min_train` before the model ever fits.
                None => model.observations() + planned < pol.min_train,
                Some(p) => !incumbent.is_finite() || p.lower(pol.confidence) <= incumbent,
            };
            if esc_now {
                escalate[i] = true;
                planned += 1;
            }
        }
        let mut scores: Vec<f64> = vec![f64::INFINITY; n_kept];
        for i in 0..n_kept {
            if features_of[i].is_some() && !escalate[i] {
                scores[i] = promise(i);
            }
        }
        timings.score_nanos += t0.elapsed().as_nanos() as u64;

        // Accurate pass over the escalated originals, still in order.
        let esc_idx: Vec<usize> = (0..n_kept).filter(|&i| escalate[i]).collect();
        let esc_exes: Vec<_> = esc_idx.iter().map(|&i| kept_exes[i].clone()).collect();
        accurate_runs += esc_exes.len();
        stats.escalations += esc_exes.len() as u64;
        let t0 = Instant::now();
        let acc_reports = accurate.run_stats(&esc_exes);
        timings.sim_nanos += t0.elapsed().as_nanos() as u64;
        let t0 = Instant::now();
        for (&i, r) in esc_idx.iter().zip(acc_reports) {
            let Ok(s) = r else {
                continue; // scores[i] stays the INFINITY penalty
            };
            replay_nanos += s.host_nanos;
            let score = predictor.score_streaming(&s, &mut acc_norm)?;
            if let Some(p) = &predictions[i] {
                pred_pairs.push((p.mean, score));
            }
            if let Some(f) = &features_of[i] {
                // Train on the residual; the decision pass adds the
                // provisional back when querying.
                model.observe(f, score - provisional[i]);
            }
            scores[i] = score;
            incumbent = incumbent.min(score);
        }
        if model.refit() {
            stats.train_events += 1;
        }
        drop(model);

        let mut batch_evals: Vec<Evaluation<SketchParams>> = Vec::new();
        for (i, p) in kept.into_iter().enumerate() {
            batch_evals.push(Evaluation {
                point: p,
                score: scores[i],
            });
            verified.push(escalate[i] || !scores[i].is_finite());
        }
        for p in failed {
            batch_evals.push(Evaluation {
                point: p,
                score: f64::INFINITY,
            });
            verified.push(true);
        }
        strategy.observe(&batch_evals);
        for e in &batch_evals {
            history.push(TuneRecord {
                schedule: generator.schedule(&e.point),
                description: format!("{:?}", e.point),
                score: e.score,
            });
        }
        evaluations.extend(batch_evals);
        timings.score_nanos += t0.elapsed().as_nanos() as u64;
    }
    if history.is_empty() {
        return Err(CoreError::Pipeline("tuning produced no candidates".into()));
    }

    // Winner verification: the returned best always carries an
    // accurate-tier score. Each round either confirms the current
    // arg-min or demotes it, so this terminates within `history.len()`
    // accurate runs (far fewer in practice — the winner usually *was*
    // escalated).
    loop {
        let best = argmin_score(&history);
        if history[best].score.is_infinite() {
            return Err(CoreError::Pipeline(
                "no candidate survived accurate verification".into(),
            ));
        }
        if verified[best] {
            break;
        }
        let t0 = Instant::now();
        let built = builder.build(&history[best].schedule, &format!("{}v{best}", def.name));
        timings.build_nanos += t0.elapsed().as_nanos() as u64;
        let Ok(exe) = built else {
            history[best].score = f64::INFINITY;
            verified[best] = true;
            continue;
        };
        accurate_runs += 1;
        stats.escalations += 1;
        let t0 = Instant::now();
        let report = accurate
            .run_stats(std::slice::from_ref(&exe))
            .pop()
            .expect("one report per executable");
        timings.sim_nanos += t0.elapsed().as_nanos() as u64;
        history[best].score = match report {
            Ok(s) => {
                replay_nanos += s.host_nanos;
                predictor.score_streaming(&s, &mut acc_norm)?
            }
            Err(_) => f64::INFINITY,
        };
        verified[best] = true;
    }

    stats.observations = online.lock().expect("predictor lock").observations() as u64;
    stats.avoided_simulations = history
        .iter()
        .zip(&verified)
        .filter(|(r, v)| r.score.is_finite() && !**v)
        .count() as u64;
    if !pred_pairs.is_empty() {
        stats.mean_abs_error =
            pred_pairs.iter().map(|(p, a)| (p - a).abs()).sum::<f64>() / pred_pairs.len() as f64;
        stats.mean_abs_rank_error = rank_displacement(&pred_pairs);
    }

    let best_index = argmin_score(&history);
    Ok(EscalatedTuneResult {
        result: TuneResult {
            history,
            best_index,
            strategy: strategy.name().to_string(),
            convergence: strategy.convergence(),
            simulations: explore_runs + accurate_runs,
            timings,
            predictor: Some(stats),
            replay_nanos,
        },
        explore_backend: explore_name,
        final_backend: final_name,
        explore_runs,
        accurate_runs,
    })
}

fn argmin_score(history: &[TuneRecord]) -> usize {
    history
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.score.partial_cmp(&b.1.score).expect("finite or inf"))
        .map(|(i, _)| i)
        .expect("non-empty history")
}

/// Mean |rank(predicted) − rank(accurate)| over `(predicted, accurate)`
/// score pairs, normalized by the maximum displacement `n − 1`; `0`
/// with fewer than two pairs.
fn rank_displacement(pairs: &[(f64, f64)]) -> f64 {
    let n = pairs.len();
    if n < 2 {
        return 0.0;
    }
    let rank = |xs: &[f64]| {
        let order = simtune_linalg::stats::argsort(xs);
        let mut r = vec![0usize; xs.len()];
        for (pos, &i) in order.iter().enumerate() {
            r[i] = pos;
        }
        r
    };
    let pred: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let acc: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let rp = rank(&pred);
    let ra = rank(&acc);
    let total: f64 = rp
        .iter()
        .zip(&ra)
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .sum();
    total / n as f64 / (n - 1) as f64
}

/// Baseline flow: candidates are benchmarked on the (emulated) target
/// hardware; the score is the measured `t_ref` in seconds.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn tune_on_hardware(
    def: &ComputeDef,
    spec: &TargetSpec,
    opts: &TuneOptions,
) -> Result<TuneResult, CoreError> {
    let generator = SketchGenerator::new(def, spec.isa.clone());
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let hw = HardwareRunner {
        noise_seed: opts.seed ^ 0x7A11,
        ..HardwareRunner::new(spec.clone())
    };
    let mut strategy = opts.strategy.build_sketch(generator.clone(), opts.seed);
    let mut history: Vec<TuneRecord> = Vec::new();
    let mut evaluations: Vec<Evaluation<SketchParams>> = Vec::new();
    let mut hw_runs = 0usize;
    let mut timings = StageTimings::default();
    // Hardware measurement is inherently sequential (Section IV: the
    // board benchmarks one binary at a time), so this loop does not
    // pipeline; the timings still expose where the wall time goes.
    while history.len() < opts.n_trials {
        let want = opts.batch_size.min(opts.n_trials - history.len());
        let t0 = Instant::now();
        let batch = strategy.propose(&evaluations, want);
        timings.propose_nanos += t0.elapsed().as_nanos() as u64;
        if batch.is_empty() {
            break;
        }
        let mut batch_evals: Vec<Evaluation<SketchParams>> = Vec::new();
        for p in batch {
            let schedule = generator.schedule(&p);
            let t0 = Instant::now();
            let built = builder.build(&schedule, &format!("{}h{}", def.name, history.len()));
            timings.build_nanos += t0.elapsed().as_nanos() as u64;
            let score = built
                .and_then(|exe| {
                    hw_runs += 1;
                    let t0 = Instant::now();
                    let measured = hw.run_one(&exe, history.len() + batch_evals.len());
                    timings.sim_nanos += t0.elapsed().as_nanos() as u64;
                    measured
                })
                .map(|m| m.t_ref)
                .unwrap_or(f64::INFINITY);
            batch_evals.push(Evaluation { point: p, score });
        }
        let t0 = Instant::now();
        strategy.observe(&batch_evals);
        for e in &batch_evals {
            history.push(TuneRecord {
                description: format!("{:?}", e.point),
                schedule: generator.schedule(&e.point),
                score: e.score,
            });
        }
        evaluations.extend(batch_evals);
        timings.score_nanos += t0.elapsed().as_nanos() as u64;
    }
    // Hardware measurement replays nothing on a simulator.
    finish(history, strategy.as_ref(), hw_runs, timings, 0)
}

fn finish(
    history: Vec<TuneRecord>,
    strategy: &dyn SearchStrategy<SketchParams>,
    simulations: usize,
    timings: StageTimings,
    replay_nanos: u64,
) -> Result<TuneResult, CoreError> {
    if history.is_empty() {
        return Err(CoreError::Pipeline("tuning produced no candidates".into()));
    }
    let best_index = history
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.score.partial_cmp(&b.1.score).expect("finite or inf"))
        .map(|(i, _)| i)
        .expect("non-empty history");
    Ok(TuneResult {
        history,
        best_index,
        strategy: strategy.name().to_string(),
        convergence: strategy.convergence(),
        simulations,
        timings,
        predictor: None,
        replay_nanos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{collect_group_data, CollectOptions};
    use simtune_predict::PredictorKind;
    use simtune_tensor::matmul;

    fn setup() -> (ComputeDef, TargetSpec) {
        (matmul(8, 8, 8), TargetSpec::riscv_u74())
    }

    fn trained_predictor(def: &ComputeDef, spec: &TargetSpec) -> ScorePredictor {
        let data = collect_group_data(
            def,
            spec,
            0,
            &CollectOptions {
                n_impls: 16,
                n_parallel: 4,
                seed: 5,
                max_attempts_factor: 40,
                ..CollectOptions::default()
            },
        )
        .unwrap();
        let mut predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
        predictor.train(std::slice::from_ref(&data)).unwrap();
        predictor
    }

    #[test]
    fn hardware_tuning_finds_a_good_schedule() {
        let (def, spec) = setup();
        let result = tune_on_hardware(
            &def,
            &spec,
            &TuneOptions {
                n_trials: 12,
                batch_size: 4,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.history.len(), 12);
        assert!(result.best().score.is_finite());
        assert_eq!(result.strategy, "random");
        assert_eq!(result.simulations, 12, "every build measured once");
        // The best is at most the median candidate.
        let mut scores: Vec<f64> = result.history.iter().map(|r| r.score).collect();
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(result.best().score <= scores[scores.len() / 2]);
    }

    #[test]
    fn predictor_tuning_runs_without_hardware() {
        let (def, spec) = setup();
        let predictor = trained_predictor(&def, &spec);
        let result = tune_with_predictor(
            &def,
            &spec,
            &predictor,
            &TuneOptions {
                n_trials: 10,
                batch_size: 5,
                seed: 9,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.history.len(), 10);
        assert!(result.best().score.is_finite());
        assert_eq!(result.convergence.observed, 10);
        assert!(result.convergence.best_score <= result.best().score);
    }

    #[test]
    fn every_builtin_strategy_drives_the_predictor_loop() {
        let (def, spec) = setup();
        let predictor = trained_predictor(&def, &spec);
        for spec_kind in StrategySpec::all() {
            let label = spec_kind.label();
            let result = tune_with_predictor(
                &def,
                &spec,
                &predictor,
                &TuneOptions {
                    n_trials: 8,
                    batch_size: 4,
                    n_parallel: 2,
                    seed: 9,
                    strategy: spec_kind,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(result.strategy, label);
            assert_eq!(result.history.len(), 8, "{label} produced a short history");
            assert!(result.best().score.is_finite(), "{label} found no best");
            assert_eq!(result.convergence.observed, 8);
        }
    }

    #[test]
    fn custom_boxed_strategy_plugs_into_the_loop() {
        let (def, spec) = setup();
        let predictor = trained_predictor(&def, &spec);
        let result = tune_with_predictor(
            &def,
            &spec,
            &predictor,
            &TuneOptions {
                n_trials: 6,
                batch_size: 3,
                seed: 2,
                strategy: StrategySpec::Custom(Arc::new(|space, seed| {
                    Box::new(crate::search::HillClimb::new(space, seed))
                })),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.strategy, "hill_climb");
        assert_eq!(result.history.len(), 6);
    }

    fn uncertainty_esc(kind: PredictorKind, budget: Option<usize>) -> EscalationOptions {
        EscalationOptions {
            policy: EscalationPolicy::Uncertainty(UncertaintyPolicy {
                predictor: kind,
                min_train: 4,
                refit_every: 4,
                confidence: 1.0,
                budget,
            }),
            ..EscalationOptions::default()
        }
    }

    #[test]
    fn uncertainty_escalation_needs_fewer_accurate_sims() {
        let (def, spec) = setup();
        let predictor = trained_predictor(&def, &spec);
        let opts = TuneOptions {
            n_trials: 24,
            batch_size: 8,
            n_parallel: 4,
            seed: 9,
            ..Default::default()
        };
        let esc = uncertainty_esc(PredictorKind::LinReg, None);
        let out = tune_with_fidelity_escalation(&def, &spec, &predictor, &opts, &esc).unwrap();
        assert_eq!(out.explore_backend, "predicted(fast-count)");
        assert_eq!(out.final_backend, "accurate");
        assert_eq!(out.result.history.len(), 24);
        assert_eq!(
            out.explore_runs, 24,
            "every candidate ran on the cheap tier"
        );
        assert!(
            out.accurate_runs < opts.n_trials,
            "accurate runs {} must undercut accurate-only {}",
            out.accurate_runs,
            opts.n_trials
        );
        assert!(out.result.best().score.is_finite());
        let ps = out
            .result
            .predictor
            .expect("uncertainty flow records stats");
        assert_eq!(ps.escalations as usize, out.accurate_runs);
        assert!(ps.train_events >= 1, "the model must have fitted");
        assert!(ps.observations >= 4);
        assert!(ps.queries > 0, "the trained model must have been queried");
        assert!(ps.mean_abs_rank_error >= 0.0 && ps.mean_abs_rank_error <= 1.0);
    }

    #[test]
    fn uncertainty_budget_caps_in_sweep_escalations() {
        let (def, spec) = setup();
        let predictor = trained_predictor(&def, &spec);
        let opts = TuneOptions {
            n_trials: 16,
            batch_size: 8,
            n_parallel: 2,
            seed: 4,
            ..Default::default()
        };
        // An enormous confidence band would escalate everything; the
        // budget has to hold the line (winner verification excepted).
        let esc = EscalationOptions {
            policy: EscalationPolicy::Uncertainty(UncertaintyPolicy {
                predictor: PredictorKind::LinReg,
                min_train: 4,
                refit_every: 4,
                confidence: 1e6,
                budget: Some(5),
            }),
            ..EscalationOptions::default()
        };
        let out = tune_with_fidelity_escalation(&def, &spec, &predictor, &opts, &esc).unwrap();
        let ps = out.result.predictor.expect("stats recorded");
        assert!(
            ps.avoided_simulations > 0,
            "the budget must have left candidates on the predicted tier"
        );
        // 5 budgeted runs plus the (bounded) winner-verification loop.
        assert!(
            out.accurate_runs < opts.n_trials,
            "accurate runs {} out of {} trials",
            out.accurate_runs,
            opts.n_trials
        );
    }

    #[test]
    fn uncertainty_escalation_rejects_bad_confidence() {
        let (def, spec) = setup();
        let predictor = trained_predictor(&def, &spec);
        let esc = EscalationOptions {
            policy: EscalationPolicy::Uncertainty(UncertaintyPolicy {
                confidence: f64::NAN,
                ..UncertaintyPolicy::default()
            }),
            ..EscalationOptions::default()
        };
        let err =
            tune_with_fidelity_escalation(&def, &spec, &predictor, &TuneOptions::default(), &esc);
        assert!(matches!(err, Err(CoreError::Pipeline(_))));
    }

    #[test]
    fn rank_displacement_is_normalized() {
        assert_eq!(rank_displacement(&[]), 0.0);
        assert_eq!(rank_displacement(&[(1.0, 5.0)]), 0.0);
        // Perfect agreement.
        assert_eq!(
            rank_displacement(&[(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]),
            0.0
        );
        // Full reversal of n=2 is the maximum displacement 1.
        assert_eq!(rank_displacement(&[(1.0, 20.0), (2.0, 10.0)]), 1.0);
    }

    #[test]
    fn untrained_predictor_is_rejected() {
        let (def, spec) = setup();
        let predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
        let err = tune_with_predictor(&def, &spec, &predictor, &TuneOptions::default());
        assert!(matches!(err, Err(CoreError::Pipeline(_))));
    }
}
