//! Tuners and the execution-phase tuning loop.
//!
//! Mirrors the search side of the paper's Fig. 2: the Auto-Scheduler
//! substitute generates candidate implementations batch-wise; candidates
//! are built, executed on `n_parallel` simulators, scored (by a trained
//! score predictor or by hardware measurement), and the tuner evolves
//! the next batch from the scores.

use crate::backend::{FastCountBackend, SampledBackend, SimBackend, SimSession};
use crate::features::WindowKind;
use crate::memo::SimCache;
use crate::runner::{HardwareRunner, KernelBuilder};
use crate::score::ScorePredictor;
use crate::CoreError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtune_hw::TargetSpec;
use simtune_tensor::{ComputeDef, Schedule, SketchGenerator, SketchParams};
use std::collections::HashSet;
use std::sync::Arc;

/// A search strategy over sketch genotypes.
pub trait Tuner {
    /// Proposes up to `n` candidates for the next batch.
    fn next_batch(&mut self, n: usize) -> Vec<SketchParams>;

    /// Feeds back scores (lower = better) for a previous batch.
    fn update(&mut self, batch: &[SketchParams], scores: &[f64]);

    /// Strategy label for reports.
    fn name(&self) -> &'static str;
}

/// Uniform random search over sketches.
#[derive(Debug)]
pub struct RandomTuner {
    generator: SketchGenerator,
    rng: StdRng,
    seen: HashSet<String>,
}

impl RandomTuner {
    /// Creates a random tuner.
    pub fn new(generator: SketchGenerator, seed: u64) -> Self {
        RandomTuner {
            generator,
            rng: StdRng::seed_from_u64(seed),
            seen: HashSet::new(),
        }
    }
}

impl Tuner for RandomTuner {
    fn next_batch(&mut self, n: usize) -> Vec<SketchParams> {
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < n * 50 {
            attempts += 1;
            let p = self.generator.random(&mut self.rng);
            if self.seen.insert(format!("{p:?}")) {
                out.push(p);
            }
        }
        out
    }

    fn update(&mut self, _batch: &[SketchParams], _scores: &[f64]) {}

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Evolutionary search (the Auto-Scheduler's strategy): keeps a
/// population of the best genotypes and produces new batches by
/// crossover + mutation, with a random-immigrant fraction for
/// exploration.
#[derive(Debug)]
pub struct EvolutionaryTuner {
    generator: SketchGenerator,
    rng: StdRng,
    population: Vec<(SketchParams, f64)>,
    /// Maximum retained population.
    pub population_size: usize,
    /// Fraction of each batch drawn uniformly at random.
    pub immigrant_fraction: f64,
    seen: HashSet<String>,
}

impl EvolutionaryTuner {
    /// Creates an evolutionary tuner with a population of 32 and a 25 %
    /// immigrant fraction.
    pub fn new(generator: SketchGenerator, seed: u64) -> Self {
        EvolutionaryTuner {
            generator,
            rng: StdRng::seed_from_u64(seed),
            population: Vec::new(),
            population_size: 32,
            immigrant_fraction: 0.25,
            seen: HashSet::new(),
        }
    }

    fn tournament(&mut self) -> SketchParams {
        // Binary tournament over the current population.
        let n = self.population.len();
        let a = self.rng.gen_range(0..n);
        let b = self.rng.gen_range(0..n);
        let winner = if self.population[a].1 <= self.population[b].1 {
            a
        } else {
            b
        };
        self.population[winner].0.clone()
    }
}

impl Tuner for EvolutionaryTuner {
    fn next_batch(&mut self, n: usize) -> Vec<SketchParams> {
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < n * 60 {
            attempts += 1;
            let candidate =
                if self.population.len() < 2 || self.rng.gen_bool(self.immigrant_fraction) {
                    self.generator.random(&mut self.rng)
                } else {
                    let a = self.tournament();
                    let b = self.tournament();
                    let child = self.generator.crossover(&a, &b, &mut self.rng);
                    self.generator.mutate(&child, &mut self.rng)
                };
            if self.seen.insert(format!("{candidate:?}")) {
                out.push(candidate);
            }
        }
        out
    }

    fn update(&mut self, batch: &[SketchParams], scores: &[f64]) {
        for (p, &s) in batch.iter().zip(scores) {
            if s.is_finite() {
                self.population.push((p.clone(), s));
            }
        }
        self.population
            .sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"));
        self.population.truncate(self.population_size);
    }

    fn name(&self) -> &'static str {
        "evolutionary"
    }
}

/// Options of one tuning session.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Total candidates to evaluate.
    pub n_trials: usize,
    /// Candidates per batch (the Auto-Scheduler generates batch-wise).
    pub batch_size: usize,
    /// Parallel simulator instances.
    pub n_parallel: usize,
    /// Window policy for score normalization during inference.
    pub window: WindowKind,
    /// Base seed.
    pub seed: u64,
    /// Simulation memo cache attached to every session this tuning run
    /// creates. Share one `Arc<SimCache>` across runs (or with
    /// [`crate::CollectOptions::memo_cache`]) so candidates revisited
    /// anywhere in the workflow skip the backend entirely. `None`
    /// disables memoization.
    pub memo_cache: Option<Arc<SimCache>>,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            n_trials: 64,
            batch_size: 16,
            n_parallel: 8,
            window: WindowKind::Dynamic,
            seed: 0,
            memo_cache: None,
        }
    }
}

/// One evaluated candidate in a tuning history.
#[derive(Debug, Clone)]
pub struct TuneRecord {
    /// Genotype description.
    pub description: String,
    /// The applied schedule.
    pub schedule: Schedule,
    /// Score assigned during tuning (lower = better; predictor score or
    /// measured seconds depending on the flow).
    pub score: f64,
}

/// Result of a tuning session.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Every evaluated candidate, in evaluation order.
    pub history: Vec<TuneRecord>,
    /// Index of the best candidate in `history`.
    pub best_index: usize,
}

impl TuneResult {
    /// The best candidate's record.
    pub fn best(&self) -> &TuneRecord {
        &self.history[self.best_index]
    }
}

/// Execution-phase tuning (Fig. 4-II): candidates run **only on the
/// simulator**; a trained [`ScorePredictor`] turns statistics into
/// scores. The target hardware is not needed — the scenario that enables
/// pre-silicon tuning and cross-ISA tuning on x86 hosts.
///
/// # Errors
///
/// Propagates pipeline failures; individual failed candidates are
/// penalized, not fatal.
pub fn tune_with_predictor(
    def: &ComputeDef,
    spec: &TargetSpec,
    predictor: &ScorePredictor,
    tuner: &mut dyn Tuner,
    opts: &TuneOptions,
) -> Result<TuneResult, CoreError> {
    if !predictor.is_trained() {
        return Err(CoreError::Pipeline("predictor is not trained".into()));
    }
    let session = SimSession::builder()
        .accurate(&spec.hierarchy)
        .n_parallel(opts.n_parallel)
        .memo_cache_opt(opts.memo_cache.clone())
        .build()?;
    let (history, _) = explore(def, spec, predictor, tuner, opts, &session)?;
    finish(history)
}

/// The shared exploration loop: generate batch-wise, build, run on
/// `session`'s backend, score with `predictor`, feed the tuner. Returns
/// the full evaluation history and the number of simulations executed
/// (successful builds handed to the backend, whether or not they ran to
/// completion).
fn explore(
    def: &ComputeDef,
    spec: &TargetSpec,
    predictor: &ScorePredictor,
    tuner: &mut dyn Tuner,
    opts: &TuneOptions,
    session: &SimSession,
) -> Result<(Vec<TuneRecord>, usize), CoreError> {
    let generator = SketchGenerator::new(def, spec.isa.clone());
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());

    let mut history: Vec<TuneRecord> = Vec::new();
    let mut sim_runs = 0usize;
    // One normalizer for the whole session: the window means evolve over
    // the full candidate stream, not per batch.
    let mut normalizer = crate::features::WindowNormalizer::new(opts.window);
    while history.len() < opts.n_trials {
        let want = opts.batch_size.min(opts.n_trials - history.len());
        let batch = tuner.next_batch(want);
        if batch.is_empty() {
            break; // search space exhausted
        }
        // Build; drop failures with a penalty score.
        let mut exes = Vec::new();
        let mut kept: Vec<SketchParams> = Vec::new();
        let mut failed: Vec<SketchParams> = Vec::new();
        for p in batch {
            let schedule = generator.schedule(&p);
            match builder.build(&schedule, &format!("{}t{}", def.name, history.len())) {
                Ok(e) => {
                    exes.push(e);
                    kept.push(p);
                }
                Err(_) => failed.push(p),
            }
        }
        sim_runs += exes.len();
        let stats = session.run_stats(&exes);
        let mut batch_scores: Vec<(SketchParams, f64)> = Vec::new();
        for (p, s) in kept.into_iter().zip(stats) {
            match s {
                Ok(st) => {
                    let score = predictor.score_streaming(&st, &mut normalizer)?;
                    batch_scores.push((p, score));
                }
                Err(_) => batch_scores.push((p, f64::INFINITY)),
            }
        }
        for p in failed {
            batch_scores.push((p, f64::INFINITY));
        }
        let params: Vec<SketchParams> = batch_scores.iter().map(|(p, _)| p.clone()).collect();
        let scores: Vec<f64> = batch_scores.iter().map(|(_, s)| *s).collect();
        tuner.update(&params, &scores);
        for (p, s) in batch_scores {
            history.push(TuneRecord {
                schedule: generator.schedule(&p),
                description: format!("{p:?}"),
                score: s,
            });
        }
    }
    Ok((history, sim_runs))
}

/// Options of the fidelity-escalation mode: how many finalists graduate
/// from the cheap exploration tier to the accurate tier.
#[derive(Debug, Clone)]
pub struct EscalationOptions {
    /// Finalists re-simulated on the accurate backend (the paper-style
    /// trade: exploration breadth at low fidelity, final ranking at full
    /// fidelity).
    pub top_k: usize,
    /// When set, exploration uses a [`SampledBackend`] at this fraction
    /// instead of the default [`FastCountBackend`] — a middle tier for
    /// workloads whose ranking is cache-sensitive.
    pub sample_fraction: Option<f64>,
}

impl Default for EscalationOptions {
    fn default() -> Self {
        EscalationOptions {
            top_k: 8,
            sample_fraction: None,
        }
    }
}

/// Result of a fidelity-escalated tuning session.
#[derive(Debug, Clone)]
pub struct EscalatedTuneResult {
    /// Full history: exploration records keep their cheap-tier scores;
    /// finalist records carry accurate-tier scores. `result.best_index`
    /// always points at a finalist.
    pub result: TuneResult,
    /// Name of the backend used for exploration rounds.
    pub explore_backend: String,
    /// Name of the backend used for the finalists.
    pub final_backend: String,
    /// Cheap-tier simulations executed.
    pub explore_runs: usize,
    /// Accurate simulations executed (≤ `top_k`, against `n_trials` for
    /// an accurate-only session).
    pub accurate_runs: usize,
}

/// Fidelity-escalation tuning (the trade the paper's Fig. 1 spans): a
/// cheap backend ([`FastCountBackend`] by default, [`SampledBackend`]
/// with [`EscalationOptions::sample_fraction`]) scores every exploration
/// candidate, then only the `top_k` finalists are re-simulated on the
/// instruction-accurate backend and the best finalist wins. The host
/// pays for `top_k` accurate simulations instead of `n_trials`.
///
/// # Errors
///
/// Propagates pipeline failures; returns [`CoreError::Pipeline`] when
/// the predictor is untrained, `top_k` is zero, or no finalist survives.
pub fn tune_with_fidelity_escalation(
    def: &ComputeDef,
    spec: &TargetSpec,
    predictor: &ScorePredictor,
    tuner: &mut dyn Tuner,
    opts: &TuneOptions,
    esc: &EscalationOptions,
) -> Result<EscalatedTuneResult, CoreError> {
    if !predictor.is_trained() {
        return Err(CoreError::Pipeline("predictor is not trained".into()));
    }
    if esc.top_k == 0 {
        return Err(CoreError::Pipeline(
            "fidelity escalation needs top_k >= 1".into(),
        ));
    }
    let explore_backend: Arc<dyn SimBackend> = match esc.sample_fraction {
        Some(fraction) => Arc::new(SampledBackend::new(spec.hierarchy.clone(), fraction)?),
        None => Arc::new(FastCountBackend::matching(&spec.hierarchy)),
    };
    let explore_name = explore_backend.name().to_string();
    let session = SimSession::builder()
        .backend(explore_backend)
        .n_parallel(opts.n_parallel)
        .memo_cache_opt(opts.memo_cache.clone())
        .build()?;
    let (mut history, explore_runs) = explore(def, spec, predictor, tuner, opts, &session)?;

    // Graduate the top-k cheap-tier candidates to the accurate tier.
    let mut order: Vec<usize> = (0..history.len())
        .filter(|&i| history[i].score.is_finite())
        .collect();
    order.sort_by(|&a, &b| {
        history[a]
            .score
            .partial_cmp(&history[b].score)
            .expect("finite scores")
    });
    order.truncate(esc.top_k);

    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let mut finalist_idx = Vec::with_capacity(order.len());
    let mut finalist_exes = Vec::with_capacity(order.len());
    for &i in &order {
        // Rebuilding is deterministic (fixed data seed), so the finalist
        // executes byte-for-byte what the exploration round saw.
        if let Ok(exe) = builder.build(&history[i].schedule, &format!("{}f{i}", def.name)) {
            finalist_idx.push(i);
            finalist_exes.push(exe);
        }
    }
    let accurate = SimSession::builder()
        .accurate(&spec.hierarchy)
        .n_parallel(opts.n_parallel)
        .memo_cache_opt(opts.memo_cache.clone())
        .build()?;
    let final_name = accurate.backend_name().to_string();
    let reports = accurate.run_stats(&finalist_exes);
    let accurate_runs = finalist_exes.len();

    let mut survivors = Vec::new();
    let mut survivor_stats = Vec::new();
    for (i, r) in finalist_idx.iter().zip(reports) {
        if let Ok(stats) = r {
            survivors.push(*i);
            survivor_stats.push(stats);
        }
    }
    if survivors.is_empty() {
        return Err(CoreError::Pipeline(
            "no finalist survived accurate re-simulation".into(),
        ));
    }
    // Batch scoring keeps the finalists' normalization consistent with
    // one another — the ranking that decides the winner.
    let scores = predictor.score_group(&survivor_stats)?;
    let mut best = (survivors[0], f64::INFINITY);
    for (&i, &s) in survivors.iter().zip(&scores) {
        history[i].score = s;
        if s < best.1 {
            best = (i, s);
        }
    }
    Ok(EscalatedTuneResult {
        result: TuneResult {
            history,
            best_index: best.0,
        },
        explore_backend: explore_name,
        final_backend: final_name,
        explore_runs,
        accurate_runs,
    })
}

/// Baseline flow: candidates are benchmarked on the (emulated) target
/// hardware; the score is the measured `t_ref` in seconds.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn tune_on_hardware(
    def: &ComputeDef,
    spec: &TargetSpec,
    tuner: &mut dyn Tuner,
    opts: &TuneOptions,
) -> Result<TuneResult, CoreError> {
    let generator = SketchGenerator::new(def, spec.isa.clone());
    let builder = KernelBuilder::new(def.clone(), spec.isa.clone());
    let hw = HardwareRunner {
        noise_seed: opts.seed ^ 0x7A11,
        ..HardwareRunner::new(spec.clone())
    };
    let mut history: Vec<TuneRecord> = Vec::new();
    while history.len() < opts.n_trials {
        let want = opts.batch_size.min(opts.n_trials - history.len());
        let batch = tuner.next_batch(want);
        if batch.is_empty() {
            break;
        }
        let mut scored: Vec<(SketchParams, f64)> = Vec::new();
        for p in batch {
            let schedule = generator.schedule(&p);
            let score = builder
                .build(&schedule, &format!("{}h{}", def.name, history.len()))
                .and_then(|exe| hw.run_one(&exe, history.len() + scored.len()))
                .map(|m| m.t_ref)
                .unwrap_or(f64::INFINITY);
            scored.push((p, score));
        }
        let params: Vec<SketchParams> = scored.iter().map(|(p, _)| p.clone()).collect();
        let scores: Vec<f64> = scored.iter().map(|(_, s)| *s).collect();
        tuner.update(&params, &scores);
        for (p, s) in scored {
            history.push(TuneRecord {
                description: format!("{p:?}"),
                schedule: generator.schedule(&p),
                score: s,
            });
        }
    }
    finish(history)
}

fn finish(history: Vec<TuneRecord>) -> Result<TuneResult, CoreError> {
    if history.is_empty() {
        return Err(CoreError::Pipeline("tuning produced no candidates".into()));
    }
    let best_index = history
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.score.partial_cmp(&b.1.score).expect("finite or inf"))
        .map(|(i, _)| i)
        .expect("non-empty history");
    Ok(TuneResult {
        history,
        best_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{collect_group_data, CollectOptions};
    use simtune_predict::PredictorKind;
    use simtune_tensor::matmul;

    fn setup() -> (ComputeDef, TargetSpec) {
        (matmul(8, 8, 8), TargetSpec::riscv_u74())
    }

    #[test]
    fn random_tuner_produces_unique_candidates() {
        let (def, spec) = setup();
        let mut t = RandomTuner::new(SketchGenerator::new(&def, spec.isa.clone()), 1);
        let a = t.next_batch(10);
        let b = t.next_batch(10);
        let mut seen = HashSet::new();
        for p in a.iter().chain(&b) {
            assert!(seen.insert(format!("{p:?}")), "duplicate candidate");
        }
    }

    #[test]
    fn evolutionary_tuner_improves_over_random_scores() {
        // Feed a synthetic score function favoring vectorize+unroll and
        // check the population converges toward low scores.
        let (def, spec) = setup();
        let score_fn = |p: &SketchParams| {
            let mut s = 10.0;
            if p.unroll_reduce {
                s -= 3.0;
            }
            s + p.spatial_tiles.iter().sum::<usize>() as f64 * 0.1
        };
        let mut t = EvolutionaryTuner::new(SketchGenerator::new(&def, spec.isa.clone()), 2);
        let mut best_first = f64::INFINITY;
        let mut best_last = f64::INFINITY;
        for round in 0..8 {
            let batch = t.next_batch(12);
            if batch.is_empty() {
                break;
            }
            let scores: Vec<f64> = batch.iter().map(score_fn).collect();
            if round == 0 {
                best_first = scores.iter().cloned().fold(f64::INFINITY, f64::min);
            }
            best_last = best_last.min(scores.iter().cloned().fold(f64::INFINITY, f64::min));
            t.update(&batch, &scores);
        }
        assert!(best_last <= best_first, "{best_last} vs {best_first}");
    }

    #[test]
    fn hardware_tuning_finds_a_good_schedule() {
        let (def, spec) = setup();
        let mut tuner = RandomTuner::new(SketchGenerator::new(&def, spec.isa.clone()), 3);
        let result = tune_on_hardware(
            &def,
            &spec,
            &mut tuner,
            &TuneOptions {
                n_trials: 12,
                batch_size: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.history.len(), 12);
        assert!(result.best().score.is_finite());
        // The best is at most the median candidate.
        let mut scores: Vec<f64> = result.history.iter().map(|r| r.score).collect();
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(result.best().score <= scores[scores.len() / 2]);
    }

    #[test]
    fn predictor_tuning_runs_without_hardware() {
        let (def, spec) = setup();
        let data = collect_group_data(
            &def,
            &spec,
            0,
            &CollectOptions {
                n_impls: 16,
                n_parallel: 4,
                seed: 5,
                max_attempts_factor: 40,
                ..CollectOptions::default()
            },
        )
        .unwrap();
        let mut predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
        predictor.train(std::slice::from_ref(&data)).unwrap();
        let mut tuner = RandomTuner::new(SketchGenerator::new(&def, spec.isa.clone()), 9);
        let result = tune_with_predictor(
            &def,
            &spec,
            &predictor,
            &mut tuner,
            &TuneOptions {
                n_trials: 10,
                batch_size: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.history.len(), 10);
        assert!(result.best().score.is_finite());
    }

    #[test]
    fn untrained_predictor_is_rejected() {
        let (def, spec) = setup();
        let predictor = ScorePredictor::new(PredictorKind::LinReg, "riscv", "matmul", 1);
        let mut tuner = RandomTuner::new(SketchGenerator::new(&def, spec.isa.clone()), 9);
        let err = tune_with_predictor(&def, &spec, &predictor, &mut tuner, &TuneOptions::default());
        assert!(matches!(err, Err(CoreError::Pipeline(_))));
    }
}
